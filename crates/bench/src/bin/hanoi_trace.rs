//! Ground-truth trace workload driver for the numeric benchmark family.
//!
//! Two modes:
//!
//! * **emit** (default): sample reachable worlds of each selected numeric
//!   benchmark by replaying random interface-operation traces from a known
//!   (inductive) ground-truth invariant, and emit them as `V+` example sets
//!   — one JSON object per line — to stdout or `--out`.
//! * **`--infer`**: the differential tier.  For each selected benchmark,
//!   run invariant inference with the linear-arithmetic grammar enabled,
//!   then validate the inferred invariant against a *held-out* trace sample
//!   (drawn from `seed + 1`): ground truth holds on every reachable world,
//!   so a sufficient & inductive invariant must accept all of them.  Any
//!   rejection, or any failed run, exits nonzero — this is what the
//!   `trace-smoke` CI job runs.
//!
//! Usage:
//!
//! ```text
//! cargo run -p hanoi-bench --release --bin hanoi_trace -- \
//!   [--benchmark <id>]... [--seed <n>] [--count <n>] [--steps <n>] \
//!   [--out <file>] [--infer] [--timeout <secs>] [--warm-dir <dir>]
//! ```
//!
//! Every sample is deterministic in `(benchmark, seed, count, steps)`; the
//! default selection is the whole numeric registry.

use std::process::ExitCode;
use std::time::Duration;

use hanoi::{Engine, EngineConfig, Outcome, RunOptions};
use hanoi_benchmarks::trace::{ground_truth, sample_worlds, worlds_to_json, TraceConfig};
use hanoi_benchmarks::{numeric_registry, Benchmark};
use hanoi_synth::arith::ArithBounds;
use hanoi_verifier::VerifierBounds;

struct Args {
    benchmarks: Vec<String>,
    seed: u64,
    count: usize,
    steps: usize,
    out: Option<String>,
    infer: bool,
    timeout: Duration,
    warm_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        benchmarks: Vec::new(),
        seed: TraceConfig::default().seed,
        count: TraceConfig::default().count,
        steps: TraceConfig::default().steps,
        out: None,
        infer: false,
        timeout: Duration::from_secs(60),
        warm_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires an argument"))
        };
        match flag.as_str() {
            "--benchmark" => args.benchmarks.push(value("--benchmark")?),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--count" => {
                args.count = value("--count")?
                    .parse()
                    .map_err(|e| format!("--count: {e}"))?
            }
            "--steps" => {
                args.steps = value("--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--infer" => args.infer = true,
            "--timeout" => {
                let secs: u64 = value("--timeout")?
                    .parse()
                    .map_err(|e| format!("--timeout: {e}"))?;
                args.timeout = Duration::from_secs(secs);
            }
            "--warm-dir" => args.warm_dir = Some(value("--warm-dir")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn selected(args: &Args) -> Result<Vec<Benchmark>, String> {
    if args.benchmarks.is_empty() {
        return Ok(numeric_registry());
    }
    args.benchmarks
        .iter()
        .map(|id| hanoi_benchmarks::find(id).ok_or_else(|| format!("unknown benchmark `{id}`")))
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("hanoi_trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let benchmarks = match selected(&args) {
        Ok(benchmarks) => benchmarks,
        Err(e) => {
            eprintln!("hanoi_trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut lines = Vec::new();
    let mut failures = 0usize;
    let engine = args.infer.then(|| {
        let mut config = EngineConfig::default();
        if let Some(dir) = &args.warm_dir {
            config = config.with_warm_start_dir(dir);
        }
        Engine::new(config).expect("trace engine config is valid")
    });

    for benchmark in &benchmarks {
        let Some(truth) = ground_truth(benchmark.id) else {
            eprintln!("{}: no ground truth registered; skipping", benchmark.id);
            failures += 1;
            continue;
        };
        let problem = match benchmark.problem() {
            Ok(problem) => problem,
            Err(e) => {
                eprintln!("{}: elaboration failed: {e}", benchmark.id);
                failures += 1;
                continue;
            }
        };
        let config = TraceConfig {
            seed: args.seed,
            count: args.count,
            steps: args.steps,
            ..TraceConfig::default()
        };
        let worlds = match sample_worlds(&problem, &truth, &config) {
            Ok(worlds) => worlds,
            Err(e) => {
                eprintln!("{}: sampling failed: {e}", benchmark.id);
                failures += 1;
                continue;
            }
        };
        eprintln!(
            "{}: sampled {} world(s) from seed {}",
            benchmark.id,
            worlds.len(),
            config.seed
        );

        if let Some(engine) = &engine {
            // The differential tier: infer with the numeric grammar, then
            // check the invariant against a held-out sample the inference
            // never saw.
            let options = RunOptions::paper()
                .with_bounds(VerifierBounds::quick())
                .with_timeout(Some(args.timeout))
                .with_numeric_grammar(&ArithBounds::default());
            let result = engine.run(&problem, &options);
            let invariant = match &result.outcome {
                Outcome::Invariant(expr) => expr.clone(),
                other => {
                    eprintln!("{}: inference failed: {other:?}", benchmark.id);
                    failures += 1;
                    continue;
                }
            };
            eprintln!("{}: inferred {}", benchmark.id, invariant);
            let held_out = TraceConfig {
                seed: args.seed + 1,
                ..config.clone()
            };
            let sample = match sample_worlds(&problem, &truth, &held_out) {
                Ok(sample) => sample,
                Err(e) => {
                    eprintln!("{}: held-out sampling failed: {e}", benchmark.id);
                    failures += 1;
                    continue;
                }
            };
            let rejected: Vec<_> = sample
                .iter()
                .filter(|world| !problem.eval_predicate(&invariant, world).unwrap_or(false))
                .collect();
            if rejected.is_empty() {
                eprintln!(
                    "{}: invariant accepts all {} held-out world(s)",
                    benchmark.id,
                    sample.len()
                );
            } else {
                eprintln!(
                    "{}: invariant rejects {} reachable world(s), e.g. {}",
                    benchmark.id,
                    rejected.len(),
                    rejected[0]
                );
                failures += 1;
            }
        }

        lines.push(worlds_to_json(benchmark.id, config.seed, &worlds).render());
    }

    if let (Some(engine), Some(_)) = (&engine, &args.warm_dir) {
        match engine.save_state_to_warm_dir() {
            Ok(written) if written > 0 => eprintln!("saved {written} warm-start snapshot(s)"),
            Ok(_) => {}
            Err(e) => eprintln!("warm-start save failed: {e}"),
        }
    }

    let payload = lines.join("\n") + "\n";
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &payload) {
                eprintln!("hanoi_trace: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{payload}"),
    }

    if failures > 0 {
        eprintln!("hanoi_trace: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
