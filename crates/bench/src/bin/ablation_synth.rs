//! The §5.4 synthesizer ablation: the Myth-style back end versus the
//! fold-capable prototype synthesizer, over the quick benchmark subset (or
//! the full suite with `--full`).
//!
//! Usage:
//!
//! ```text
//! cargo run -p hanoi-bench --release --bin ablation_synth [-- --full] [-- --timeout <secs>]
//! ```

use std::time::Duration;

use hanoi::{Mode, Optimizations};
use hanoi_bench::report::{completion_summary, figure7_table};
use hanoi_bench::{ablation_synthesizers, run_benchmark, HarnessConfig, Row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let timeout = args
        .iter()
        .position(|a| a == "--timeout")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs);

    let mut harness = if full {
        HarnessConfig::full()
    } else {
        HarnessConfig::quick()
    };
    if let Some(timeout) = timeout {
        harness.timeout = timeout;
    }
    let benchmarks = if full {
        hanoi_benchmarks::registry()
    } else {
        hanoi_benchmarks::quick_subset()
    };

    let mut rows: Vec<Row> = Vec::new();
    for (label, choice) in ablation_synthesizers() {
        eprintln!("synthesizer {label}");
        for benchmark in &benchmarks {
            let config = harness
                .inference_config(Mode::Hanoi, Optimizations::all())
                .with_synthesizer(choice);
            let row = run_benchmark(benchmark, config, label);
            eprintln!(
                "  {} -> {:?} in {:.1}s",
                benchmark.id, row.status, row.time_secs
            );
            rows.push(row);
        }
    }

    println!("{}", figure7_table(&rows));
    println!("{}", completion_summary(&rows));

    // The §5.4 headline: relative slowdown of the fold synthesizer on the
    // benchmarks both back ends solve.
    let solved_by_both: Vec<&str> = benchmarks
        .iter()
        .map(|b| b.id)
        .filter(|id| {
            hanoi_bench::ablation_synthesizers()
                .iter()
                .all(|(label, _)| {
                    rows.iter().any(|r| {
                        r.id == *id
                            && r.mode == *label
                            && r.status == hanoi_bench::RunStatus::Completed
                    })
                })
        })
        .collect();
    if !solved_by_both.is_empty() {
        let total = |label: &str| -> f64 {
            rows.iter()
                .filter(|r| r.mode == label && solved_by_both.contains(&r.id.as_str()))
                .map(|r| r.time_secs)
                .sum()
        };
        let myth = total("myth");
        let fold = total("fold");
        println!(
            "on the {} benchmark(s) solved by both, fold/myth total time ratio = {:.2} (the paper reports ~1.11)",
            solved_by_both.len(),
            if myth > 0.0 { fold / myth } else { f64::NAN }
        );
    }
}
