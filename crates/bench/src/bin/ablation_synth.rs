//! The §5.4 synthesizer ablation: the Myth-style back end versus the
//! fold-capable prototype synthesizer, over the quick benchmark subset (or
//! the full suite with `--full`).
//!
//! The §5.4 headline is a myth-vs-fold *total time* ratio, so every
//! (benchmark, back end) run uses a fresh engine — the second back end must
//! not run against caches the first one warmed.
//!
//! Usage:
//!
//! ```text
//! cargo run -p hanoi-bench --release --bin ablation_synth [-- --full] [-- --timeout <secs>] [-- --warm-dir <dir>] [-- --benchmark <id>]...
//! ```
//!
//! With `--warm-dir`, both back ends restore the same pre-invocation
//! snapshot per problem (the comparison stays fair) and the store is
//! updated from the primary (`myth`) engine only after both have run —
//! see `figure8` for the cross-process warm-start rationale.

use hanoi::{Mode, Optimizations};
use hanoi_bench::cli::HarnessArgs;
use hanoi_bench::report::{completion_summary, figure7_table};
use hanoi_bench::{ablation_synthesizers, run_benchmark, run_problem, Row};

fn main() {
    let args = HarnessArgs::parse(true);
    let harness = args.harness();
    let benchmarks = args.benchmarks();

    let mut rows: Vec<Row> = Vec::new();
    for benchmark in &benchmarks {
        let problem = benchmark.problem();
        let mut primary: Option<hanoi::Engine> = None;
        for (index, (label, choice)) in ablation_synthesizers().into_iter().enumerate() {
            let options = harness
                .run_options(Mode::Hanoi, Optimizations::all())
                .with_synthesizer(choice);
            // A fresh engine per run: the timing comparison must be cold
            // (warm only across processes, through `--warm-dir`).
            let engine = harness.engine();
            let row = match &problem {
                Ok(problem) => run_problem(&engine, problem, benchmark, options, label),
                Err(_) => run_benchmark(&engine, benchmark, options, label),
            };
            eprintln!(
                "  {} [{label}] -> {:?} in {:.1}s",
                benchmark.id,
                row.status,
                row.time_secs()
            );
            rows.push(row);
            if index == 0 {
                primary = Some(engine);
            }
        }
        if let Some(engine) = primary {
            harness.save_engine(&engine);
        }
    }
    rows.sort_by_key(|row| {
        ablation_synthesizers()
            .iter()
            .position(|(label, _)| *label == row.mode)
            .unwrap_or(usize::MAX)
    });

    println!("{}", figure7_table(&rows));
    println!("{}", completion_summary(&rows));

    // The §5.4 headline: relative slowdown of the fold synthesizer on the
    // benchmarks both back ends solve.
    let solved_by_both: Vec<&str> = benchmarks
        .iter()
        .map(|b| b.id)
        .filter(|id| {
            hanoi_bench::ablation_synthesizers()
                .iter()
                .all(|(label, _)| {
                    rows.iter().any(|r| {
                        r.id == *id
                            && r.mode == *label
                            && r.status == hanoi_bench::RunStatus::Completed
                    })
                })
        })
        .collect();
    if !solved_by_both.is_empty() {
        let total = |label: &str| -> f64 {
            rows.iter()
                .filter(|r| r.mode == label && solved_by_both.contains(&r.id.as_str()))
                .map(|r| r.time_secs())
                .sum()
        };
        let myth = total("myth");
        let fold = total("fold");
        println!(
            "on the {} benchmark(s) solved by both, fold/myth total time ratio = {:.2} (the paper reports ~1.11)",
            solved_by_both.len(),
            if myth > 0.0 { fold / myth } else { f64::NAN }
        );
    }
}
