//! Regenerates Figure 7 / Figure 9: per-benchmark results for the full Hanoi
//! configuration.
//!
//! Usage:
//!
//! ```text
//! cargo run -p hanoi-bench --release --bin figure7 [-- --quick] [-- --timeout <secs>] [-- --parallelism <n>] [-- --out <path>]
//! ```
//!
//! `--quick` runs the fast subset with reduced verifier bounds (a smoke run);
//! the default runs all 28 benchmarks.  The paper uses a 30-minute timeout
//! per benchmark and averages 10 runs; pass `--timeout 1800` to match (and
//! expect a long wall-clock time).

use std::time::Duration;

use hanoi::{Mode, Optimizations};
use hanoi_bench::report::{completion_summary, figure7_table};
use hanoi_bench::{run_benchmark, HarnessConfig, Row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let timeout = args
        .iter()
        .position(|a| a == "--timeout")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs);
    let parallelism = args
        .iter()
        .position(|a| a == "--parallelism")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/figure7.json".to_string());

    let mut harness = if quick {
        HarnessConfig::quick()
    } else {
        HarnessConfig::full()
    };
    if let Some(timeout) = timeout {
        harness.timeout = timeout;
    }
    harness.parallelism = parallelism;
    let benchmarks = if quick {
        hanoi_benchmarks::quick_subset()
    } else {
        hanoi_benchmarks::registry()
    };

    eprintln!(
        "figure7: running {} benchmark(s), timeout {:?}, {} bounds",
        benchmarks.len(),
        harness.timeout,
        if harness.paper_bounds {
            "paper"
        } else {
            "quick"
        }
    );

    let mut rows: Vec<Row> = Vec::new();
    for benchmark in &benchmarks {
        eprintln!("  running {} ...", benchmark.id);
        let config = harness.inference_config(Mode::Hanoi, Optimizations::all());
        let row = run_benchmark(benchmark, config, "Hanoi");
        eprintln!(
            "    -> {:?} in {:.1}s (TVC {}, TSC {})",
            row.status, row.time_secs, row.tvc, row.tsc
        );
        rows.push(row);
    }

    println!("{}", figure7_table(&rows));
    println!("{}", completion_summary(&rows));
    let json = hanoi_bench::json::Json::Arr(rows.iter().map(Row::to_json).collect());
    if std::fs::write(&out_path, json.render_pretty()).is_ok() {
        eprintln!("wrote {out_path}");
    }
}
