//! Regenerates Figure 7 / Figure 9: per-benchmark results for the full Hanoi
//! configuration.
//!
//! Usage:
//!
//! ```text
//! cargo run -p hanoi-bench --release --bin figure7 [-- --quick] [-- --timeout <secs>] [-- --parallelism <n>] [-- --out <path>] [-- --warm-dir <dir>] [-- --benchmark <id>]...
//! ```
//!
//! `--quick` runs the fast subset with reduced verifier bounds (a smoke run);
//! the default runs all 28 benchmarks.  The paper uses a 30-minute timeout
//! per benchmark and averages 10 runs; pass `--timeout 1800` to match (and
//! expect a long wall-clock time).
//!
//! `--warm-dir <dir>` attaches the run to the warm-start store: the engine
//! restores per-problem cache snapshots from the directory before running
//! and saves its state back at the end, so invoking the binary *twice* with
//! the same directory gives the second process warm caches (its rows report
//! `warm_start_loads > 0` and near-total `verification_cache_hits`).

use hanoi::{Mode, Optimizations};
use hanoi_bench::cli::HarnessArgs;
use hanoi_bench::report::{completion_summary, figure7_table};
use hanoi_bench::{run_benchmark, Row};

fn main() {
    let args = HarnessArgs::parse(false);
    let harness = args.harness();
    let benchmarks = args.benchmarks();
    let out_path = args.out_or("target/figure7.json");
    let engine = harness.engine();

    eprintln!(
        "figure7: running {} benchmark(s), timeout {:?}, {} bounds",
        benchmarks.len(),
        harness.timeout,
        if harness.paper_bounds {
            "paper"
        } else {
            "quick"
        }
    );

    let mut rows: Vec<Row> = Vec::new();
    for benchmark in &benchmarks {
        eprintln!("  running {} ...", benchmark.id);
        let options = harness.run_options(Mode::Hanoi, Optimizations::all());
        let row = run_benchmark(&engine, benchmark, options, "Hanoi");
        eprintln!(
            "    -> {:?} in {:.1}s (TVC {}, TSC {})",
            row.status,
            row.time_secs(),
            row.tvc(),
            row.tsc()
        );
        rows.push(row);
    }

    harness.save_engine(&engine);
    println!("{}", figure7_table(&rows));
    println!("{}", completion_summary(&rows));
    let json = hanoi_bench::json::Json::Arr(rows.iter().map(Row::to_json).collect());
    if std::fs::write(&out_path, json.render_pretty()).is_ok() {
        eprintln!("wrote {out_path}");
    }
}
