//! Regenerates Figure 8: cumulative benchmarks completed over time for the
//! six configurations (Hanoi, Hanoi−SRC, Hanoi−CLC, ∧Str, LA, OneShot).
//!
//! Usage:
//!
//! ```text
//! cargo run -p hanoi-bench --release --bin figure8 [-- --quick] [-- --timeout <secs>] [-- --parallelism <n>] [-- --out <path>]
//! ```

use std::time::Duration;

use hanoi_bench::report::{completion_summary, figure8_series};
use hanoi_bench::{run_benchmark, HarnessConfig, Row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let timeout = args
        .iter()
        .position(|a| a == "--timeout")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs);
    let parallelism = args
        .iter()
        .position(|a| a == "--parallelism")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/figure8.json".to_string());

    let mut harness = if quick {
        HarnessConfig::quick()
    } else {
        HarnessConfig::full()
    };
    if let Some(timeout) = timeout {
        harness.timeout = timeout;
    }
    harness.parallelism = parallelism;
    let benchmarks = if quick {
        hanoi_benchmarks::quick_subset()
    } else {
        hanoi_benchmarks::registry()
    };

    eprintln!(
        "figure8: running {} benchmark(s) x 6 modes, timeout {:?}",
        benchmarks.len(),
        harness.timeout
    );

    let mut rows: Vec<Row> = Vec::new();
    for (label, mode, optimizations) in hanoi_bench::figure8_modes() {
        eprintln!("mode {label}");
        for benchmark in &benchmarks {
            let config = harness.inference_config(mode, optimizations);
            let row = run_benchmark(benchmark, config, label);
            eprintln!(
                "  {} -> {:?} in {:.1}s",
                benchmark.id, row.status, row.time_secs
            );
            rows.push(row);
        }
    }

    let max = harness.timeout.as_secs_f64();
    let thresholds: Vec<f64> = [0.02, 0.05, 0.1, 0.2, 0.5]
        .iter()
        .map(|f| f * max)
        .chain([max])
        .collect();
    println!("{}", figure8_series(&rows, &thresholds));
    println!("{}", completion_summary(&rows));
    let json = hanoi_bench::json::Json::Arr(rows.iter().map(Row::to_json).collect());
    if std::fs::write(&out_path, json.render_pretty()).is_ok() {
        eprintln!("wrote {out_path}");
    }
}
