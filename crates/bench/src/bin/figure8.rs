//! Regenerates Figure 8: cumulative benchmarks completed over time for the
//! six configurations (Hanoi, Hanoi−SRC, Hanoi−CLC, ∧Str, LA, OneShot).
//!
//! Figure 8 is a *wall-clock* comparison (completions within time
//! thresholds), so every (benchmark, mode) run uses a fresh engine: the
//! modes must not warm each other's caches, or later modes would report
//! inflated completion counts.  Use one long-lived engine only when the
//! wall clock is not the measurement (see `hanoi_bench::run_problem`).
//!
//! Usage:
//!
//! ```text
//! cargo run -p hanoi-bench --release --bin figure8 [-- --quick] [-- --timeout <secs>] [-- --parallelism <n>] [-- --out <path>] [-- --warm-dir <dir>] [-- --benchmark <id>]...
//! ```
//!
//! With `--warm-dir`, every fresh engine restores the problem's snapshot
//! from the store as it opens — all six modes start from the *same*
//! pre-invocation snapshot, so the mode-to-mode comparison stays fair —
//! and the store is updated only after a benchmark's modes have all run
//! (from the primary `Hanoi` engine), never in between.  A second
//! invocation of the binary therefore runs warm from the first one's
//! caches: a cross-*process* warm start.

use hanoi::Engine;
use hanoi_bench::cli::HarnessArgs;
use hanoi_bench::report::{completion_summary, figure8_series};
use hanoi_bench::{run_benchmark, run_problem, Row};

fn main() {
    let args = HarnessArgs::parse(false);
    let harness = args.harness();
    let benchmarks = args.benchmarks();
    let out_path = args.out_or("target/figure8.json");

    eprintln!(
        "figure8: running {} benchmark(s) x 6 modes, timeout {:?}",
        benchmarks.len(),
        harness.timeout
    );

    let mut rows: Vec<Row> = Vec::new();
    for benchmark in &benchmarks {
        let problem = benchmark.problem();
        // The primary (Hanoi) engine is kept alive until every mode has run
        // and is then checkpointed into the warm-start store — saving
        // mid-loop would hand later modes caches earlier modes warmed.
        let mut primary: Option<Engine> = None;
        for (index, (label, mode, optimizations)) in
            hanoi_bench::figure8_modes().into_iter().enumerate()
        {
            let options = harness.run_options(mode, optimizations);
            // A fresh engine per run: cold, standalone cost, like the paper
            // (warm only across processes, through `--warm-dir`).
            let engine = harness.engine();
            let row = match &problem {
                Ok(problem) => run_problem(&engine, problem, benchmark, options, label),
                // Elaboration failed: fall back to the per-benchmark path,
                // which renders the error row.
                Err(_) => run_benchmark(&engine, benchmark, options, label),
            };
            eprintln!(
                "  {} [{label}] -> {:?} in {:.1}s",
                benchmark.id,
                row.status,
                row.time_secs()
            );
            rows.push(row);
            if index == 0 {
                primary = Some(engine);
            }
        }
        if let Some(engine) = primary {
            harness.save_engine(&engine);
        }
    }
    // Figure 8 groups by mode: keep rows in mode-major order for the tables.
    rows.sort_by_key(|row| {
        hanoi_bench::figure8_modes()
            .iter()
            .position(|(label, _, _)| *label == row.mode)
            .unwrap_or(usize::MAX)
    });

    let max = harness.timeout.as_secs_f64();
    let thresholds: Vec<f64> = [0.02, 0.05, 0.1, 0.2, 0.5]
        .iter()
        .map(|f| f * max)
        .chain([max])
        .collect();
    println!("{}", figure8_series(&rows, &thresholds));
    println!("{}", completion_summary(&rows));
    let json = hanoi_bench::json::Json::Arr(rows.iter().map(Row::to_json).collect());
    if std::fs::write(&out_path, json.render_pretty()).is_ok() {
        eprintln!("wrote {out_path}");
    }
}
