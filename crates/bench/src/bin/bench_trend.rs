//! Appends one bench run's headline numbers to `BENCH_history.jsonl`.
//!
//! The cross-PR perf trajectory (a carried ROADMAP item) is invisible when
//! each PR only rewrites `BENCH_verification.json` in place; this tool
//! extracts the headline speedups of one summary and *appends* them as a
//! single JSON line, so the history file reads as a time series.
//!
//! ```text
//! bench_trend [summary.json] [history.jsonl] [label]
//! ```
//!
//! Defaults: `BENCH_verification.json`, `BENCH_history.jsonl`, and a label
//! from the `BENCH_TREND_LABEL` environment variable (empty otherwise —
//! CI passes the commit SHA).  Exits non-zero when the summary is missing
//! or unreadable; absent fields are recorded as `null` rather than
//! failing, so older summary layouts still append a (sparser) line.

use hanoi_bench::json::Json;

/// Follows `path` ("a.b.c") through nested objects to a number, if present.
fn num_at(root: &Json, path: &str) -> Option<f64> {
    let mut node = root;
    for step in path.split('.') {
        node = node.get(step)?;
    }
    node.as_f64()
}

/// `num_at` over the rows of a `Json::Arr` of workload objects, selecting
/// the row whose `workload` field equals `which`.
fn num_in_row(root: &Json, table: &str, which: &str, field: &str) -> Option<f64> {
    let Json::Arr(rows) = root.get(table)? else {
        return None;
    };
    rows.iter()
        .find(|row| row.get("workload").and_then(Json::as_str) == Some(which))
        .and_then(|row| row.get(field))
        .and_then(Json::as_f64)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let summary_path = args
        .next()
        .unwrap_or_else(|| "BENCH_verification.json".to_string());
    let history_path = args
        .next()
        .unwrap_or_else(|| "BENCH_history.jsonl".to_string());
    let label = args
        .next()
        .or_else(|| std::env::var("BENCH_TREND_LABEL").ok())
        .unwrap_or_default();

    let text = match std::fs::read_to_string(&summary_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_trend: cannot read {summary_path}: {e}");
            std::process::exit(1);
        }
    };
    let summary = match hanoi_bench::json::parse(&text) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("bench_trend: {summary_path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };

    let opt = |value: Option<f64>| Json::opt(value, Json::Num);
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as f64)
        .unwrap_or(0.0);
    let line = Json::obj([
        ("unix_secs", Json::Num(unix_secs)),
        ("label", Json::Str(label)),
        (
            "quick_mode",
            summary
                .get("quick_mode")
                .cloned()
                .unwrap_or(Json::Bool(false)),
        ),
        // The headline speedups, one per workload family.
        (
            "synthesis_warm_speedup",
            opt(num_at(
                &summary,
                "synthesis_multi_cex.speedup_warm_over_cold",
            )),
        ),
        (
            "synthesis_guess_memo_hits",
            opt(num_at(&summary, "synthesis_multi_cex.guess_memo_hits")),
        ),
        (
            "high_parallelism_best_speedup",
            opt(num_at(
                &summary,
                "high_parallelism_synth.speedup_best_over_serial",
            )),
        ),
        (
            "high_parallelism_probes_per_batch",
            opt(num_at(&summary, "high_parallelism_synth.probes_per_batch")),
        ),
        // The numeric/trace family: warm-over-cold on the linear-arithmetic
        // workload, plus how many arithmetic composites the run built.
        (
            "numeric_synth_warm_speedup",
            opt(num_at(&summary, "numeric_synth.speedup_warm_over_cold")),
        ),
        (
            "numeric_synth_arith_atoms",
            opt(num_at(&summary, "numeric_synth.arith_atoms")),
        ),
        (
            "cross_run_first_order_speedup",
            opt(num_in_row(
                &summary,
                "cross_run_warm",
                "first_order",
                "speedup_warm_over_cold",
            )),
        ),
        (
            "cross_run_higher_order_speedup",
            opt(num_in_row(
                &summary,
                "cross_run_warm",
                "higher_order",
                "speedup_warm_over_cold",
            )),
        ),
        (
            "cross_process_first_order_speedup",
            opt(num_in_row(
                &summary,
                "cross_process_warm",
                "first_order",
                "speedup_restored_over_cold",
            )),
        ),
        (
            "cross_process_higher_order_speedup",
            opt(num_in_row(
                &summary,
                "cross_process_warm",
                "higher_order",
                "speedup_restored_over_cold",
            )),
        ),
        // Fleet sync: how many bytes a one-problem delta moves relative to
        // replicating the whole warm store, and the replica's on-disk size.
        (
            "fleet_delta_bytes",
            opt(num_at(&summary, "fleet_warm.delta_bytes")),
        ),
        (
            "fleet_full_bytes",
            opt(num_at(&summary, "fleet_warm.full_bytes")),
        ),
        (
            "fleet_delta_over_full",
            opt(num_at(&summary, "fleet_warm.delta_over_full")),
        ),
        (
            "fleet_store_bytes",
            opt(num_at(&summary, "fleet_warm.replica_store_bytes")),
        ),
        // Server durability: reconnect-storm end-to-end latency (the p95
        // run time across a forced mid-stream disconnect and resume).
        (
            "server_resume_storm_p95_ms",
            opt(num_at(
                &summary,
                "server_stress.resume_storm.latency.p95_ms",
            )),
        ),
        (
            "server_resume_storm_disconnects",
            opt(num_at(
                &summary,
                "server_stress.resume_storm.forced_disconnects",
            )),
        ),
    ]);

    let mut rendered = line.render();
    rendered.push('\n');
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .and_then(|mut file| file.write_all(rendered.as_bytes()));
    match appended {
        Ok(()) => eprintln!("appended to {history_path}"),
        Err(e) => {
            eprintln!("bench_trend: cannot append to {history_path}: {e}");
            std::process::exit(1);
        }
    }
}
