//! Plain-text rendering of result tables and the Figure 8 cactus series.

use crate::{Row, RunStatus};

/// Renders rows in the layout of Figure 7: one line per benchmark with Size,
/// Time, TVT, TVC, MVT, TST, TSC and MST columns, `t/o` for timeouts.
pub fn figure7_table(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<42} {:>5} {:>9} {:>9} {:>5} {:>8} {:>8} {:>5} {:>8} | {:>5} {:>9}\n",
        "Name",
        "Size",
        "Time(s)",
        "TVT(s)",
        "TVC",
        "MVT(s)",
        "TST(s)",
        "TSC",
        "MST(s)",
        "pSize",
        "pTime(s)"
    ));
    out.push_str(&"-".repeat(128));
    out.push('\n');
    for row in rows {
        let (size, time, tvt, tvc, mvt, tst, tsc, mst) = match row.status {
            RunStatus::Completed => (
                row.size().map_or("-".into(), |s| s.to_string()),
                format!("{:.1}", row.time_secs()),
                format!("{:.1}", row.tvt_secs()),
                row.tvc().to_string(),
                row.mvt_secs().map_or("undef".into(), |t| format!("{t:.2}")),
                format!("{:.1}", row.tst_secs()),
                row.tsc().to_string(),
                row.mst_secs().map_or("undef".into(), |t| format!("{t:.2}")),
            ),
            RunStatus::TimedOut | RunStatus::Cancelled => {
                // "t/o" for a run that exhausted its budget, "stop" for one
                // cancelled externally — kept distinct across the whole row
                // so the Time column never misattributes a cancellation.
                let marker = if row.status == RunStatus::Cancelled {
                    "stop"
                } else {
                    "t/o"
                };
                (
                    marker.into(),
                    marker.into(),
                    marker.into(),
                    row.tvc().to_string(),
                    marker.into(),
                    marker.into(),
                    row.tsc().to_string(),
                    marker.into(),
                )
            }
            RunStatus::Failed => (
                "fail".into(),
                format!("{:.1}", row.time_secs()),
                format!("{:.1}", row.tvt_secs()),
                row.tvc().to_string(),
                "-".into(),
                format!("{:.1}", row.tst_secs()),
                row.tsc().to_string(),
                "-".into(),
            ),
        };
        let paper_size = row.paper_size.map_or("t/o".into(), |s| s.to_string());
        let paper_time = row
            .paper_time_secs
            .map_or("t/o".into(), |t| format!("{t:.1}"));
        out.push_str(&format!(
            "{:<42} {:>5} {:>9} {:>9} {:>5} {:>8} {:>8} {:>5} {:>8} | {:>5} {:>9}\n",
            row.id, size, time, tvt, tvc, mvt, tst, tsc, mst, paper_size, paper_time
        ));
    }
    out
}

/// Renders the Figure 8 series: for each mode, the number of completed
/// benchmarks within each time threshold (seconds).
pub fn figure8_series(rows: &[Row], thresholds: &[f64]) -> String {
    let mut out = String::new();
    let mut modes: Vec<&str> = rows.iter().map(|r| r.mode.as_str()).collect();
    modes.dedup();
    let mut unique_modes: Vec<&str> = Vec::new();
    for mode in modes {
        if !unique_modes.contains(&mode) {
            unique_modes.push(mode);
        }
    }
    out.push_str(&format!("{:<12}", "Mode"));
    for t in thresholds {
        out.push_str(&format!(" {:>8}", format!("<={t:.0}s")));
    }
    out.push('\n');
    out.push_str(&"-".repeat(12 + 9 * thresholds.len()));
    out.push('\n');
    for mode in unique_modes {
        out.push_str(&format!("{mode:<12}"));
        for &threshold in thresholds {
            let completed = rows
                .iter()
                .filter(|r| {
                    r.mode == mode && r.status == RunStatus::Completed && r.time_secs() <= threshold
                })
                .count();
            out.push_str(&format!(" {completed:>8}"));
        }
        out.push('\n');
    }
    out
}

/// Summary line: completed / total per mode.
pub fn completion_summary(rows: &[Row]) -> String {
    let mut out = String::new();
    let mut modes: Vec<&str> = Vec::new();
    for row in rows {
        if !modes.contains(&row.mode.as_str()) {
            modes.push(&row.mode);
        }
    }
    for mode in modes {
        let total = rows.iter().filter(|r| r.mode == mode).count();
        let completed = rows
            .iter()
            .filter(|r| r.mode == mode && r.status == RunStatus::Completed)
            .count();
        out.push_str(&format!("{mode}: {completed}/{total} completed\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(mode: &str, status: RunStatus, time: f64) -> Row {
        let mut stats = hanoi::RunStats {
            total_time: std::time::Duration::from_secs_f64(time),
            verification_time: std::time::Duration::from_secs_f64(time * 0.8),
            verification_calls: 10,
            synthesis_time: std::time::Duration::from_secs_f64(time * 0.1),
            synthesis_calls: 3,
            iterations: 7,
            ..hanoi::RunStats::default()
        };
        stats.invariant_size = Some(18);
        Row {
            id: "/coq/unique-list-::-set".into(),
            mode: mode.into(),
            status,
            invariant: None,
            stats,
            paper_size: Some(35),
            paper_time_secs: Some(13.2),
        }
    }

    #[test]
    fn tables_render_expected_columns() {
        let rows = vec![
            sample_row("Hanoi", RunStatus::Completed, 2.0),
            sample_row("Hanoi", RunStatus::TimedOut, 30.0),
        ];
        let table = figure7_table(&rows);
        assert!(table.contains("TVC"));
        assert!(table.contains("t/o"));
        assert!(table.contains("13.2"));

        let series = figure8_series(&rows, &[1.0, 10.0, 100.0]);
        assert!(series.contains("Hanoi"));
        assert!(series.contains("<=10s"));

        let summary = completion_summary(&rows);
        assert!(summary.contains("1/2 completed"));
    }
}
