//! The experiment harness: runs the inference pipeline over the benchmark
//! suite and regenerates the paper's tables and figures.
//!
//! * `figure7` (binary) — per-benchmark results for the full Hanoi
//!   configuration: invariant size, total/verification/synthesis times and
//!   call counts (Figure 7 / Figure 9);
//! * `figure8` (binary) — cumulative benchmarks-completed-over-time series
//!   for Hanoi, Hanoi−SRC, Hanoi−CLC, ∧Str, LA and OneShot (Figure 8);
//! * `ablation_synth` (binary) — the §5.4 comparison between the Myth-style
//!   synthesizer and the fold-capable prototype;
//! * Criterion benches (`benches/`) — component micro-benchmarks (evaluator,
//!   enumeration, verification, synthesis, end-to-end inference).
//!
//! Runs go through a [`hanoi::Engine`]; whether runs share one engine is a
//! *measurement* decision.  `figure7` (one configuration) uses a single
//! engine; `figure8` and `ablation_synth` compare wall-clock across
//! configurations, so they build a fresh engine per run — sharing would let
//! later configurations start from caches earlier ones warmed and inflate
//! their completion counts.  To reuse warm state deliberately, elaborate the
//! benchmark once and pass the same [`hanoi_abstraction::Problem`] and
//! engine to [`run_problem`] repeatedly.
//!
//! Absolute numbers are not expected to match the paper (different machine,
//! different synthesizer implementation); the harness exists to reproduce the
//! *shape* of the results, and EXPERIMENTS.md records the comparison.

pub mod cli;
pub mod json;
pub mod latency;
pub mod report;

use std::time::Duration;

use hanoi::{Engine, Mode, Optimizations, Outcome, RunOptions, RunStats, SynthChoice};
use hanoi_abstraction::Problem;
use hanoi_benchmarks::Benchmark;
use hanoi_verifier::VerifierBounds;

use crate::json::{Json, JsonError};

/// How an individual run ended, in serialisable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// An invariant was inferred.
    Completed,
    /// The run hit its wall-clock budget.
    TimedOut,
    /// The run was cancelled through its `CancelToken`.
    Cancelled,
    /// The synthesizer gave up or the module violated its spec.
    Failed,
}

impl RunStatus {
    /// Serialised form.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunStatus::Completed => "Completed",
            RunStatus::TimedOut => "TimedOut",
            RunStatus::Cancelled => "Cancelled",
            RunStatus::Failed => "Failed",
        }
    }

    /// Inverse of [`RunStatus::as_str`].
    pub fn from_str_name(s: &str) -> Option<RunStatus> {
        match s {
            "Completed" => Some(RunStatus::Completed),
            "TimedOut" => Some(RunStatus::TimedOut),
            "Cancelled" => Some(RunStatus::Cancelled),
            "Failed" => Some(RunStatus::Failed),
            _ => None,
        }
    }
}

/// One row of a result table: run identity and outcome, with the full
/// [`RunStats`] embedded (serialized through `RunStats::to_json`, not
/// re-formatted by hand).
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark id.
    pub id: String,
    /// Mode label (`Hanoi`, `Hanoi-SRC`, …).
    pub mode: String,
    /// Run status.
    pub status: RunStatus,
    /// Inferred invariant (pretty-printed), when available.
    pub invariant: Option<String>,
    /// The run's statistics (every Figure 7 column plus the cache counters).
    pub stats: RunStats,
    /// Invariant size reported by the paper, for comparison.
    pub paper_size: Option<usize>,
    /// Time reported by the paper (seconds), for comparison.
    pub paper_time_secs: Option<f64>,
}

impl Row {
    /// Invariant size in AST nodes (the paper's *Size*).
    pub fn size(&self) -> Option<usize> {
        self.stats.invariant_size
    }

    /// Total wall-clock seconds (*Time*).
    pub fn time_secs(&self) -> f64 {
        self.stats.total_time.as_secs_f64()
    }

    /// Total verification seconds (*TVT*).
    pub fn tvt_secs(&self) -> f64 {
        self.stats.verification_time.as_secs_f64()
    }

    /// Verification call count (*TVC*).
    pub fn tvc(&self) -> usize {
        self.stats.verification_calls
    }

    /// Total synthesis seconds (*TST*).
    pub fn tst_secs(&self) -> f64 {
        self.stats.synthesis_time.as_secs_f64()
    }

    /// Synthesis call count (*TSC*).
    pub fn tsc(&self) -> usize {
        self.stats.synthesis_calls
    }

    /// CEGIS iterations.
    pub fn iterations(&self) -> usize {
        self.stats.iterations
    }

    /// Mean verification time per call (*MVT*), seconds.
    pub fn mvt_secs(&self) -> Option<f64> {
        self.stats.mean_verification_time().map(|t| t.as_secs_f64())
    }

    /// Mean synthesis time per call (*MST*), seconds.
    pub fn mst_secs(&self) -> Option<f64> {
        self.stats.mean_synthesis_time().map(|t| t.as_secs_f64())
    }

    /// Serialises the row to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("mode", Json::Str(self.mode.clone())),
            ("status", Json::Str(self.status.as_str().to_string())),
            ("invariant", Json::opt(self.invariant.clone(), Json::Str)),
            ("stats", self.stats.to_json()),
            (
                "paper_size",
                Json::opt(self.paper_size, |s| Json::Num(s as f64)),
            ),
            (
                "paper_time_secs",
                Json::opt(self.paper_time_secs, Json::Num),
            ),
        ])
    }

    /// Deserialises a row from the output of [`Row::to_json`].
    pub fn from_json(text: &str) -> Result<Row, JsonError> {
        let value = json::parse(text)?;
        Row::from_json_value(&value)
    }

    /// Deserialises a row from an already-parsed JSON value.
    pub fn from_json_value(value: &Json) -> Result<Row, JsonError> {
        let missing = |field: &str| JsonError {
            message: format!("missing or ill-typed field `{field}`"),
            offset: 0,
        };
        Ok(Row {
            id: value
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("id"))?
                .to_string(),
            mode: value
                .get("mode")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("mode"))?
                .to_string(),
            status: value
                .get("status")
                .and_then(Json::as_str)
                .and_then(RunStatus::from_str_name)
                .ok_or_else(|| missing("status"))?,
            invariant: value
                .get("invariant")
                .and_then(Json::as_str)
                .map(str::to_string),
            stats: RunStats::from_json_value(value.get("stats").ok_or_else(|| missing("stats"))?)?,
            paper_size: value.get("paper_size").and_then(Json::as_usize),
            paper_time_secs: value.get("paper_time_secs").and_then(Json::as_f64),
        })
    }
}

/// Harness-level configuration: which bounds/timeout to use for every run.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Per-benchmark wall-clock budget.
    pub timeout: Duration,
    /// Use the paper's verifier bounds (`false` = reduced "quick" bounds).
    pub paper_bounds: bool,
    /// Verifier worker threads (`1` = serial like the paper, `0` = one
    /// worker per available core). Outcomes are identical either way; only
    /// the wall-clock columns change.
    pub parallelism: usize,
    /// The warm-start store directory (`--warm-dir`): every engine built by
    /// [`HarnessConfig::engine`] restores per-problem snapshots from it, and
    /// the binaries save state back into it on exit, so re-invoking a
    /// harness binary starts warm from the previous *process*'s caches.
    /// `None` = cold engines, no filesystem access.
    pub warm_dir: Option<String>,
}

impl HarnessConfig {
    /// A quick configuration for smoke runs and CI: reduced verifier bounds
    /// and a small per-benchmark budget.
    pub fn quick() -> Self {
        HarnessConfig {
            timeout: Duration::from_secs(20),
            paper_bounds: false,
            parallelism: 1,
            warm_dir: None,
        }
    }

    /// A fuller configuration closer to the paper's setup (still with a
    /// reduced default budget; pass `--timeout` to the binaries to raise it).
    pub fn full() -> Self {
        HarnessConfig {
            timeout: Duration::from_secs(300),
            paper_bounds: true,
            parallelism: 1,
            warm_dir: None,
        }
    }

    /// Sets the verifier worker-thread count.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builds the engine for one experiment run, attached to the warm-start
    /// store when one is configured.
    pub fn engine(&self) -> Engine {
        let mut config = hanoi::EngineConfig::default().with_parallelism(self.parallelism);
        if let Some(dir) = &self.warm_dir {
            config = config.with_warm_start_dir(dir);
        }
        Engine::new(config).expect("harness engine config is valid")
    }

    /// Checkpoints an engine into the configured warm-start store (a no-op
    /// without `--warm-dir`), logging failures instead of aborting a
    /// finished experiment.
    pub fn save_engine(&self, engine: &Engine) {
        if self.warm_dir.is_none() {
            return;
        }
        match engine.save_state_to_warm_dir() {
            Ok(written) if written > 0 => eprintln!(
                "saved {written} warm-start snapshot(s) to {}",
                self.warm_dir.as_deref().unwrap_or_default()
            ),
            Ok(_) => {}
            Err(e) => eprintln!("warm-start save failed: {e}"),
        }
    }

    /// Builds the per-run options for one mode.
    pub fn run_options(&self, mode: Mode, optimizations: Optimizations) -> RunOptions {
        let bounds = if self.paper_bounds {
            VerifierBounds::paper()
        } else {
            VerifierBounds::quick()
        };
        RunOptions::paper()
            .with_mode(mode)
            .with_bounds(bounds)
            .with_optimizations(optimizations)
            .with_timeout(Some(self.timeout))
    }
}

/// Runs one already-elaborated problem through the engine and produces a
/// table row.  Runs sharing `problem` (and the engine) reuse its warm pools
/// and term banks.
pub fn run_problem(
    engine: &Engine,
    problem: &Problem,
    benchmark: &Benchmark,
    options: RunOptions,
    mode_label: &str,
) -> Row {
    let result = engine.run(problem, &options);
    let status = match &result.outcome {
        Outcome::Invariant(_) => RunStatus::Completed,
        Outcome::Timeout => RunStatus::TimedOut,
        Outcome::Cancelled => RunStatus::Cancelled,
        Outcome::SpecViolation(_) | Outcome::SynthesisFailure(_) => RunStatus::Failed,
    };
    Row {
        id: benchmark.id.to_string(),
        mode: mode_label.to_string(),
        status,
        invariant: result.outcome.invariant().map(|e| e.to_string()),
        stats: result.stats,
        paper_size: benchmark.paper_size,
        paper_time_secs: benchmark.paper_time_secs,
    }
}

/// Runs one benchmark under one configuration and produces a table row,
/// elaborating the benchmark source first (elaboration failures become
/// [`RunStatus::Failed`] rows).
pub fn run_benchmark(
    engine: &Engine,
    benchmark: &Benchmark,
    options: RunOptions,
    mode_label: &str,
) -> Row {
    match benchmark.problem() {
        Ok(problem) => run_problem(engine, &problem, benchmark, options, mode_label),
        Err(e) => Row {
            id: benchmark.id.to_string(),
            mode: mode_label.to_string(),
            status: RunStatus::Failed,
            invariant: Some(format!("elaboration error: {e}")),
            stats: RunStats::default(),
            paper_size: benchmark.paper_size,
            paper_time_secs: benchmark.paper_time_secs,
        },
    }
}

/// The six configurations of Figure 8, as (label, mode, optimizations).
pub fn figure8_modes() -> Vec<(&'static str, Mode, Optimizations)> {
    vec![
        ("Hanoi", Mode::Hanoi, Optimizations::all()),
        ("Hanoi-SRC", Mode::Hanoi, Optimizations::without_src()),
        ("Hanoi-CLC", Mode::Hanoi, Optimizations::without_clc()),
        ("AndStr", Mode::ConjStr, Optimizations::all()),
        ("LA", Mode::LinearArbitrary, Optimizations::all()),
        ("OneShot", Mode::OneShot, Optimizations::all()),
    ]
}

/// The two synthesizer back ends of the §5.4 ablation.
pub fn ablation_synthesizers() -> Vec<(&'static str, SynthChoice)> {
    vec![("myth", SynthChoice::Myth), ("fold", SynthChoice::Fold)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_on_an_easy_benchmark_completes() {
        let benchmark = hanoi_benchmarks::find("/other/cache").unwrap();
        let harness = HarnessConfig::quick();
        let engine = harness.engine();
        let options = harness.run_options(Mode::Hanoi, Optimizations::all());
        let row = run_benchmark(&engine, &benchmark, options.clone(), "Hanoi");
        assert_eq!(row.status, RunStatus::Completed, "row: {row:?}");
        assert!(row.size().is_some());
        assert!(row.mvt_secs().is_some());
        assert!(row.time_secs() > 0.0);
        // Serialises cleanly, including the embedded statistics.
        let json = row.to_json().render();
        let back = Row::from_json(&json).unwrap();
        assert_eq!(back.id, row.id);
        assert_eq!(back.status, row.status);
        assert_eq!(back.stats.iterations, row.stats.iterations);
        assert_eq!(back.tvc(), row.tvc());

        // A warm re-run through the same engine must agree and skip pool
        // enumeration entirely.
        let problem = benchmark.problem().unwrap();
        let warm = run_problem(&engine, &problem, &benchmark, options.clone(), "Hanoi-warm");
        // (Distinct `Problem` values have distinct cache entries; run twice
        // on the *same* problem to observe warmth.)
        let warmer = run_problem(&engine, &problem, &benchmark, options, "Hanoi-warm");
        assert_eq!(warm.status, warmer.status);
        assert_eq!(warm.invariant, warmer.invariant);
        assert_eq!(warmer.stats.pool_builds, 0, "{:?}", warmer.stats);
    }

    #[test]
    fn mode_and_ablation_tables_are_complete() {
        assert_eq!(figure8_modes().len(), 6);
        assert_eq!(ablation_synthesizers().len(), 2);
        assert_eq!(
            RunStatus::from_str_name("Cancelled"),
            Some(RunStatus::Cancelled)
        );
        assert_eq!(RunStatus::Cancelled.as_str(), "Cancelled");
    }
}
