//! The experiment harness: runs the inference pipeline over the benchmark
//! suite and regenerates the paper's tables and figures.
//!
//! * `figure7` (binary) — per-benchmark results for the full Hanoi
//!   configuration: invariant size, total/verification/synthesis times and
//!   call counts (Figure 7 / Figure 9);
//! * `figure8` (binary) — cumulative benchmarks-completed-over-time series
//!   for Hanoi, Hanoi−SRC, Hanoi−CLC, ∧Str, LA and OneShot (Figure 8);
//! * `ablation_synth` (binary) — the §5.4 comparison between the Myth-style
//!   synthesizer and the fold-capable prototype;
//! * Criterion benches (`benches/`) — component micro-benchmarks (evaluator,
//!   enumeration, verification, synthesis, end-to-end inference).
//!
//! Absolute numbers are not expected to match the paper (different machine,
//! different synthesizer implementation); the harness exists to reproduce the
//! *shape* of the results, and EXPERIMENTS.md records the comparison.

pub mod json;
pub mod report;

use std::time::Duration;

use hanoi::{Driver, HanoiConfig, Mode, Optimizations, Outcome, SynthChoice};
use hanoi_benchmarks::Benchmark;
use hanoi_verifier::VerifierBounds;

use crate::json::{Json, JsonError};

/// How an individual run ended, in serialisable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// An invariant was inferred.
    Completed,
    /// The run hit its wall-clock budget.
    TimedOut,
    /// The synthesizer gave up or the module violated its spec.
    Failed,
}

impl RunStatus {
    /// Serialised form.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunStatus::Completed => "Completed",
            RunStatus::TimedOut => "TimedOut",
            RunStatus::Failed => "Failed",
        }
    }

    /// Inverse of [`RunStatus::as_str`].
    pub fn from_str_name(s: &str) -> Option<RunStatus> {
        match s {
            "Completed" => Some(RunStatus::Completed),
            "TimedOut" => Some(RunStatus::TimedOut),
            "Failed" => Some(RunStatus::Failed),
            _ => None,
        }
    }
}

/// One row of a result table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark id.
    pub id: String,
    /// Mode label (`Hanoi`, `Hanoi-SRC`, …).
    pub mode: String,
    /// Run status.
    pub status: RunStatus,
    /// Inferred invariant (pretty-printed), when available.
    pub invariant: Option<String>,
    /// Invariant size in AST nodes (the paper's *Size*).
    pub size: Option<usize>,
    /// Total wall-clock seconds (*Time*).
    pub time_secs: f64,
    /// Total verification seconds (*TVT*).
    pub tvt_secs: f64,
    /// Verification call count (*TVC*).
    pub tvc: usize,
    /// Total synthesis seconds (*TST*).
    pub tst_secs: f64,
    /// Synthesis call count (*TSC*).
    pub tsc: usize,
    /// CEGIS iterations.
    pub iterations: usize,
    /// Invariant size reported by the paper, for comparison.
    pub paper_size: Option<usize>,
    /// Time reported by the paper (seconds), for comparison.
    pub paper_time_secs: Option<f64>,
}

impl Row {
    /// Serialises the row to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("mode", Json::Str(self.mode.clone())),
            ("status", Json::Str(self.status.as_str().to_string())),
            ("invariant", Json::opt(self.invariant.clone(), Json::Str)),
            ("size", Json::opt(self.size, |s| Json::Num(s as f64))),
            ("time_secs", Json::Num(self.time_secs)),
            ("tvt_secs", Json::Num(self.tvt_secs)),
            ("tvc", Json::Num(self.tvc as f64)),
            ("tst_secs", Json::Num(self.tst_secs)),
            ("tsc", Json::Num(self.tsc as f64)),
            ("iterations", Json::Num(self.iterations as f64)),
            (
                "paper_size",
                Json::opt(self.paper_size, |s| Json::Num(s as f64)),
            ),
            (
                "paper_time_secs",
                Json::opt(self.paper_time_secs, Json::Num),
            ),
        ])
    }

    /// Deserialises a row from the output of [`Row::to_json`].
    pub fn from_json(text: &str) -> Result<Row, JsonError> {
        let value = json::parse(text)?;
        Row::from_json_value(&value)
    }

    /// Deserialises a row from an already-parsed JSON value.
    pub fn from_json_value(value: &Json) -> Result<Row, JsonError> {
        let missing = |field: &str| JsonError {
            message: format!("missing or ill-typed field `{field}`"),
            offset: 0,
        };
        Ok(Row {
            id: value
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("id"))?
                .to_string(),
            mode: value
                .get("mode")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("mode"))?
                .to_string(),
            status: value
                .get("status")
                .and_then(Json::as_str)
                .and_then(RunStatus::from_str_name)
                .ok_or_else(|| missing("status"))?,
            invariant: value
                .get("invariant")
                .and_then(Json::as_str)
                .map(str::to_string),
            size: value.get("size").and_then(Json::as_usize),
            time_secs: value
                .get("time_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("time_secs"))?,
            tvt_secs: value
                .get("tvt_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("tvt_secs"))?,
            tvc: value
                .get("tvc")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("tvc"))?,
            tst_secs: value
                .get("tst_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("tst_secs"))?,
            tsc: value
                .get("tsc")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("tsc"))?,
            iterations: value
                .get("iterations")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("iterations"))?,
            paper_size: value.get("paper_size").and_then(Json::as_usize),
            paper_time_secs: value.get("paper_time_secs").and_then(Json::as_f64),
        })
    }

    /// Mean verification time per call (*MVT*), seconds.
    pub fn mvt_secs(&self) -> Option<f64> {
        (self.tvc > 0).then(|| self.tvt_secs / self.tvc as f64)
    }

    /// Mean synthesis time per call (*MST*), seconds.
    pub fn mst_secs(&self) -> Option<f64> {
        (self.tsc > 0).then(|| self.tst_secs / self.tsc as f64)
    }
}

/// Harness-level configuration: which bounds/timeout to use for every run.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Per-benchmark wall-clock budget.
    pub timeout: Duration,
    /// Use the paper's verifier bounds (`false` = reduced "quick" bounds).
    pub paper_bounds: bool,
    /// Verifier worker threads (`1` = serial like the paper, `0` = one
    /// worker per available core). Outcomes are identical either way; only
    /// the wall-clock columns change.
    pub parallelism: usize,
}

impl HarnessConfig {
    /// A quick configuration for smoke runs and CI: reduced verifier bounds
    /// and a small per-benchmark budget.
    pub fn quick() -> Self {
        HarnessConfig {
            timeout: Duration::from_secs(20),
            paper_bounds: false,
            parallelism: 1,
        }
    }

    /// A fuller configuration closer to the paper's setup (still with a
    /// reduced default budget; pass `--timeout` to the binaries to raise it).
    pub fn full() -> Self {
        HarnessConfig {
            timeout: Duration::from_secs(300),
            paper_bounds: true,
            parallelism: 1,
        }
    }

    /// Sets the verifier worker-thread count.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builds the inference configuration for one mode.
    pub fn inference_config(&self, mode: Mode, optimizations: Optimizations) -> HanoiConfig {
        let bounds = if self.paper_bounds {
            VerifierBounds::paper()
        } else {
            VerifierBounds::quick()
        };
        HanoiConfig {
            mode,
            bounds,
            optimizations,
            timeout: Some(self.timeout),
            parallelism: self.parallelism,
            ..HanoiConfig::default()
        }
    }
}

/// Runs one benchmark under one configuration and produces a table row.
pub fn run_benchmark(benchmark: &Benchmark, config: HanoiConfig, mode_label: &str) -> Row {
    let paper_size = benchmark.paper_size;
    let paper_time_secs = benchmark.paper_time_secs;
    let problem = match benchmark.problem() {
        Ok(problem) => problem,
        Err(e) => {
            return Row {
                id: benchmark.id.to_string(),
                mode: mode_label.to_string(),
                status: RunStatus::Failed,
                invariant: Some(format!("elaboration error: {e}")),
                size: None,
                time_secs: 0.0,
                tvt_secs: 0.0,
                tvc: 0,
                tst_secs: 0.0,
                tsc: 0,
                iterations: 0,
                paper_size,
                paper_time_secs,
            }
        }
    };
    let result = Driver::new(&problem, config).run();
    let status = match &result.outcome {
        Outcome::Invariant(_) => RunStatus::Completed,
        Outcome::Timeout => RunStatus::TimedOut,
        Outcome::SpecViolation(_) | Outcome::SynthesisFailure(_) => RunStatus::Failed,
    };
    Row {
        id: benchmark.id.to_string(),
        mode: mode_label.to_string(),
        status,
        invariant: result.outcome.invariant().map(|e| e.to_string()),
        size: result.stats.invariant_size,
        time_secs: result.stats.total_time.as_secs_f64(),
        tvt_secs: result.stats.verification_time.as_secs_f64(),
        tvc: result.stats.verification_calls,
        tst_secs: result.stats.synthesis_time.as_secs_f64(),
        tsc: result.stats.synthesis_calls,
        iterations: result.stats.iterations,
        paper_size,
        paper_time_secs,
    }
}

/// The six configurations of Figure 8, as (label, mode, optimizations).
pub fn figure8_modes() -> Vec<(&'static str, Mode, Optimizations)> {
    vec![
        ("Hanoi", Mode::Hanoi, Optimizations::all()),
        ("Hanoi-SRC", Mode::Hanoi, Optimizations::without_src()),
        ("Hanoi-CLC", Mode::Hanoi, Optimizations::without_clc()),
        ("AndStr", Mode::ConjStr, Optimizations::all()),
        ("LA", Mode::LinearArbitrary, Optimizations::all()),
        ("OneShot", Mode::OneShot, Optimizations::all()),
    ]
}

/// The two synthesizer back ends of the §5.4 ablation.
pub fn ablation_synthesizers() -> Vec<(&'static str, SynthChoice)> {
    vec![("myth", SynthChoice::Myth), ("fold", SynthChoice::Fold)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_on_an_easy_benchmark_completes() {
        let benchmark = hanoi_benchmarks::find("/other/cache").unwrap();
        let harness = HarnessConfig::quick();
        let config = harness.inference_config(Mode::Hanoi, Optimizations::all());
        let row = run_benchmark(&benchmark, config, "Hanoi");
        assert_eq!(row.status, RunStatus::Completed, "row: {row:?}");
        assert!(row.size.is_some());
        assert!(row.mvt_secs().is_some());
        assert!(row.time_secs > 0.0);
        // Serialises cleanly.
        let json = row.to_json().render();
        let back = Row::from_json(&json).unwrap();
        assert_eq!(back.id, row.id);
        assert_eq!(back.status, row.status);
    }

    #[test]
    fn mode_and_ablation_tables_are_complete() {
        assert_eq!(figure8_modes().len(), 6);
        assert_eq!(ablation_synthesizers().len(), 2);
    }
}
