//! Re-export of the hand-rolled JSON reader/writer, which moved to
//! [`hanoi::json`] so `RunStats` (and anything else in the core crate) can
//! serialize itself without depending on the experiment harness.  Kept here
//! so `hanoi_bench::json::Json` paths keep working.

pub use hanoi::json::*;
