//! End-to-end server behavior: answers must match direct engine runs,
//! overload must shed with backoff hints, quotas must keep one client from
//! starving the rest, cancellation must work at the protocol level, an
//! injected worker panic must cost exactly one run (never the process, the
//! connection, or the warm caches), and a graceful drain must checkpoint
//! warm-start state that a fresh engine can boot from.
//!
//! The durable-run half: a disconnect must *detach* a run rather than kill
//! it, `resume` must replay the missed sequence-numbered frames and then
//! go live, a merged disconnect/resume stream must be indistinguishable
//! from an uninterrupted one (same result, contiguous gap-free sequence),
//! detached runs nobody reclaims must be cancelled after the grace
//! deadline, token buckets must shed over-rate submitters with honest
//! hints, and a `reload` must swap tunables without dropping in-flight
//! runs.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

use hanoi::{Engine, EngineConfig, RunOptions};
use hanoi_abstraction::Problem;
use hanoi_lang::json::{self, Json};
use hanoi_server::{Server, ServerConfig, ServerHandle};

const TRIVIAL: &str = r#"
    type nat = O | S of nat
    interface I = sig
      type t
      val make : t
    end
    module M : I = struct
      type t = nat
      let make : t = O
    end
    spec (s : t) = s == s
"#;

const LIST_SET: &str = r#"
    type nat = O | S of nat
    type list = Nil | Cons of nat * list

    interface SET = sig
      type t
      val empty : t
      val insert : t -> nat -> t
      val delete : t -> nat -> t
      val lookup : t -> nat -> bool
    end

    module ListSet : SET = struct
      type t = list
      let empty : t = Nil
      let rec lookup (l : t) (x : nat) : bool =
        match l with
        | Nil -> False
        | Cons (hd, tl) -> hd == x || lookup tl x
        end
      let insert (l : t) (x : nat) : t =
        if lookup l x then l else Cons (x, l)
      let rec delete (l : t) (x : nat) : t =
        match l with
        | Nil -> Nil
        | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
        end
    end

    spec (s : t) (i : nat) =
      not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
"#;

struct TestServer {
    addr: String,
    handle: ServerHandle,
    join: Option<JoinHandle<std::io::Result<usize>>>,
}

impl TestServer {
    fn spawn(config: ServerConfig) -> TestServer {
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        let handle = server.handle();
        let addr = handle.addr().to_string();
        let join = Some(std::thread::spawn(move || server.serve()));
        TestServer { addr, handle, join }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Conn {
            reader: BufReader::new(stream),
            parked: std::collections::HashMap::new(),
        }
    }

    /// Connects and leads with a raw PROXY protocol v1 header, the way a
    /// `send-proxy` reverse proxy would.
    fn connect_proxied(&self, header: &str) -> Conn {
        use std::io::Write;
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream.write_all(header.as_bytes()).expect("proxy header");
        Conn {
            reader: BufReader::new(stream),
            parked: std::collections::HashMap::new(),
        }
    }

    /// Drains and returns the number of warm-start snapshots written.
    fn drain(mut self) -> usize {
        self.handle.drain();
        let snapshots = self
            .handle
            .wait_drained(Duration::from_secs(60))
            .expect("drain timed out");
        if let Some(join) = self.join.take() {
            join.join().expect("serve thread").expect("serve result");
        }
        snapshots
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.drain();
        self.handle.wait_drained(Duration::from_secs(60));
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    parked: std::collections::HashMap<String, Json>,
}

impl Conn {
    fn send(&mut self, frame: &Json) {
        json::write_frame(self.reader.get_mut(), frame).expect("write frame");
    }

    fn submit(&mut self, id: &str, source: &str) {
        self.send(&Json::obj([
            ("op", Json::Str("submit".to_string())),
            ("id", Json::Str(id.to_string())),
            ("source", Json::Str(source.to_string())),
        ]));
    }

    fn submit_chaos(&mut self, id: &str, kind: &str, ms: u64) {
        let chaos = if kind == "sleep" {
            Json::obj([
                ("kind", Json::Str("sleep".to_string())),
                ("ms", Json::Num(ms as f64)),
            ])
        } else {
            Json::obj([("kind", Json::Str(kind.to_string()))])
        };
        self.send(&Json::obj([
            ("op", Json::Str("submit".to_string())),
            ("id", Json::Str(id.to_string())),
            ("source", Json::Str(TRIVIAL.to_string())),
            ("chaos", chaos),
        ]));
    }

    fn read_frame(&mut self) -> Json {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).expect("read");
            assert!(n > 0, "server closed the connection");
            if line.trim().is_empty() {
                continue;
            }
            return json::parse(line.trim()).expect("reply frames are valid JSON");
        }
    }

    /// Submits with the event stream enabled and (optionally) a sleep-chaos
    /// directive that holds the worker long enough to disconnect mid-run.
    fn submit_streaming(&mut self, id: &str, source: &str, sleep_ms: Option<u64>) {
        let mut fields = vec![
            ("op", Json::Str("submit".to_string())),
            ("id", Json::Str(id.to_string())),
            ("source", Json::Str(source.to_string())),
            ("events", Json::Bool(true)),
        ];
        if let Some(ms) = sleep_ms {
            fields.push((
                "chaos",
                Json::obj([
                    ("kind", Json::Str("sleep".to_string())),
                    ("ms", Json::Num(ms as f64)),
                ]),
            ));
        }
        self.send(&Json::obj(fields));
    }

    /// Reads until the `accepted` ack for `id` and returns its run token.
    fn read_token(&mut self, id: &str) -> String {
        loop {
            let frame = self.read_frame();
            if frame.get("reply").and_then(Json::as_str) == Some("accepted")
                && frame.get("id").and_then(Json::as_str) == Some(id)
            {
                return frame
                    .get("token")
                    .and_then(Json::as_str)
                    .expect("accepted frames carry a run token")
                    .to_string();
            }
        }
    }

    fn resume(&mut self, token: &str, last_seq: u64) {
        self.send(&Json::obj([
            ("op", Json::Str("resume".to_string())),
            ("token", Json::Str(token.to_string())),
            ("last_seq", Json::Num(last_seq as f64)),
        ]));
    }

    /// Reads until the `resumed` ack and returns it.
    fn read_resumed(&mut self) -> Json {
        loop {
            let frame = self.read_frame();
            match frame.get("reply").and_then(Json::as_str) {
                Some("resumed") => return frame,
                Some("error") => panic!("resume failed: {}", frame.render()),
                _ => continue,
            }
        }
    }

    /// The `server` counter object from a wire-level `stats` round trip.
    fn server_stats(&mut self) -> Json {
        self.send(&Json::obj([("op", Json::Str("stats".to_string()))]));
        loop {
            let frame = self.read_frame();
            if frame.get("reply").and_then(Json::as_str) == Some("stats") {
                return frame.get("server").expect("stats carry counters").clone();
            }
        }
    }

    /// The result/error/shed answer for `id`; answers for other pipelined
    /// ids are parked (runs complete in worker order, not submit order).
    fn wait_answer(&mut self, id: &str) -> Json {
        if let Some(frame) = self.parked.remove(id) {
            return frame;
        }
        loop {
            let frame = self.read_frame();
            let reply = frame.get("reply").and_then(Json::as_str).unwrap_or("");
            if !matches!(reply, "result" | "error" | "shed") {
                continue;
            }
            let frame_id = frame.get("id").and_then(Json::as_str).unwrap_or("");
            if frame_id == id {
                return frame;
            }
            if !frame_id.is_empty() {
                self.parked.insert(frame_id.to_string(), frame);
            }
        }
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hanoi-server-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn answers_match_direct_engine_runs() {
    let server = TestServer::spawn(ServerConfig::default().with_workers(2));
    let engine = Engine::with_defaults();
    for (name, source) in [("trivial", TRIVIAL), ("list-set", LIST_SET)] {
        let direct = engine.run(&Problem::from_source(source).unwrap(), &RunOptions::quick());
        let expected = direct
            .outcome
            .invariant()
            .unwrap_or_else(|| panic!("{name}: direct run failed: {}", direct.outcome))
            .to_string();
        let mut conn = server.connect();
        conn.submit(name, source);
        let answer = conn.wait_answer(name);
        assert_eq!(
            answer.get("status").and_then(Json::as_str),
            Some("invariant"),
            "{name}: {}",
            answer.render()
        );
        assert_eq!(
            answer.get("invariant").and_then(Json::as_str),
            Some(expected.as_str()),
            "{name}: the served answer differs from a direct engine run"
        );
        // Accounting rode along: stats and timing are on the frame.
        assert!(answer.get("stats").is_some());
        assert!(answer.get("run_ms").and_then(Json::as_usize).is_some());
    }
}

#[test]
fn event_streams_arrive_in_protocol_order() {
    let server = TestServer::spawn(ServerConfig::default().with_workers(1));
    let mut conn = server.connect();
    conn.send(&Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str("observed".to_string())),
        ("source", Json::Str(TRIVIAL.to_string())),
        ("events", Json::Bool(true)),
    ]));
    let mut kinds = Vec::new();
    let result = loop {
        let frame = conn.read_frame();
        match frame.get("reply").and_then(Json::as_str) {
            Some("event") => {
                kinds.push(
                    frame
                        .get("kind")
                        .and_then(Json::as_str)
                        .expect("events carry a kind")
                        .to_string(),
                );
            }
            Some("result") => break frame,
            Some("accepted") => {}
            other => panic!("unexpected reply {other:?}"),
        }
    };
    assert_eq!(
        result.get("status").and_then(Json::as_str),
        Some("invariant")
    );
    assert_eq!(kinds.first().map(String::as_str), Some("run-started"));
    assert_eq!(kinds.last().map(String::as_str), Some("run-finished"));
}

#[test]
fn overload_at_twice_the_budget_sheds_with_retry_hints() {
    // 1 worker, queue depth 2, generous quota: budget = 3 concurrent jobs.
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_max_queue_depth(2)
            .with_per_client_quota(64)
            .with_chaos(true),
    );
    let mut conn = server.connect();
    let burst = 6; // 2x the admission budget
    for i in 0..burst {
        // Sleep-chaos keeps the worker busy so the queue genuinely fills.
        conn.submit_chaos(&format!("burst-{i}"), "sleep", 200);
    }
    let mut accepted = 0;
    let mut shed = 0;
    for i in 0..burst {
        let answer = conn.wait_answer(&format!("burst-{i}"));
        match answer.get("reply").and_then(Json::as_str) {
            Some("shed") => {
                shed += 1;
                assert_eq!(
                    answer.get("reason").and_then(Json::as_str),
                    Some("queue-full"),
                    "{}",
                    answer.render()
                );
                let hint = answer
                    .get("retry_after_ms")
                    .and_then(Json::as_usize)
                    .unwrap_or(0);
                assert!(hint > 0, "shed replies must carry a backoff hint");
            }
            Some("result") => accepted += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(accepted >= 1, "the in-budget prefix must be served");
    assert!(
        shed >= burst - 3,
        "an overload burst of {burst} against a budget of 3 shed only {shed}"
    );
}

#[test]
fn per_client_quota_protects_other_clients() {
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_max_queue_depth(16)
            .with_per_client_quota(2)
            .with_chaos(true),
    );
    let mut greedy = server.connect();
    for i in 0..4 {
        greedy.submit_chaos(&format!("greedy-{i}"), "sleep", 300);
    }
    let mut shed_reasons = Vec::new();
    for i in 0..4 {
        let answer = greedy.wait_answer(&format!("greedy-{i}"));
        if answer.get("reply").and_then(Json::as_str) == Some("shed") {
            shed_reasons.push(
                answer
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            );
        }
    }
    assert!(
        shed_reasons.iter().any(|r| r == "client-quota"),
        "a client 2x over quota was never shed: {shed_reasons:?}"
    );
    // A different client was never locked out (the queue had room).
    let mut modest = server.connect();
    modest.submit("modest", TRIVIAL);
    let answer = modest.wait_answer("modest");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("invariant"),
        "{}",
        answer.render()
    );
}

#[test]
fn queued_runs_can_be_cancelled_over_the_wire() {
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_max_queue_depth(8)
            .with_chaos(true),
    );
    let mut conn = server.connect();
    // Occupy the single worker, then queue a victim behind it.
    conn.submit_chaos("blocker", "sleep", 500);
    conn.submit("victim", TRIVIAL);
    conn.send(&Json::obj([
        ("op", Json::Str("cancel".to_string())),
        ("id", Json::Str("victim".to_string())),
    ]));
    let ack = loop {
        let frame = conn.read_frame();
        if frame.get("reply").and_then(Json::as_str) == Some("cancelled") {
            break frame;
        }
    };
    assert_eq!(ack.get("found").and_then(Json::as_bool), Some(true));
    let victim = conn.wait_answer("victim");
    assert_eq!(
        victim.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{}",
        victim.render()
    );
    // Cancelling an unknown id is answered honestly.
    conn.send(&Json::obj([
        ("op", Json::Str("cancel".to_string())),
        ("id", Json::Str("never-was".to_string())),
    ]));
    let ack = loop {
        let frame = conn.read_frame();
        if frame.get("reply").and_then(Json::as_str) == Some("cancelled") {
            break frame;
        }
    };
    assert_eq!(ack.get("found").and_then(Json::as_bool), Some(false));
}

#[test]
fn watchdog_ceiling_clamps_client_timeouts() {
    // The client asks for a 10-minute budget; the server's watchdog ceiling
    // is far smaller and must win.
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_watchdog(Duration::from_millis(1)),
    );
    let mut conn = server.connect();
    conn.send(&Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str("hog".to_string())),
        ("source", Json::Str(LIST_SET.to_string())),
        ("options", Json::obj([("timeout_ms", Json::Num(600_000.0))])),
    ]));
    let answer = conn.wait_answer("hog");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("timeout"),
        "{}",
        answer.render()
    );
}

#[test]
fn a_panicking_run_is_isolated_and_warm_caches_survive() {
    let server = TestServer::spawn(ServerConfig::default().with_workers(2).with_chaos(true));
    let mut conn = server.connect();
    // Warm the problem's caches with a clean run.
    conn.submit("warm", TRIVIAL);
    let warm = conn.wait_answer("warm");
    assert_eq!(warm.get("status").and_then(Json::as_str), Some("invariant"));

    // A worker panic becomes a structured error on the SAME connection.
    conn.submit_chaos("boom", "panic", 0);
    let boom = conn.wait_answer("boom");
    assert_eq!(
        boom.get("reply").and_then(Json::as_str),
        Some("error"),
        "{}",
        boom.render()
    );
    assert_eq!(boom.get("code").and_then(Json::as_str), Some("panic"));

    // The process, the connection, and the warm caches all survived: the
    // next run must not rebuild its value pools.
    conn.submit("after", TRIVIAL);
    let after = conn.wait_answer("after");
    assert_eq!(
        after.get("status").and_then(Json::as_str),
        Some("invariant")
    );
    let pool_builds = after
        .get("stats")
        .and_then(|s| s.get("pool_builds"))
        .and_then(Json::as_usize);
    assert_eq!(
        pool_builds,
        Some(0),
        "warm caches were lost across the panic: {}",
        after.render()
    );
}

#[test]
fn drain_checkpoints_warm_state_a_fresh_engine_boots_from() {
    let dir = scratch_dir("drain");
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_engine(EngineConfig::default().with_warm_start_dir(&dir)),
    );
    let mut conn = server.connect();
    conn.submit("seed", TRIVIAL);
    let seed = conn.wait_answer("seed");
    assert_eq!(seed.get("status").and_then(Json::as_str), Some("invariant"));
    let snapshots = server.drain();
    assert!(snapshots >= 1, "drain wrote no warm-start snapshots");

    // "Next process": a brand-new engine pointed at the drained store must
    // come up warm.
    let engine = Engine::new(EngineConfig::default().with_warm_start_dir(&dir)).unwrap();
    let restarted = engine.run(
        &Problem::from_source(TRIVIAL).unwrap(),
        &RunOptions::quick(),
    );
    assert!(restarted.is_success());
    assert!(
        restarted.stats.warm_start_loads > 0,
        "restart found nothing to load: {:?}",
        restarted.stats
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Durable runs: resume, grace deadlines, rate limiting, hot reload
// ---------------------------------------------------------------------------

fn counter(server_stats: &Json, name: &str) -> usize {
    server_stats
        .get(name)
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("stats counter `{name}` missing: {}", server_stats.render()))
}

/// Asserts the frames form the complete stream of one run: sequence numbers
/// are exactly `1..=n` in order, and the last frame is the terminal
/// `result`/`error`.  Returns the terminal frame.
fn assert_contiguous_stream(frames: &[Json], what: &str) -> Json {
    assert!(!frames.is_empty(), "{what}: empty stream");
    for (i, frame) in frames.iter().enumerate() {
        let seq = frame
            .get("seq")
            .and_then(Json::as_usize)
            .unwrap_or_else(|| panic!("{what}: frame without seq: {}", frame.render()));
        assert_eq!(
            seq,
            i + 1,
            "{what}: stream has a hole or a duplicate at position {i}: {}",
            frame.render()
        );
    }
    let last = frames.last().unwrap();
    let reply = last.get("reply").and_then(Json::as_str).unwrap_or("");
    assert!(
        matches!(reply, "result" | "error"),
        "{what}: stream does not end with a terminal frame: {}",
        last.render()
    );
    last.clone()
}

/// One uninterrupted streamed run: returns its sequenced frames.
fn run_uninterrupted(server: &TestServer, id: &str, source: &str) -> Vec<Json> {
    let mut conn = server.connect();
    conn.submit_streaming(id, source, None);
    // No token wait: the worker can outrace the `accepted` ack, and the
    // ack-skipping read below must not swallow those early events.
    let mut frames = Vec::new();
    loop {
        let frame = conn.read_frame();
        match frame.get("reply").and_then(Json::as_str) {
            Some("event") => frames.push(frame),
            Some("result") | Some("error") => {
                frames.push(frame);
                return frames;
            }
            Some("gap") => panic!("uninterrupted run saw a gap: {}", frame.render()),
            _ => continue,
        }
    }
}

/// The same run, interrupted: the connection is dropped cold after reading
/// `offset` sequenced frames (for each offset in turn), then a fresh
/// connection resumes by token from the last seen sequence number.  Returns
/// the merged stream (replayed + live frames across all connections).
fn run_interrupted(server: &TestServer, id: &str, source: &str, offsets: &[usize]) -> Vec<Json> {
    let mut conn = server.connect();
    conn.submit_streaming(id, source, Some(150));
    let token = conn.read_token(id);
    let mut frames: Vec<Json> = Vec::new();
    let mut last_seq = 0u64;

    let read_stream = |conn: &mut Conn,
                       frames: &mut Vec<Json>,
                       last_seq: &mut u64,
                       upto: Option<usize>|
     -> bool {
        // Reads sequenced frames until the terminal one (true) or until
        // `upto` frames were read on this leg (false).
        let mut read_here = 0usize;
        loop {
            if let Some(limit) = upto {
                if read_here >= limit {
                    return false;
                }
            }
            let frame = conn.read_frame();
            match frame.get("reply").and_then(Json::as_str) {
                Some("event") | Some("result") | Some("error") => {
                    if let Some(seq) = frame.get("seq").and_then(Json::as_usize) {
                        *last_seq = seq as u64;
                    }
                    let terminal = matches!(
                        frame.get("reply").and_then(Json::as_str),
                        Some("result") | Some("error")
                    );
                    frames.push(frame);
                    read_here += 1;
                    if terminal {
                        return true;
                    }
                }
                Some("gap") => panic!("replay buffer evicted frames mid-test: {}", frame.render()),
                _ => continue,
            }
        }
    };

    for &offset in offsets {
        if read_stream(&mut conn, &mut frames, &mut last_seq, Some(offset)) {
            return frames; // finished before this disconnect offset
        }
        drop(conn); // kill the socket cold, mid-stream
                    // Let the detached run make progress without us.
        std::thread::sleep(Duration::from_millis(60));
        conn = server.connect();
        conn.resume(&token, last_seq);
        let resumed = conn.read_resumed();
        assert_eq!(
            resumed.get("token").and_then(Json::as_str),
            Some(token.as_str())
        );
    }
    read_stream(&mut conn, &mut frames, &mut last_seq, None);
    frames
}

#[test]
fn resume_replays_the_missed_stream_after_a_disconnect() {
    let server = TestServer::spawn(ServerConfig::default().with_workers(1).with_chaos(true));
    // Submit a streamed run, then vanish before a single event arrives: the
    // run must keep executing and journaling without us.
    let mut conn = server.connect();
    conn.submit_streaming("durable", TRIVIAL, Some(150));
    let token = conn.read_token("durable");
    drop(conn); // hard disconnect: the run must keep executing

    // Come back well after the run finished detached: the whole stream —
    // terminal result included — must be served from the replay journal.
    std::thread::sleep(Duration::from_millis(700));
    let mut conn = server.connect();
    conn.resume(&token, 0);
    let resumed = conn.read_resumed();
    assert_eq!(resumed.get("id").and_then(Json::as_str), Some("durable"));
    assert_eq!(
        resumed.get("finished").and_then(Json::as_bool),
        Some(true),
        "{}",
        resumed.render()
    );
    assert!(
        resumed
            .get("replayed")
            .and_then(Json::as_usize)
            .unwrap_or(0)
            >= 2,
        "{}",
        resumed.render()
    );

    // Everything missed is replayed, then the stream goes live; merged it
    // must be a complete, contiguous, gap-free run.
    let mut frames = Vec::new();
    loop {
        let frame = conn.read_frame();
        match frame.get("reply").and_then(Json::as_str) {
            Some("event") | Some("result") | Some("error") => {
                let terminal = frame.get("reply").and_then(Json::as_str) != Some("event");
                frames.push(frame);
                if terminal {
                    break;
                }
            }
            Some("gap") => panic!("unexpected gap: {}", frame.render()),
            _ => continue,
        }
    }
    let result = assert_contiguous_stream(&frames, "resumed run");
    assert_eq!(
        result.get("status").and_then(Json::as_str),
        Some("invariant"),
        "{}",
        result.render()
    );

    // The durability counters observed it all.
    let stats = conn.server_stats();
    assert!(counter(&stats, "runs_detached") >= 1, "{}", stats.render());
    assert!(counter(&stats, "runs_resumed") >= 1, "{}", stats.render());
    assert!(
        counter(&stats, "replay_events_sent") >= 1,
        "{}",
        stats.render()
    );
}

#[test]
fn merged_disconnect_resume_streams_match_uninterrupted_runs() {
    // Chaos-equivalence over three real suite benchmarks: a run chopped up
    // by forced disconnects at assorted offsets must produce exactly the
    // same answer as an uninterrupted run, over a contiguous gap-free
    // sequence-numbered stream.
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(2)
            .with_chaos(true)
            .with_replay_buffer_bytes(4 * 1024 * 1024),
    );
    let suite: Vec<(String, String)> = [
        "/other/sized-list",
        "/vfa/assoc-list-::-table",
        "/coq/unique-list-::-set",
    ]
    .iter()
    .map(|id| {
        let benchmark = hanoi_benchmarks::find(id).expect("known benchmark id");
        (benchmark.id.to_string(), benchmark.source)
    })
    .collect();
    for (round, (name, source)) in suite.iter().enumerate() {
        let baseline = run_uninterrupted(&server, &format!("base-{round}"), source);
        let expected = assert_contiguous_stream(&baseline, name);

        // Vary the cut points per benchmark: first frame, mid-stream, deep.
        let offsets: &[usize] = match round {
            0 => &[1, 2],
            1 => &[2, 5],
            _ => &[3],
        };
        let merged = run_interrupted(&server, &format!("chop-{round}"), source, offsets);
        let got = assert_contiguous_stream(&merged, name);
        assert_eq!(
            got.get("status").and_then(Json::as_str),
            expected.get("status").and_then(Json::as_str),
            "{name}: interrupted run ended differently: {}",
            got.render()
        );
        assert_eq!(
            got.get("invariant").and_then(Json::as_str),
            expected.get("invariant").and_then(Json::as_str),
            "{name}: interrupted run inferred a different invariant"
        );
    }
}

#[test]
fn detached_runs_are_cancelled_after_the_grace_deadline() {
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_chaos(true)
            .with_disconnect_grace(Duration::from_millis(100)),
    );
    let mut conn = server.connect();
    conn.submit_streaming("abandoned", TRIVIAL, Some(600));
    let token = conn.read_token("abandoned");
    drop(conn); // nobody ever comes back ... within the grace window

    // Grace (100ms) + reaper poll (50ms) + chaos sleep (600ms): by 900ms the
    // run must have been force-cancelled and its terminal frame journaled.
    std::thread::sleep(Duration::from_millis(900));
    let mut conn = server.connect();
    conn.resume(&token, 0);
    let resumed = conn.read_resumed();
    assert_eq!(
        resumed.get("finished").and_then(Json::as_bool),
        Some(true),
        "{}",
        resumed.render()
    );
    let answer = conn.wait_answer("abandoned");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{}",
        answer.render()
    );
    let stats = conn.server_stats();
    assert!(counter(&stats, "grace_cancels") >= 1, "{}", stats.render());
}

#[test]
fn over_rate_submitters_are_shed_by_the_token_bucket() {
    // Burst of 2, refill 5/s: a 6-submit volley must see rate sheds with
    // honest hints, and patience must be rewarded.
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(2)
            .with_rate_limit(5.0, 2.0),
    );
    let mut conn = server.connect();
    for i in 0..6 {
        conn.submit(&format!("rl-{i}"), TRIVIAL);
    }
    let mut results = 0;
    let mut rate_shed = 0;
    for i in 0..6 {
        let answer = conn.wait_answer(&format!("rl-{i}"));
        match answer.get("reply").and_then(Json::as_str) {
            Some("result") => results += 1,
            Some("shed") => {
                assert_eq!(
                    answer.get("reason").and_then(Json::as_str),
                    Some("rate-limited"),
                    "{}",
                    answer.render()
                );
                let hint = answer
                    .get("retry_after_ms")
                    .and_then(Json::as_usize)
                    .unwrap_or(0);
                assert!(hint >= 1, "rate sheds must carry a positive hint");
                // Honest means honest: at 5/s the bucket cannot demand more
                // than a few seconds for a deficit this size.
                assert!(hint <= 2_000, "dishonest hint: {hint}ms");
                rate_shed += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(results >= 1, "the in-burst prefix must be served");
    assert!(rate_shed >= 2, "a 3x-burst volley shed only {rate_shed}");

    // After backing off, the bucket has refilled.
    std::thread::sleep(Duration::from_millis(700));
    conn.submit("rl-patient", TRIVIAL);
    let answer = conn.wait_answer("rl-patient");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("invariant"),
        "{}",
        answer.render()
    );
    let stats = conn.server_stats();
    assert!(
        counter(&stats, "rate_limited_sheds") >= 2,
        "{}",
        stats.render()
    );
}

#[test]
fn reload_swaps_tunables_without_dropping_in_flight_runs() {
    let dir = scratch_dir("reload");
    let path = dir.join("tunables.json");
    std::fs::write(&path, "{}").unwrap();
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_chaos(true)
            .with_config_path(&path),
    );
    // An in-flight run straddles the reload.
    let mut conn = server.connect();
    conn.submit_chaos("straddler", "sleep", 400);

    std::fs::write(&path, r#"{"rate_per_sec": 3.5, "max_queue_depth": 5}"#).unwrap();
    conn.send(&Json::obj([("op", Json::Str("reload".to_string()))]));
    let reloaded = loop {
        let frame = conn.read_frame();
        if frame.get("reply").and_then(Json::as_str) == Some("reloaded") {
            break frame;
        }
        assert_ne!(
            frame.get("reply").and_then(Json::as_str),
            Some("error"),
            "{}",
            frame.render()
        );
    };
    let tunables = reloaded.get("tunables").expect("reloaded carries tunables");
    assert_eq!(
        tunables.get("rate_per_sec").and_then(Json::as_f64),
        Some(3.5),
        "{}",
        tunables.render()
    );
    assert_eq!(
        tunables.get("max_queue_depth").and_then(Json::as_usize),
        Some(5)
    );

    // The straddler survived the swap.
    let answer = conn.wait_answer("straddler");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("invariant"),
        "{}",
        answer.render()
    );

    // A rejected reload (invalid tunables) keeps the previous set in force.
    std::fs::write(&path, r#"{"max_queue_depth": 0}"#).unwrap();
    conn.send(&Json::obj([("op", Json::Str("reload".to_string()))]));
    let refused = loop {
        let frame = conn.read_frame();
        if frame.get("reply").and_then(Json::as_str) == Some("error") {
            break frame;
        }
    };
    assert_eq!(
        refused.get("code").and_then(Json::as_str),
        Some("reload-failed"),
        "{}",
        refused.render()
    );
    let stats = conn.server_stats();
    assert_eq!(counter(&stats, "config_reloads"), 1, "{}", stats.render());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_without_a_config_path_is_refused_honestly() {
    let server = TestServer::spawn(ServerConfig::default().with_workers(1));
    let mut conn = server.connect();
    conn.send(&Json::obj([("op", Json::Str("reload".to_string()))]));
    let frame = conn.read_frame();
    assert_eq!(
        frame.get("code").and_then(Json::as_str),
        Some("reload-unavailable"),
        "{}",
        frame.render()
    );
}

#[test]
fn resuming_onto_a_conflicting_run_id_is_refused() {
    // Two clients each run a job under the same client-chosen id.  If the
    // second client resumes the first client's token, honouring it would
    // overwrite the cancel routing of its *own* run — the server must
    // refuse with a distinct error code instead.
    let server = TestServer::spawn(ServerConfig::default().with_workers(2).with_chaos(true));
    let mut first = server.connect();
    first.submit_streaming("same", TRIVIAL, Some(1_000));
    let token = first.read_token("same");

    let mut second = server.connect();
    second.submit_chaos("same", "sleep", 1_000);
    // Wait for the accepted ack so the run is indexed under this conn.
    second.read_token("same");

    second.resume(&token, 0);
    let frame = second.read_frame();
    assert_eq!(
        frame.get("code").and_then(Json::as_str),
        Some("resume-conflict"),
        "{}",
        frame.render()
    );
    // The refused resume left the second client's own run addressable.
    second.send(&Json::obj([
        ("op", Json::Str("cancel".to_string())),
        ("id", Json::Str("same".to_string())),
    ]));
    let answer = second.wait_answer("same");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{}",
        answer.render()
    );
}

#[test]
fn proxy_protocol_keys_rate_buckets_by_advertised_source() {
    // Behind a proxy every socket shares the proxy's own peer address; the
    // PROXY header must give each *advertised* client its own bucket.
    // Burst of 1 with a near-zero refill: the second submit from the same
    // advertised address must shed, while a different address sails through
    // on the same listener.
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(2)
            .with_proxy_protocol(true)
            .with_rate_limit(0.1, 1.0),
    );
    let mut alice = server.connect_proxied("PROXY TCP4 10.9.9.1 127.0.0.1 41000 7077\r\n");
    let mut bob = server.connect_proxied("PROXY TCP4 10.9.9.2 127.0.0.1 41001 7077\r\n");

    alice.submit("a-1", TRIVIAL);
    let answer = alice.wait_answer("a-1");
    assert_eq!(
        answer.get("reply").and_then(Json::as_str),
        Some("result"),
        "{}",
        answer.render()
    );
    bob.submit("b-1", TRIVIAL);
    let answer = bob.wait_answer("b-1");
    assert_eq!(
        answer.get("reply").and_then(Json::as_str),
        Some("result"),
        "distinct advertised sources must not share a bucket: {}",
        answer.render()
    );

    alice.submit("a-2", TRIVIAL);
    let answer = alice.wait_answer("a-2");
    assert_eq!(
        answer.get("reason").and_then(Json::as_str),
        Some("rate-limited"),
        "{}",
        answer.render()
    );
}

#[test]
fn connections_without_a_proxy_header_are_closed() {
    use std::io::{Read, Write};
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_proxy_protocol(true),
    );
    // A direct client (no header) sends a frame where the header belongs:
    // the server must close the connection rather than fall back to a
    // shared bucket.
    let mut stream = TcpStream::connect(&server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"{\"op\":\"ping\"}\n")
        .expect("write frame");
    let mut buf = Vec::new();
    let n = stream.read_to_end(&mut buf).expect("read until close");
    assert_eq!(n, 0, "unattributed connections must be closed silently");

    // The incident is visible in the counters, and properly-proxied
    // clients are unaffected.
    let mut conn = server.connect_proxied("PROXY TCP4 10.9.9.3 127.0.0.1 41002 7077\r\n");
    let stats = conn.server_stats();
    assert!(
        counter(&stats, "unattributed_connections") >= 1,
        "{}",
        stats.render()
    );
    conn.submit("after", TRIVIAL);
    let answer = conn.wait_answer("after");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("invariant")
    );
}

#[test]
fn resuming_an_unknown_token_is_an_honest_error() {
    let server = TestServer::spawn(ServerConfig::default().with_workers(1));
    let mut conn = server.connect();
    conn.resume("run-feed-beef", 0);
    let frame = conn.read_frame();
    assert_eq!(
        frame.get("reply").and_then(Json::as_str),
        Some("error"),
        "{}",
        frame.render()
    );
    assert_eq!(
        frame.get("code").and_then(Json::as_str),
        Some("unknown-token"),
        "{}",
        frame.render()
    );
    // The connection is still synchronized afterwards.
    conn.submit("after", TRIVIAL);
    let answer = conn.wait_answer("after");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("invariant")
    );
}
