//! End-to-end server behavior: answers must match direct engine runs,
//! overload must shed with backoff hints, quotas must keep one client from
//! starving the rest, cancellation must work at the protocol level, an
//! injected worker panic must cost exactly one run (never the process, the
//! connection, or the warm caches), and a graceful drain must checkpoint
//! warm-start state that a fresh engine can boot from.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

use hanoi::{Engine, EngineConfig, RunOptions};
use hanoi_abstraction::Problem;
use hanoi_lang::json::{self, Json};
use hanoi_server::{Server, ServerConfig, ServerHandle};

const TRIVIAL: &str = r#"
    type nat = O | S of nat
    interface I = sig
      type t
      val make : t
    end
    module M : I = struct
      type t = nat
      let make : t = O
    end
    spec (s : t) = s == s
"#;

const LIST_SET: &str = r#"
    type nat = O | S of nat
    type list = Nil | Cons of nat * list

    interface SET = sig
      type t
      val empty : t
      val insert : t -> nat -> t
      val delete : t -> nat -> t
      val lookup : t -> nat -> bool
    end

    module ListSet : SET = struct
      type t = list
      let empty : t = Nil
      let rec lookup (l : t) (x : nat) : bool =
        match l with
        | Nil -> False
        | Cons (hd, tl) -> hd == x || lookup tl x
        end
      let insert (l : t) (x : nat) : t =
        if lookup l x then l else Cons (x, l)
      let rec delete (l : t) (x : nat) : t =
        match l with
        | Nil -> Nil
        | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
        end
    end

    spec (s : t) (i : nat) =
      not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
"#;

struct TestServer {
    addr: String,
    handle: ServerHandle,
    join: Option<JoinHandle<std::io::Result<usize>>>,
}

impl TestServer {
    fn spawn(config: ServerConfig) -> TestServer {
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        let handle = server.handle();
        let addr = handle.addr().to_string();
        let join = Some(std::thread::spawn(move || server.serve()));
        TestServer { addr, handle, join }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Conn {
            reader: BufReader::new(stream),
            parked: std::collections::HashMap::new(),
        }
    }

    /// Drains and returns the number of warm-start snapshots written.
    fn drain(mut self) -> usize {
        self.handle.drain();
        let snapshots = self
            .handle
            .wait_drained(Duration::from_secs(60))
            .expect("drain timed out");
        if let Some(join) = self.join.take() {
            join.join().expect("serve thread").expect("serve result");
        }
        snapshots
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.drain();
        self.handle.wait_drained(Duration::from_secs(60));
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    parked: std::collections::HashMap<String, Json>,
}

impl Conn {
    fn send(&mut self, frame: &Json) {
        json::write_frame(self.reader.get_mut(), frame).expect("write frame");
    }

    fn submit(&mut self, id: &str, source: &str) {
        self.send(&Json::obj([
            ("op", Json::Str("submit".to_string())),
            ("id", Json::Str(id.to_string())),
            ("source", Json::Str(source.to_string())),
        ]));
    }

    fn submit_chaos(&mut self, id: &str, kind: &str, ms: u64) {
        let chaos = if kind == "sleep" {
            Json::obj([
                ("kind", Json::Str("sleep".to_string())),
                ("ms", Json::Num(ms as f64)),
            ])
        } else {
            Json::obj([("kind", Json::Str(kind.to_string()))])
        };
        self.send(&Json::obj([
            ("op", Json::Str("submit".to_string())),
            ("id", Json::Str(id.to_string())),
            ("source", Json::Str(TRIVIAL.to_string())),
            ("chaos", chaos),
        ]));
    }

    fn read_frame(&mut self) -> Json {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).expect("read");
            assert!(n > 0, "server closed the connection");
            if line.trim().is_empty() {
                continue;
            }
            return json::parse(line.trim()).expect("reply frames are valid JSON");
        }
    }

    /// The result/error/shed answer for `id`; answers for other pipelined
    /// ids are parked (runs complete in worker order, not submit order).
    fn wait_answer(&mut self, id: &str) -> Json {
        if let Some(frame) = self.parked.remove(id) {
            return frame;
        }
        loop {
            let frame = self.read_frame();
            let reply = frame.get("reply").and_then(Json::as_str).unwrap_or("");
            if !matches!(reply, "result" | "error" | "shed") {
                continue;
            }
            let frame_id = frame.get("id").and_then(Json::as_str).unwrap_or("");
            if frame_id == id {
                return frame;
            }
            if !frame_id.is_empty() {
                self.parked.insert(frame_id.to_string(), frame);
            }
        }
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hanoi-server-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn answers_match_direct_engine_runs() {
    let server = TestServer::spawn(ServerConfig::default().with_workers(2));
    let engine = Engine::with_defaults();
    for (name, source) in [("trivial", TRIVIAL), ("list-set", LIST_SET)] {
        let direct = engine.run(&Problem::from_source(source).unwrap(), &RunOptions::quick());
        let expected = direct
            .outcome
            .invariant()
            .unwrap_or_else(|| panic!("{name}: direct run failed: {}", direct.outcome))
            .to_string();
        let mut conn = server.connect();
        conn.submit(name, source);
        let answer = conn.wait_answer(name);
        assert_eq!(
            answer.get("status").and_then(Json::as_str),
            Some("invariant"),
            "{name}: {}",
            answer.render()
        );
        assert_eq!(
            answer.get("invariant").and_then(Json::as_str),
            Some(expected.as_str()),
            "{name}: the served answer differs from a direct engine run"
        );
        // Accounting rode along: stats and timing are on the frame.
        assert!(answer.get("stats").is_some());
        assert!(answer.get("run_ms").and_then(Json::as_usize).is_some());
    }
}

#[test]
fn event_streams_arrive_in_protocol_order() {
    let server = TestServer::spawn(ServerConfig::default().with_workers(1));
    let mut conn = server.connect();
    conn.send(&Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str("observed".to_string())),
        ("source", Json::Str(TRIVIAL.to_string())),
        ("events", Json::Bool(true)),
    ]));
    let mut kinds = Vec::new();
    let result = loop {
        let frame = conn.read_frame();
        match frame.get("reply").and_then(Json::as_str) {
            Some("event") => {
                kinds.push(
                    frame
                        .get("kind")
                        .and_then(Json::as_str)
                        .expect("events carry a kind")
                        .to_string(),
                );
            }
            Some("result") => break frame,
            Some("accepted") => {}
            other => panic!("unexpected reply {other:?}"),
        }
    };
    assert_eq!(
        result.get("status").and_then(Json::as_str),
        Some("invariant")
    );
    assert_eq!(kinds.first().map(String::as_str), Some("run-started"));
    assert_eq!(kinds.last().map(String::as_str), Some("run-finished"));
}

#[test]
fn overload_at_twice_the_budget_sheds_with_retry_hints() {
    // 1 worker, queue depth 2, generous quota: budget = 3 concurrent jobs.
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_max_queue_depth(2)
            .with_per_client_quota(64)
            .with_chaos(true),
    );
    let mut conn = server.connect();
    let burst = 6; // 2x the admission budget
    for i in 0..burst {
        // Sleep-chaos keeps the worker busy so the queue genuinely fills.
        conn.submit_chaos(&format!("burst-{i}"), "sleep", 200);
    }
    let mut accepted = 0;
    let mut shed = 0;
    for i in 0..burst {
        let answer = conn.wait_answer(&format!("burst-{i}"));
        match answer.get("reply").and_then(Json::as_str) {
            Some("shed") => {
                shed += 1;
                assert_eq!(
                    answer.get("reason").and_then(Json::as_str),
                    Some("queue-full"),
                    "{}",
                    answer.render()
                );
                let hint = answer
                    .get("retry_after_ms")
                    .and_then(Json::as_usize)
                    .unwrap_or(0);
                assert!(hint > 0, "shed replies must carry a backoff hint");
            }
            Some("result") => accepted += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(accepted >= 1, "the in-budget prefix must be served");
    assert!(
        shed >= burst - 3,
        "an overload burst of {burst} against a budget of 3 shed only {shed}"
    );
}

#[test]
fn per_client_quota_protects_other_clients() {
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_max_queue_depth(16)
            .with_per_client_quota(2)
            .with_chaos(true),
    );
    let mut greedy = server.connect();
    for i in 0..4 {
        greedy.submit_chaos(&format!("greedy-{i}"), "sleep", 300);
    }
    let mut shed_reasons = Vec::new();
    for i in 0..4 {
        let answer = greedy.wait_answer(&format!("greedy-{i}"));
        if answer.get("reply").and_then(Json::as_str) == Some("shed") {
            shed_reasons.push(
                answer
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            );
        }
    }
    assert!(
        shed_reasons.iter().any(|r| r == "client-quota"),
        "a client 2x over quota was never shed: {shed_reasons:?}"
    );
    // A different client was never locked out (the queue had room).
    let mut modest = server.connect();
    modest.submit("modest", TRIVIAL);
    let answer = modest.wait_answer("modest");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("invariant"),
        "{}",
        answer.render()
    );
}

#[test]
fn queued_runs_can_be_cancelled_over_the_wire() {
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_max_queue_depth(8)
            .with_chaos(true),
    );
    let mut conn = server.connect();
    // Occupy the single worker, then queue a victim behind it.
    conn.submit_chaos("blocker", "sleep", 500);
    conn.submit("victim", TRIVIAL);
    conn.send(&Json::obj([
        ("op", Json::Str("cancel".to_string())),
        ("id", Json::Str("victim".to_string())),
    ]));
    let ack = loop {
        let frame = conn.read_frame();
        if frame.get("reply").and_then(Json::as_str) == Some("cancelled") {
            break frame;
        }
    };
    assert_eq!(ack.get("found").and_then(Json::as_bool), Some(true));
    let victim = conn.wait_answer("victim");
    assert_eq!(
        victim.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{}",
        victim.render()
    );
    // Cancelling an unknown id is answered honestly.
    conn.send(&Json::obj([
        ("op", Json::Str("cancel".to_string())),
        ("id", Json::Str("never-was".to_string())),
    ]));
    let ack = loop {
        let frame = conn.read_frame();
        if frame.get("reply").and_then(Json::as_str) == Some("cancelled") {
            break frame;
        }
    };
    assert_eq!(ack.get("found").and_then(Json::as_bool), Some(false));
}

#[test]
fn watchdog_ceiling_clamps_client_timeouts() {
    // The client asks for a 10-minute budget; the server's watchdog ceiling
    // is far smaller and must win.
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_watchdog(Duration::from_millis(1)),
    );
    let mut conn = server.connect();
    conn.send(&Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str("hog".to_string())),
        ("source", Json::Str(LIST_SET.to_string())),
        ("options", Json::obj([("timeout_ms", Json::Num(600_000.0))])),
    ]));
    let answer = conn.wait_answer("hog");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("timeout"),
        "{}",
        answer.render()
    );
}

#[test]
fn a_panicking_run_is_isolated_and_warm_caches_survive() {
    let server = TestServer::spawn(ServerConfig::default().with_workers(2).with_chaos(true));
    let mut conn = server.connect();
    // Warm the problem's caches with a clean run.
    conn.submit("warm", TRIVIAL);
    let warm = conn.wait_answer("warm");
    assert_eq!(warm.get("status").and_then(Json::as_str), Some("invariant"));

    // A worker panic becomes a structured error on the SAME connection.
    conn.submit_chaos("boom", "panic", 0);
    let boom = conn.wait_answer("boom");
    assert_eq!(
        boom.get("reply").and_then(Json::as_str),
        Some("error"),
        "{}",
        boom.render()
    );
    assert_eq!(boom.get("code").and_then(Json::as_str), Some("panic"));

    // The process, the connection, and the warm caches all survived: the
    // next run must not rebuild its value pools.
    conn.submit("after", TRIVIAL);
    let after = conn.wait_answer("after");
    assert_eq!(
        after.get("status").and_then(Json::as_str),
        Some("invariant")
    );
    let pool_builds = after
        .get("stats")
        .and_then(|s| s.get("pool_builds"))
        .and_then(Json::as_usize);
    assert_eq!(
        pool_builds,
        Some(0),
        "warm caches were lost across the panic: {}",
        after.render()
    );
}

#[test]
fn drain_checkpoints_warm_state_a_fresh_engine_boots_from() {
    let dir = scratch_dir("drain");
    let server = TestServer::spawn(
        ServerConfig::default()
            .with_workers(1)
            .with_engine(EngineConfig::default().with_warm_start_dir(&dir)),
    );
    let mut conn = server.connect();
    conn.submit("seed", TRIVIAL);
    let seed = conn.wait_answer("seed");
    assert_eq!(seed.get("status").and_then(Json::as_str), Some("invariant"));
    let snapshots = server.drain();
    assert!(snapshots >= 1, "drain wrote no warm-start snapshots");

    // "Next process": a brand-new engine pointed at the drained store must
    // come up warm.
    let engine = Engine::new(EngineConfig::default().with_warm_start_dir(&dir)).unwrap();
    let restarted = engine.run(
        &Problem::from_source(TRIVIAL).unwrap(),
        &RunOptions::quick(),
    );
    assert!(restarted.is_success());
    assert!(
        restarted.stats.warm_start_loads > 0,
        "restart found nothing to load: {:?}",
        restarted.stats
    );
    let _ = std::fs::remove_dir_all(&dir);
}
