//! Protocol robustness: every malformed, truncated, oversized, mis-encoded
//! or absurdly nested input a client can send must come back as a
//! *structured error frame* — never a panic, never a closed stream, never a
//! desynchronized one.  After any rejected frame the same connection must
//! keep working (the error frames are answers, not punishments).
//!
//! These are the table-driven counterparts of the live chaos scenarios in
//! `src/bin/hanoi_stress.rs`, pinned as deterministic tests.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::thread::JoinHandle;
use std::time::Duration;

use hanoi_lang::json::{self, Json};
use hanoi_server::{Server, ServerConfig, ServerHandle};

const TRIVIAL: &str = r#"
    type nat = O | S of nat
    interface I = sig
      type t
      val make : t
    end
    module M : I = struct
      type t = nat
      let make : t = O
    end
    spec (s : t) = s == s
"#;

/// Spawns an ephemeral server; the returned guard drains it on drop so a
/// failing assertion cannot leak the serve thread past the test.
struct TestServer {
    addr: String,
    handle: ServerHandle,
    join: Option<JoinHandle<std::io::Result<usize>>>,
}

impl TestServer {
    fn spawn(config: ServerConfig) -> TestServer {
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        let handle = server.handle();
        let addr = handle.addr().to_string();
        let join = Some(std::thread::spawn(move || server.serve()));
        TestServer { addr, handle, join }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Conn {
            reader: BufReader::new(stream),
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.drain();
        self.handle.wait_drained(Duration::from_secs(30));
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn send_raw(&mut self, bytes: &[u8]) {
        self.reader.get_mut().write_all(bytes).expect("write");
        self.reader.get_mut().flush().expect("flush");
    }

    fn send(&mut self, frame: &Json) {
        json::write_frame(self.reader.get_mut(), frame).expect("write frame");
    }

    fn read_frame(&mut self) -> Json {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).expect("read");
            assert!(n > 0, "server closed the connection");
            if line.trim().is_empty() {
                continue;
            }
            return json::parse(line.trim()).expect("reply frames are valid JSON");
        }
    }

    /// Reads until the result/error answer for `id`.
    fn wait_answer(&mut self, id: &str) -> Json {
        loop {
            let frame = self.read_frame();
            let reply = frame.get("reply").and_then(Json::as_str).unwrap_or("");
            if matches!(reply, "result" | "error" | "shed")
                && frame.get("id").and_then(Json::as_str) == Some(id)
            {
                return frame;
            }
        }
    }

    fn ping_pong(&mut self) {
        self.send(&Json::obj([("op", Json::Str("ping".to_string()))]));
        let pong = self.read_frame();
        assert_eq!(
            pong.get("reply").and_then(Json::as_str),
            Some("pong"),
            "stream desynchronized: {}",
            pong.render()
        );
    }
}

fn small_config() -> ServerConfig {
    ServerConfig::default()
        .with_workers(1)
        .with_max_frame_bytes(8 * 1024)
}

#[test]
fn malformed_inputs_become_structured_errors_and_the_stream_stays_synced() {
    let server = TestServer::spawn(small_config());
    // (raw input, expected error code); each runs on a FRESH connection and
    // must be answered by exactly one error frame followed by a working ping.
    let table: &[(&[u8], &str)] = &[
        // Truncated / non-JSON frames.
        (b"this is not json\n", "parse"),
        (b"{\"op\":\"submit\",\"id\":\"x\",\"sour\n", "parse"),
        (b"{\"op\": \n", "parse"),
        (b"\"just a string\"\n", "bad-request"),
        (b"[1,2,3]\n", "bad-request"),
        (b"42\n", "bad-request"),
        // Structurally valid, semantically broken requests.
        (b"{}\n", "bad-request"),
        (b"{\"op\":\"frobnicate\"}\n", "bad-request"),
        (b"{\"op\":\"submit\"}\n", "bad-request"),
        (b"{\"op\":\"submit\",\"id\":\"x\"}\n", "bad-request"),
        (
            b"{\"op\":\"submit\",\"id\":\"\",\"source\":\"s\"}\n",
            "bad-request",
        ),
        (b"{\"op\":\"cancel\"}\n", "bad-request"),
        (
            b"{\"op\":\"submit\",\"id\":\"x\",\"source\":\"spec\",\"options\":7}\n",
            "bad-request",
        ),
        // Malformed resume requests.
        (b"{\"op\":\"resume\"}\n", "bad-request"),
        (b"{\"op\":\"resume\",\"token\":\"\"}\n", "bad-request"),
        (
            b"{\"op\":\"resume\",\"token\":\"t\",\"last_seq\":-4}\n",
            "bad-request",
        ),
        (
            b"{\"op\":\"resume\",\"token\":\"t\",\"last_seq\":\"x\"}\n",
            "bad-request",
        ),
        // Bytes that are not UTF-8 at all.
        (b"\xff\xfe\xfd garbage\n", "encoding"),
    ];
    for (raw, want) in table {
        let mut conn = server.connect();
        conn.send_raw(raw);
        let frame = conn.read_frame();
        assert_eq!(
            frame.get("reply").and_then(Json::as_str),
            Some("error"),
            "input {:?} got {}",
            String::from_utf8_lossy(raw),
            frame.render()
        );
        assert_eq!(
            frame.get("code").and_then(Json::as_str),
            Some(*want),
            "input {:?} got {}",
            String::from_utf8_lossy(raw),
            frame.render()
        );
        assert!(
            frame.get("message").and_then(Json::as_str).is_some(),
            "errors carry a human-readable message"
        );
        conn.ping_pong();
    }
}

#[test]
fn a_connection_survives_a_burst_of_garbage_and_still_serves_runs() {
    let server = TestServer::spawn(small_config());
    let mut conn = server.connect();
    // Many bad frames on ONE connection: one error each, in order.
    for _ in 0..20 {
        conn.send_raw(b"!!!not json!!!\n");
    }
    for _ in 0..20 {
        let frame = conn.read_frame();
        assert_eq!(frame.get("code").and_then(Json::as_str), Some("parse"));
    }
    // The very same connection still runs real work.
    conn.send(&Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str("after-garbage".to_string())),
        ("source", Json::Str(TRIVIAL.to_string())),
    ]));
    let answer = conn.wait_answer("after-garbage");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("invariant"),
        "{}",
        answer.render()
    );
}

#[test]
fn oversized_lines_are_rejected_with_the_limit_and_skipped() {
    let server = TestServer::spawn(small_config());
    let mut conn = server.connect();
    let mut line = vec![b'x'; 9 * 1024]; // over the 8 KiB config limit
    line.push(b'\n');
    conn.send_raw(&line);
    let frame = conn.read_frame();
    assert_eq!(frame.get("code").and_then(Json::as_str), Some("oversized"));
    // The offending line is consumed, not replayed: the stream works.
    conn.ping_pong();
}

#[test]
fn overdeep_json_is_rejected_as_a_parse_error_not_a_stack_overflow() {
    let server = TestServer::spawn(small_config());
    let mut conn = server.connect();
    let mut deep = Vec::new();
    deep.extend(std::iter::repeat_n(b'[', 2_000));
    deep.extend(std::iter::repeat_n(b']', 2_000));
    deep.push(b'\n');
    conn.send_raw(&deep);
    let frame = conn.read_frame();
    assert_eq!(frame.get("code").and_then(Json::as_str), Some("parse"));
    conn.ping_pong();
}

#[test]
fn unelaboratable_sources_are_rejected_per_run_not_per_connection() {
    let server = TestServer::spawn(small_config());
    let mut conn = server.connect();
    conn.send(&Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str("bad".to_string())),
        (
            "source",
            Json::Str("spec (s : t) = undefined_symbol".to_string()),
        ),
    ]));
    let answer = conn.wait_answer("bad");
    assert_eq!(
        answer.get("code").and_then(Json::as_str),
        Some("bad-problem"),
        "{}",
        answer.render()
    );
    // Correlation: the error carries the submit's id, and the connection
    // still serves good problems.
    assert_eq!(answer.get("id").and_then(Json::as_str), Some("bad"));
    conn.send(&Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str("good".to_string())),
        ("source", Json::Str(TRIVIAL.to_string())),
    ]));
    let answer = conn.wait_answer("good");
    assert_eq!(
        answer.get("status").and_then(Json::as_str),
        Some("invariant")
    );
}

#[test]
fn chaos_directives_are_refused_unless_enabled() {
    let server = TestServer::spawn(small_config()); // chaos off by default
    let mut conn = server.connect();
    conn.send(&Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str("boom".to_string())),
        ("source", Json::Str(TRIVIAL.to_string())),
        (
            "chaos",
            Json::obj([("kind", Json::Str("panic".to_string()))]),
        ),
    ]));
    let answer = conn.wait_answer("boom");
    assert_eq!(
        answer.get("code").and_then(Json::as_str),
        Some("chaos-disabled"),
        "{}",
        answer.render()
    );
    conn.ping_pong();
}

#[test]
fn mid_frame_disconnects_leave_the_server_available() {
    let server = TestServer::spawn(small_config());
    for _ in 0..5 {
        let mut conn = server.connect();
        conn.send_raw(br#"{"op":"submit","id":"trunc","sourc"#);
        drop(conn); // disconnect mid-frame
    }
    let mut probe = server.connect();
    probe.ping_pong();
}

#[test]
fn stats_and_drain_report_over_the_wire() {
    let server = TestServer::spawn(small_config());
    let mut conn = server.connect();
    conn.send(&Json::obj([("op", Json::Str("stats".to_string()))]));
    let stats = conn.read_frame();
    assert_eq!(stats.get("reply").and_then(Json::as_str), Some("stats"));
    assert!(stats.get("server").is_some(), "{}", stats.render());
    assert!(
        stats
            .get("server")
            .unwrap()
            .get("frames_received")
            .is_some(),
        "{}",
        stats.render()
    );

    conn.send(&Json::obj([("op", Json::Str("drain".to_string()))]));
    let ack = conn.read_frame();
    assert_eq!(ack.get("reply").and_then(Json::as_str), Some("draining"));
    // After the drain ack, new submits shed with reason `draining`.
    conn.send(&Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str("late".to_string())),
        ("source", Json::Str(TRIVIAL.to_string())),
    ]));
    let shed = conn.wait_answer("late");
    assert_eq!(shed.get("reply").and_then(Json::as_str), Some("shed"));
    assert_eq!(
        shed.get("reason").and_then(Json::as_str),
        Some("draining"),
        "{}",
        shed.render()
    );
    assert!(
        shed.get("retry_after_ms")
            .and_then(Json::as_usize)
            .unwrap_or(0)
            > 0
    );
}

#[test]
fn read_timeouts_do_not_poison_idle_connections() {
    // An idle (but not expired) connection must stay usable across the
    // server's internal 50 ms read-polling ticks.
    let server = TestServer::spawn(small_config());
    let mut conn = server.connect();
    conn.ping_pong();
    std::thread::sleep(Duration::from_millis(400));
    conn.ping_pong();
}

/// Submits a streamed sleep-chaos run, returns its token, and drops the
/// connection — leaving a detached run behind for resume scenarios.
fn detach_a_streamed_run(server: &TestServer, id: &str, sleep_ms: u64) -> String {
    let mut conn = server.connect();
    conn.send(&Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str(id.to_string())),
        ("source", Json::Str(TRIVIAL.to_string())),
        ("events", Json::Bool(true)),
        (
            "chaos",
            Json::obj([
                ("kind", Json::Str("sleep".to_string())),
                ("ms", Json::Num(sleep_ms as f64)),
            ]),
        ),
    ]));
    loop {
        let frame = conn.read_frame();
        if frame.get("reply").and_then(Json::as_str) == Some("accepted") {
            return frame
                .get("token")
                .and_then(Json::as_str)
                .expect("accepted frames carry a token")
                .to_string();
        }
    }
}

fn resume_frame(token: &str, last_seq: u64) -> Json {
    Json::obj([
        ("op", Json::Str("resume".to_string())),
        ("token", Json::Str(token.to_string())),
        ("last_seq", Json::Num(last_seq as f64)),
    ])
}

/// Reads a full contiguous replayed stream (resumed ack, then seq 1..=n
/// frames ending in a terminal result) and returns the terminal frame.
fn read_replayed_stream(conn: &mut Conn) -> Json {
    let mut next_seq = 1;
    loop {
        let frame = conn.read_frame();
        match frame.get("reply").and_then(Json::as_str) {
            Some("resumed") => {}
            Some("gap") => panic!("unexpected gap: {}", frame.render()),
            Some("event") | Some("result") | Some("error") => {
                assert_eq!(
                    frame.get("seq").and_then(Json::as_usize),
                    Some(next_seq),
                    "replayed stream is not contiguous: {}",
                    frame.render()
                );
                next_seq += 1;
                if frame.get("reply").and_then(Json::as_str) != Some("event") {
                    return frame;
                }
            }
            other => panic!("unexpected reply {other:?}: {}", frame.render()),
        }
    }
}

#[test]
fn a_disconnect_mid_resume_replay_leaves_the_run_resumable() {
    // Client A starts a streamed run and vanishes; client B resumes but rips
    // its socket out again while the server is replaying; client C must
    // still get the complete journaled stream, contiguous from seq 1.
    let server = TestServer::spawn(small_config().with_chaos(true));
    let token = detach_a_streamed_run(&server, "torn", 100);
    // Let the run finish detached so the replay has the whole stream.
    std::thread::sleep(Duration::from_millis(800));

    let mut saboteur = server.connect();
    saboteur.send(&resume_frame(&token, 0));
    drop(saboteur); // disconnect while the replay may be in flight

    let mut patient = server.connect();
    patient.send(&resume_frame(&token, 0));
    let result = read_replayed_stream(&mut patient);
    assert_eq!(
        result.get("status").and_then(Json::as_str),
        Some("invariant"),
        "{}",
        result.render()
    );
    // And the connection that got the replay is still synchronized.
    patient.ping_pong();
}

#[test]
fn slow_loris_resume_frames_are_cut_off_and_the_run_stays_resumable() {
    // A half-written `resume` frame dripped slower than the frame timeout
    // must get the writer disconnected — without consuming the run, which a
    // well-behaved client can still claim afterwards.
    let config = small_config()
        .with_chaos(true)
        .with_frame_timeout(Duration::from_millis(300));
    let server = TestServer::spawn(config);
    let token = detach_a_streamed_run(&server, "dripped", 100);
    std::thread::sleep(Duration::from_millis(800));

    let mut loris = server.connect();
    loris
        .reader
        .get_mut()
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut partial: &[u8] = b"{\"op\":\"resume\",\"token\":\"";
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let mut cut = false;
    while std::time::Instant::now() < deadline {
        let byte = match partial {
            [first, rest @ ..] => {
                partial = rest;
                *first
            }
            [] => b'x', // keep the frame unfinished forever
        };
        if loris.reader.get_mut().write_all(&[byte]).is_err() {
            cut = true;
            break;
        }
        let mut line = String::new();
        match loris.reader.read_line(&mut line) {
            Ok(0) => {
                cut = true;
                break;
            }
            Ok(_) => panic!("server answered an unfinished resume: {line}"),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                cut = true;
                break;
            }
            Err(e) => panic!("unexpected read error: {e}"),
        }
        std::thread::sleep(Duration::from_millis(150));
    }
    assert!(cut, "slow-loris resume writer was never disconnected");

    let mut patient = server.connect();
    patient.send(&resume_frame(&token, 0));
    let result = read_replayed_stream(&mut patient);
    assert_eq!(
        result.get("status").and_then(Json::as_str),
        Some("invariant"),
        "{}",
        result.render()
    );
}

#[test]
fn slow_loris_writers_are_cut_off_by_the_frame_timeout() {
    let config = small_config().with_frame_timeout(Duration::from_millis(300));
    let server = TestServer::spawn(config);
    let mut conn = server.connect();
    conn.reader
        .get_mut()
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    // Drip one byte of a never-finished frame, slower than the timeout
    // allows; the server must cut us off within a few seconds.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let mut cut = false;
    while std::time::Instant::now() < deadline {
        if conn.reader.get_mut().write_all(b"{").is_err() {
            cut = true;
            break;
        }
        let mut line = String::new();
        match conn.reader.read_line(&mut line) {
            Ok(0) => {
                cut = true;
                break;
            }
            Ok(_) => panic!("server answered an unfinished frame: {line}"),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                cut = true;
                break;
            }
            Err(e) => panic!("unexpected read error: {e}"),
        }
        std::thread::sleep(Duration::from_millis(150));
    }
    assert!(cut, "slow-loris writer was never disconnected");
    // And the server still answers everyone else.
    let mut probe = server.connect();
    probe.ping_pong();
}
