//! A fault-tolerant TCP front end for the hanoi inference engine.
//!
//! The engine ([`hanoi::Engine`]) is a long-lived in-process service; this
//! crate puts a network boundary in front of it without giving up the
//! robustness properties a shared service needs:
//!
//! * **Bounded admission & load shedding** ([`admission`]) — a strictly
//!   bounded queue with per-client fairness; overload produces immediate
//!   structured `shed` replies with `retry_after_ms` backoff hints, never
//!   unbounded latency.
//! * **Panic isolation** ([`server`]) — every run executes behind
//!   `catch_unwind` (and [`hanoi::Session::run_caught`], which additionally
//!   evicts a possibly-poisoned cache entry): one defective run answers one
//!   client with a structured `panic` error and cannot take down the
//!   process or other problems' warm caches.
//! * **Deadlines & watchdog** — client timeouts are clamped to a hard
//!   per-run ceiling and a watchdog thread force-cancels anything that
//!   outlives it, so a wedged run cannot occupy a worker forever.
//! * **Graceful drain** — on the `drain` op (or
//!   [`ServerHandle::drain`], typically wired to SIGTERM): stop admitting,
//!   finish or cancel in-flight runs, checkpoint the engine's warm-start
//!   snapshots to disk, then exit.  A restarted server boots warm.
//! * **Hostile-input tolerance** ([`protocol`]) — newline-delimited JSON
//!   with per-frame byte and nesting limits; malformed, truncated,
//!   non-UTF-8 and oversized input produce structured `error` replies on a
//!   still-synchronized stream.
//!
//! Two binaries accompany the library: `hanoi_serve` (the production
//! entry point, with signal-driven drain) and `hanoi_stress` (a
//! stress/chaos harness that hammers a server with concurrent clients and
//! fault injection, verifying answers against direct engine runs).

#![warn(missing_docs)]

pub mod admission;
pub mod config;
pub mod protocol;
pub mod server;
pub mod stats;

pub use config::ServerConfig;
pub use server::{Server, ServerHandle};
pub use stats::ServerStats;
