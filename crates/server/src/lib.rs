//! A fault-tolerant TCP front end for the hanoi inference engine.
//!
//! The engine ([`hanoi::Engine`]) is a long-lived in-process service; this
//! crate puts a network boundary in front of it without giving up the
//! robustness properties a shared service needs:
//!
//! * **Bounded admission & load shedding** ([`admission`]) — a strictly
//!   bounded queue with per-client fairness; overload produces immediate
//!   structured `shed` replies with jittered `retry_after_ms` backoff
//!   hints, never unbounded latency.
//! * **Time-based rate limiting** ([`ratelimit`]) — per-client-address
//!   token buckets in front of the admission queue bound the *rate* of
//!   submits (the quota only bounds concurrency); sheds carry an honest
//!   retry hint derived from the bucket's actual deficit.
//! * **Durable runs** ([`registry`], [`replay`]) — a run's lifetime is
//!   decoupled from its connection's: every accepted submit gets a run
//!   token, every reply frame is sequence-numbered and journaled in a
//!   bounded replay buffer, a disconnect merely detaches the run, and the
//!   `resume` op re-attaches by token, replaying whatever was missed.
//!   Detached runs nobody reclaims are cancelled after a grace period.
//! * **Panic isolation** ([`server`]) — every run executes behind
//!   `catch_unwind` (and [`hanoi::Session::run_caught`], which additionally
//!   evicts a possibly-poisoned cache entry): one defective run answers one
//!   client with a structured `panic` error and cannot take down the
//!   process or other problems' warm caches.
//! * **Deadlines & watchdog** — client timeouts are clamped to a hard
//!   per-run ceiling and a reaper thread force-cancels anything that
//!   outlives it, so a wedged run cannot occupy a worker forever.
//! * **Hot config reload** ([`config`]) — the operational tunables (queue
//!   depth, quotas, rate limits, watchdog clamps, grace deadlines) live in
//!   an atomically swappable set; SIGHUP or the `reload` op re-reads the
//!   config file and publishes a new set without dropping in-flight runs.
//! * **Graceful drain** — on the `drain` op (or
//!   [`ServerHandle::drain`], typically wired to SIGTERM): stop admitting,
//!   finish or cancel in-flight runs, checkpoint the engine's warm-start
//!   snapshots to disk, then exit.  A restarted server boots warm.
//! * **Hostile-input tolerance** ([`protocol`]) — newline-delimited JSON
//!   with per-frame byte and nesting limits; malformed, truncated,
//!   non-UTF-8 and oversized input produce structured `error` replies on a
//!   still-synchronized stream.
//!
//! Two binaries accompany the library: `hanoi_serve` (the production
//! entry point, with signal-driven drain and SIGHUP reload) and
//! `hanoi_stress` (a stress/chaos harness that hammers a server with
//! concurrent clients, forced disconnects, and fault injection, verifying
//! answers against direct engine runs).

#![warn(missing_docs)]

pub mod admission;
pub mod config;
pub mod protocol;
pub mod ratelimit;
pub mod registry;
pub mod replay;
pub mod server;
pub mod stats;

pub use config::{HotTunables, ServerConfig, Tunables};
pub use server::{Server, ServerHandle};
pub use stats::ServerStats;
