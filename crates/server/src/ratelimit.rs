//! Per-client token-bucket rate limiting *over time*.
//!
//! The admission queue's per-client quota bounds how many runs a client may
//! *hold* concurrently, but a client that submits, waits, and resubmits in a
//! tight loop stays inside its quota while still monopolizing the workers.
//! This module bounds the *rate*: each client address owns a token bucket
//! refilled at `rate_per_sec` up to `burst` tokens; each submit spends one
//! token, and a submit finding an empty bucket is shed with an honest
//! `retry_after_ms` derived from the bucket's actual deficit — the time
//! until one token will have dripped in, not a guess.
//!
//! The rate and burst are *not* stored in the limiter: callers pass the
//! current values on every acquire, so a hot config reload applies to the
//! very next request with no bucket reset (existing debt is preserved —
//! lowering the rate mid-flood does not hand everyone a fresh burst).

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// One client's bucket: how full it was, and when that was measured.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

/// A keyed set of token buckets (keys are client IP addresses, so the limit
/// survives reconnects — a rate limiter keyed by connection would reset
/// every time the offender reconnects).
#[derive(Debug, Default)]
pub struct RateLimiter {
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// An empty limiter.
    pub fn new() -> RateLimiter {
        RateLimiter::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<IpAddr, Bucket>> {
        self.buckets.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Spends one token from `key`'s bucket under the given rate/burst, or
    /// returns the milliseconds until a token will be available.  A
    /// non-positive `rate` disables limiting (always admits).
    pub fn try_acquire(&self, key: IpAddr, rate: f64, burst: f64, now: Instant) -> Result<(), u64> {
        if rate <= 0.0 {
            return Ok(());
        }
        let burst = burst.max(1.0);
        let mut buckets = self.lock();
        let bucket = bucket_at(
            buckets.entry(key).or_insert(Bucket {
                tokens: burst,
                refreshed: now,
            }),
            rate,
            burst,
            now,
        );
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            // The honest hint: exactly how long until the deficit refills.
            let deficit = 1.0 - bucket.tokens;
            Err(((deficit / rate) * 1000.0).ceil() as u64)
        }
    }

    /// Drops buckets that have refilled to `burst` (nothing left to
    /// remember about them); called periodically so one-shot clients do not
    /// accumulate forever.
    pub fn prune(&self, rate: f64, burst: f64, now: Instant) {
        if rate <= 0.0 {
            // With limiting off nothing is charged, so nothing is owed.
            self.lock().clear();
            return;
        }
        let burst = burst.max(1.0);
        self.lock()
            .retain(|_, bucket| bucket_at(bucket, rate, burst, now).tokens < burst);
    }

    /// How many client buckets are currently tracked.
    pub fn tracked(&self) -> usize {
        self.lock().len()
    }
}

/// Refills `bucket` for the time elapsed since it was last measured.
fn bucket_at(bucket: &mut Bucket, rate: f64, burst: f64, now: Instant) -> &mut Bucket {
    let elapsed = now
        .saturating_duration_since(bucket.refreshed)
        .as_secs_f64();
    bucket.tokens = (bucket.tokens + elapsed * rate).min(burst);
    bucket.refreshed = now;
    bucket
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn bursts_then_sheds_with_deficit_derived_hints() {
        let limiter = RateLimiter::new();
        let t0 = Instant::now();
        // Burst of 3 admitted back to back…
        for _ in 0..3 {
            assert_eq!(limiter.try_acquire(ip(1), 2.0, 3.0, t0), Ok(()));
        }
        // …then the bucket is empty: at 2 tokens/sec the next token is
        // 500 ms away, and the hint says exactly that.
        assert_eq!(limiter.try_acquire(ip(1), 2.0, 3.0, t0), Err(500));
        // Half a second later one token has dripped in.
        let t1 = t0 + Duration::from_millis(500);
        assert_eq!(limiter.try_acquire(ip(1), 2.0, 3.0, t1), Ok(()));
        assert_eq!(limiter.try_acquire(ip(1), 2.0, 3.0, t1), Err(500));
    }

    #[test]
    fn buckets_are_per_client_and_refill_caps_at_burst() {
        let limiter = RateLimiter::new();
        let t0 = Instant::now();
        for _ in 0..2 {
            assert_eq!(limiter.try_acquire(ip(1), 1.0, 2.0, t0), Ok(()));
        }
        assert!(limiter.try_acquire(ip(1), 1.0, 2.0, t0).is_err());
        // A different client is unaffected.
        assert_eq!(limiter.try_acquire(ip(2), 1.0, 2.0, t0), Ok(()));
        // A long idle stretch refills to burst, not beyond: only 2 tokens
        // are available no matter how long we waited.
        let t1 = t0 + Duration::from_secs(3600);
        for _ in 0..2 {
            assert_eq!(limiter.try_acquire(ip(1), 1.0, 2.0, t1), Ok(()));
        }
        assert!(limiter.try_acquire(ip(1), 1.0, 2.0, t1).is_err());
    }

    #[test]
    fn reload_applies_to_the_next_acquire_without_resetting_debt() {
        let limiter = RateLimiter::new();
        let t0 = Instant::now();
        for _ in 0..4 {
            let _ = limiter.try_acquire(ip(1), 4.0, 4.0, t0);
        }
        assert!(limiter.try_acquire(ip(1), 4.0, 4.0, t0).is_err());
        // The operator reloads to a faster rate: the same empty bucket now
        // refills faster, but nobody got free tokens out of the swap.
        assert_eq!(limiter.try_acquire(ip(1), 1000.0, 4.0, t0), Err(1));
        let t1 = t0 + Duration::from_millis(2);
        assert_eq!(limiter.try_acquire(ip(1), 1000.0, 4.0, t1), Ok(()));
    }

    #[test]
    fn zero_rate_disables_and_prune_forgets_idle_clients() {
        let limiter = RateLimiter::new();
        let t0 = Instant::now();
        for _ in 0..100 {
            assert_eq!(limiter.try_acquire(ip(1), 0.0, 1.0, t0), Ok(()));
        }
        assert_eq!(limiter.tracked(), 0);

        assert_eq!(limiter.try_acquire(ip(2), 1.0, 2.0, t0), Ok(()));
        assert_eq!(limiter.tracked(), 1);
        // Still owing: pruning keeps the bucket.
        limiter.prune(1.0, 2.0, t0);
        assert_eq!(limiter.tracked(), 1);
        // Fully refilled: nothing left to remember.
        limiter.prune(1.0, 2.0, t0 + Duration::from_secs(10));
        assert_eq!(limiter.tracked(), 0);
    }
}
