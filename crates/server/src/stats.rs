//! Service-level counters, exposed through the `stats` protocol command.

use std::sync::atomic::{AtomicU64, Ordering};

use hanoi_lang::json::Json;

/// Monotonic counters covering every admission, shedding, failure and drain
/// event the server handles.  All counters are relaxed atomics: they are
/// operational telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Client connections accepted.
    pub connections_opened: AtomicU64,
    /// Client connections that ended (any reason).
    pub connections_closed: AtomicU64,
    /// Connections turned away at accept time (connection ceiling).
    pub connections_rejected: AtomicU64,
    /// Connections closed for exceeding the idle or frame timeout
    /// (slow-loris defence).
    pub connections_timed_out: AtomicU64,
    /// Complete frames received (before parsing).
    pub frames_received: AtomicU64,
    /// Frames answered with a structured protocol error (bad JSON, bad
    /// request shape, unknown op, over-deep nesting).
    pub protocol_errors: AtomicU64,
    /// Lines discarded for exceeding the frame byte ceiling.
    pub oversized_frames: AtomicU64,
    /// Complete lines that were not valid UTF-8.
    pub encoding_errors: AtomicU64,
    /// Runs admitted to the queue.
    pub runs_accepted: AtomicU64,
    /// Submits shed because the admission queue was full.
    pub shed_queue_full: AtomicU64,
    /// Submits shed because the client exceeded its in-flight quota.
    pub shed_client_quota: AtomicU64,
    /// Submits shed because the server was draining.
    pub shed_draining: AtomicU64,
    /// Runs that returned a result (any outcome).
    pub runs_completed: AtomicU64,
    /// Runs that ended with an inferred invariant.
    pub runs_invariant: AtomicU64,
    /// Runs that ended cancelled (client cancel, disconnect, watchdog or
    /// drain).
    pub runs_cancelled: AtomicU64,
    /// Runs that ended in a timeout outcome.
    pub runs_timeout: AtomicU64,
    /// Runs that panicked and were isolated (structured `panic` error to the
    /// one client; process and sibling runs unaffected).
    pub runs_panicked: AtomicU64,
    /// Submits rejected because the problem source failed to elaborate.
    pub runs_rejected: AtomicU64,
    /// Runs force-cancelled by the watchdog for outliving their deadline.
    pub watchdog_cancels: AtomicU64,
    /// Run events streamed to clients.
    pub events_sent: AtomicU64,
    /// Frames dropped because the client's write side failed or timed out.
    pub write_errors: AtomicU64,
    /// Cancel commands honoured (a matching in-flight run existed).
    pub cancels_honoured: AtomicU64,
    /// Snapshot files written by the drain checkpoint.
    pub drain_snapshots: AtomicU64,
    /// Connections that detached from a run without ending it (the run kept
    /// executing under its token).
    pub runs_detached: AtomicU64,
    /// Successful `resume` re-attachments.
    pub runs_resumed: AtomicU64,
    /// Journaled frames replayed to resuming clients.
    pub replay_events_sent: AtomicU64,
    /// Resumes whose replay had evicted frames (a `gap` frame was sent).
    pub replay_gaps: AtomicU64,
    /// Detached runs cancelled because nobody resumed within the grace
    /// period.
    pub grace_cancels: AtomicU64,
    /// Submits shed by the per-client token-bucket rate limiter.
    pub rate_limited_sheds: AtomicU64,
    /// Successful hot config reloads (SIGHUP or the `reload` op).
    pub config_reloads: AtomicU64,
    /// Connections closed because no client address could be attributed
    /// (failed `peer_addr`, or a missing/malformed PROXY protocol header
    /// when `proxy_protocol` is enabled).
    pub unattributed_connections: AtomicU64,
}

/// Increments a counter.
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

impl ServerStats {
    /// Reads one counter.
    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Serializes every counter (used by the `stats` reply).
    pub fn to_json(&self) -> Json {
        let n = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        Json::obj([
            ("connections_opened", n(&self.connections_opened)),
            ("connections_closed", n(&self.connections_closed)),
            ("connections_rejected", n(&self.connections_rejected)),
            ("connections_timed_out", n(&self.connections_timed_out)),
            ("frames_received", n(&self.frames_received)),
            ("protocol_errors", n(&self.protocol_errors)),
            ("oversized_frames", n(&self.oversized_frames)),
            ("encoding_errors", n(&self.encoding_errors)),
            ("runs_accepted", n(&self.runs_accepted)),
            ("shed_queue_full", n(&self.shed_queue_full)),
            ("shed_client_quota", n(&self.shed_client_quota)),
            ("shed_draining", n(&self.shed_draining)),
            ("runs_completed", n(&self.runs_completed)),
            ("runs_invariant", n(&self.runs_invariant)),
            ("runs_cancelled", n(&self.runs_cancelled)),
            ("runs_timeout", n(&self.runs_timeout)),
            ("runs_panicked", n(&self.runs_panicked)),
            ("runs_rejected", n(&self.runs_rejected)),
            ("watchdog_cancels", n(&self.watchdog_cancels)),
            ("events_sent", n(&self.events_sent)),
            ("write_errors", n(&self.write_errors)),
            ("cancels_honoured", n(&self.cancels_honoured)),
            ("drain_snapshots", n(&self.drain_snapshots)),
            ("runs_detached", n(&self.runs_detached)),
            ("runs_resumed", n(&self.runs_resumed)),
            ("replay_events_sent", n(&self.replay_events_sent)),
            ("replay_gaps", n(&self.replay_gaps)),
            ("grace_cancels", n(&self.grace_cancels)),
            ("rate_limited_sheds", n(&self.rate_limited_sheds)),
            ("config_reloads", n(&self.config_reloads)),
            (
                "unattributed_connections",
                n(&self.unattributed_connections),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_serialize() {
        let stats = ServerStats::default();
        bump(&stats.runs_accepted);
        bump(&stats.runs_accepted);
        bump(&stats.shed_queue_full);
        bump(&stats.runs_resumed);
        bump(&stats.replay_events_sent);
        bump(&stats.replay_events_sent);
        bump(&stats.replay_gaps);
        bump(&stats.rate_limited_sheds);
        bump(&stats.config_reloads);
        let json = stats.to_json();
        assert_eq!(json.get("runs_accepted").unwrap().as_usize(), Some(2));
        assert_eq!(json.get("shed_queue_full").unwrap().as_usize(), Some(1));
        assert_eq!(json.get("drain_snapshots").unwrap().as_usize(), Some(0));
        assert_eq!(json.get("runs_resumed").unwrap().as_usize(), Some(1));
        assert_eq!(json.get("replay_events_sent").unwrap().as_usize(), Some(2));
        assert_eq!(json.get("replay_gaps").unwrap().as_usize(), Some(1));
        assert_eq!(json.get("rate_limited_sheds").unwrap().as_usize(), Some(1));
        assert_eq!(json.get("config_reloads").unwrap().as_usize(), Some(1));
        assert_eq!(json.get("runs_detached").unwrap().as_usize(), Some(0));
        assert_eq!(json.get("grace_cancels").unwrap().as_usize(), Some(0));
        assert_eq!(stats.get(&stats.runs_accepted), 2);
    }
}
