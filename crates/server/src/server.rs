//! The server proper: accept loop, connection threads, worker pool,
//! reaper, and the graceful-drain coordinator.
//!
//! # Thread shape
//!
//! [`Server::serve`] blocks inside one `std::thread::scope`:
//!
//! * the calling thread runs the (non-blocking, polled) **accept loop**;
//! * one scoped thread per accepted socket runs the **connection loop** —
//!   frame decoding, request dispatch, timeout enforcement;
//! * [`crate::ServerConfig::workers`] scoped threads run the **worker
//!   loop** — they pull admitted jobs and execute inference runs against
//!   the one shared [`Engine`];
//! * one scoped **reaper** thread force-cancels runs that outlive their
//!   deadline (the watchdog), cancels detached runs whose disconnect grace
//!   expired, expires finished runs past their retention window, and prunes
//!   idle rate-limiter buckets.
//!
//! When a drain is requested (the `drain` protocol op, or
//! [`ServerHandle::drain`] — typically wired to SIGTERM by the binary), the
//! accept loop exits and runs the drain sequence: stop admitting, wait for
//! in-flight work (cancelling whatever outlives the patience window),
//! checkpoint the engine's warm state to disk, then release every thread
//! and return.  The scope guarantees nothing leaks.
//!
//! # Run durability
//!
//! A run's lifetime is decoupled from its connection's: every accepted
//! submit is tracked in the [`RunRegistry`] under a server-issued token, and
//! every frame it produces is journaled in a per-run replay buffer before
//! being forwarded to the owning connection.  A client disconnect merely
//! *detaches* the run — it keeps executing, and a `resume` op presenting
//! the token on any later connection replays the missed frames and
//! continues live.  Only when nobody reclaims a detached run within
//! [`crate::config::Tunables::disconnect_grace`] does the reaper cancel it.
//!
//! # Fault isolation
//!
//! Every worker iteration runs behind `catch_unwind`, and the run itself
//! behind [`hanoi::Session::run_caught`] — a panicking run produces a
//! structured `error` frame for its one client (journaled like any other
//! terminal frame, so even a panic outcome survives a disconnect) while the
//! process, the other connections, and every *other* problem's warm caches
//! carry on.

use std::io::{ErrorKind, Read};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use hanoi::{Engine, Outcome, RunEvent, RunOptions, RunResult, RunStats};
use hanoi_abstraction::Problem;
use hanoi_lang::json::{self, FrameReader, FrameResult, Json};

use crate::admission::{Admission, Next};
use crate::config::{HotTunables, ServerConfig, Tunables};
use crate::protocol::{self, ChaosDirective, ProtocolError, Request, ShedReason, SubmitRequest};
use crate::ratelimit::RateLimiter;
use crate::registry::{FrameSink, RegisterError, ResumeError, RunEntry, RunRegistry};
use crate::stats::{bump, ServerStats};

/// How often blocked loops (accept, connection reads, worker polls, the
/// reaper) wake to re-check shutdown flags.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Write-side patience before a stuck client counts as gone.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|p| p.into_inner())
}

/// One admitted inference run, queued for a worker.  The durable state
/// (cancellation, journal, owning connection) lives in the registry entry;
/// the job only carries what the worker needs to execute.
struct Job {
    entry: Arc<RunEntry>,
    source: String,
    options: RunOptions,
    chaos: Option<ChaosDirective>,
    submitted_at: Instant,
}

/// The write half of one client connection, shared between its connection
/// thread and the workers streaming frames back to it.
#[derive(Debug)]
struct ClientHandle {
    id: u64,
    peer: IpAddr,
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
    stats: Arc<ServerStats>,
}

impl ClientHandle {
    /// Sends one frame; on any write failure the client is marked dead so
    /// later sends (and event streams) short-circuit.
    fn send(&self, frame: &Json) -> bool {
        if !self.alive.load(Ordering::Relaxed) {
            return false;
        }
        let mut writer = lock(&self.writer);
        match json::write_frame(&mut *writer, frame) {
            Ok(()) => true,
            Err(_) => {
                self.alive.store(false, Ordering::Relaxed);
                bump(&self.stats.write_errors);
                false
            }
        }
    }
}

/// Workers deliver journaled frames through the registry, which addresses
/// the owning connection as a [`FrameSink`].
impl FrameSink for ClientHandle {
    fn send_frame(&self, frame: &Json) -> bool {
        self.send(frame)
    }
}

/// State shared by every thread of one server.
struct Shared {
    config: ServerConfig,
    engine: Engine,
    stats: Arc<ServerStats>,
    admission: Admission<Job>,
    /// The durable run registry: tokens, journals, owners.
    registry: RunRegistry,
    /// Per-client-address token buckets (time-based rate limiting).
    limiter: RateLimiter,
    /// The hot-reloadable tunables every admission decision reads.
    tunables: Arc<HotTunables>,
    /// Elaborated problems keyed by source text, most recent last.  The
    /// engine keys its warm caches by the elaborated problem's identity, so
    /// re-elaborating the same source would always start cold: this cache is
    /// what makes repeat submissions of one problem share warmth across
    /// connections.
    problems: Mutex<Vec<(String, Arc<Problem>)>>,
    drain_requested: AtomicBool,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
    next_conn_id: AtomicU64,
    /// Snapshot count once the drain completes.
    drained: Mutex<Option<usize>>,
    drained_cv: Condvar,
}

impl Shared {
    fn request_drain(&self) {
        self.drain_requested.store(true, Ordering::Relaxed);
        self.admission.begin_drain();
    }
}

/// A bounded, fault-isolated TCP front end over one shared [`Engine`].
///
/// Bind with [`Server::bind`], grab a [`ServerHandle`] for out-of-band
/// control, then call [`Server::serve`] (blocking until drained):
///
/// ```no_run
/// use hanoi_server::{Server, ServerConfig};
///
/// let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
/// let handle = server.handle();
/// std::thread::spawn(move || server.serve());
/// // … later, e.g. from a signal handler loop:
/// handle.drain();
/// handle.wait_drained(std::time::Duration::from_secs(60));
/// ```
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Out-of-band control of a running [`Server`]: its address, a drain
/// trigger, a config-reload trigger, and a way to wait for the drain to
/// finish.  Clonable and `Send`; the binary wires [`ServerHandle::drain`]
/// to SIGTERM/SIGINT and [`ServerHandle::reload_from_file`] to SIGHUP.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The server's bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: stop admitting, finish (or cancel)
    /// in-flight runs, checkpoint warm state, shut down.  Idempotent,
    /// callable from any thread (it only flips flags — safe from a signal
    /// polling loop).
    pub fn drain(&self) {
        self.shared.request_drain();
    }

    /// Waits up to `timeout` for the drain to complete; returns the number
    /// of warm-start snapshots written, or `None` on timeout.
    pub fn wait_drained(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut drained = lock(&self.shared.drained);
        loop {
            if let Some(snapshots) = *drained {
                return Some(snapshots);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            drained = self
                .shared
                .drained_cv
                .wait_timeout(drained, deadline - now)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Live server counters (same payload as the `stats` protocol reply's
    /// `server` field).
    pub fn stats_json(&self) -> Json {
        self.shared.stats.to_json()
    }

    /// The tunable set currently in force.
    pub fn tunables(&self) -> Arc<Tunables> {
        self.shared.tunables.get()
    }

    /// Re-reads the server's config file and hot-swaps the tunables
    /// (the `reload` op's out-of-band twin — the binary wires it to
    /// SIGHUP).  Returns the tunables now in force.
    pub fn reload_from_file(&self) -> Result<Json, ProtocolError> {
        reload(&self.shared)
    }
}

/// Re-reads the config file, overlays it on the boot-time tunables (the
/// file is declarative: a key removed from the file reverts to its
/// boot-time value on the next reload), validates the whole set, and
/// publishes it atomically.  In-flight runs are untouched: tunables are
/// read at decision points, never held.
fn reload(shared: &Shared) -> Result<Json, ProtocolError> {
    let Some(path) = shared.config.config_path.as_ref() else {
        return Err(ProtocolError::new(
            "reload-unavailable",
            "the server was started without --config; nothing to reload",
        ));
    };
    let fail = |message: String| ProtocolError::new("reload-failed", message);
    let text =
        std::fs::read_to_string(path).map_err(|e| fail(format!("read {}: {e}", path.display())))?;
    let overlay = json::parse_with_limits(&text, shared.config.max_frame_depth)
        .map_err(|e| fail(format!("parse {}: {e}", path.display())))?;
    let next = Tunables::from_config(&shared.config)
        .overlaid(&overlay)
        .map_err(|e| fail(format!("{}: {e}", path.display())))?;
    shared.tunables.swap(next);
    bump(&shared.stats.config_reloads);
    Ok(shared.tunables.get().to_json())
}

impl Server {
    /// Binds a listener and builds the engine; the server is not serving
    /// until [`Server::serve`] is called.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?;
        let engine = Engine::new(config.engine.clone())
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let tunables = Arc::new(HotTunables::new(Tunables::from_config(&config)));
        let admission = Admission::new(config.workers, Arc::clone(&tunables));
        let shared = Arc::new(Shared {
            engine,
            stats: Arc::new(ServerStats::default()),
            admission,
            registry: RunRegistry::new(),
            limiter: RateLimiter::new(),
            tunables,
            problems: Mutex::new(Vec::new()),
            drain_requested: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(0),
            drained: Mutex::new(None),
            drained_cv: Condvar::new(),
            config,
        });
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle, valid before and during [`Server::serve`].
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until drained; returns the number of warm-start snapshots the
    /// drain checkpoint wrote.
    pub fn serve(self) -> std::io::Result<usize> {
        let Server {
            listener, shared, ..
        } = self;
        let shared = &*shared;
        thread::scope(|scope| {
            for _ in 0..shared.config.workers {
                scope.spawn(|| worker_loop(shared));
            }
            scope.spawn(|| reaper_loop(shared));
            while !shared.drain_requested.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => accept_connection(shared, stream, scope),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
                    Err(_) => thread::sleep(POLL_INTERVAL),
                }
            }
            drop(listener);
            drain(shared)
        })
    }
}

fn accept_connection<'scope, 'env>(
    shared: &'scope Shared,
    stream: TcpStream,
    scope: &'scope thread::Scope<'scope, 'env>,
) {
    if shared.open_connections.load(Ordering::Relaxed) >= shared.config.max_connections {
        bump(&shared.stats.connections_rejected);
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        let _ = json::write_frame(
            &mut stream,
            &protocol::error_frame(
                &ProtocolError::new("busy", "connection limit reached"),
                None,
            ),
        );
        return;
    }
    shared.open_connections.fetch_add(1, Ordering::Relaxed);
    bump(&shared.stats.connections_opened);
    scope.spawn(move || handle_connection(shared, stream));
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed) + 1;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    // The peer address keys the rate limiter and the in-flight quota, so a
    // connection that cannot be attributed to an address is closed rather
    // than pooled into a shared bucket where it would throttle (or hide
    // behind) unrelated clients.
    let Some(peer) = connection_peer(shared, &mut stream) else {
        bump(&shared.stats.unattributed_connections);
        bump(&shared.stats.connections_closed);
        shared.open_connections.fetch_sub(1, Ordering::Relaxed);
        return;
    };
    let client = match stream.try_clone() {
        Ok(writer) => {
            let _ = writer.set_write_timeout(Some(WRITE_TIMEOUT));
            Arc::new(ClientHandle {
                id: conn_id,
                peer,
                writer: Mutex::new(writer),
                alive: AtomicBool::new(true),
                stats: Arc::clone(&shared.stats),
            })
        }
        Err(_) => {
            bump(&shared.stats.connections_closed);
            shared.open_connections.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = stream;
    let mut frames = FrameReader::new(shared.config.max_frame_bytes);
    let mut last_activity = Instant::now();
    let mut partial_since: Option<Instant> = None;
    let timed_out = loop {
        if shared.shutdown.load(Ordering::Relaxed) || !client.alive.load(Ordering::Relaxed) {
            break false;
        }
        match frames.read_frame(&mut reader) {
            FrameResult::Frame(line) => {
                last_activity = Instant::now();
                partial_since = None;
                bump(&shared.stats.frames_received);
                handle_frame(shared, &client, &line);
            }
            FrameResult::WouldBlock => {
                let now = Instant::now();
                if frames.partial_len() > 0 {
                    // A frame has been trickling in: slow-loris defence.
                    let since = *partial_since.get_or_insert(now);
                    if now.duration_since(since) > shared.config.frame_timeout {
                        break true;
                    }
                } else {
                    partial_since = None;
                    if now.duration_since(last_activity) > shared.config.idle_timeout {
                        break true;
                    }
                }
            }
            FrameResult::Closed { .. } => break false,
            FrameResult::Oversized { limit } => {
                bump(&shared.stats.oversized_frames);
                client.send(&protocol::error_frame(
                    &ProtocolError::new(
                        "oversized",
                        format!("frame exceeds the {limit}-byte limit"),
                    ),
                    None,
                ));
            }
            FrameResult::InvalidUtf8 => {
                bump(&shared.stats.encoding_errors);
                client.send(&protocol::error_frame(
                    &ProtocolError::new("encoding", "frame is not valid UTF-8"),
                    None,
                ));
            }
            FrameResult::Err(_) => break false,
        }
    };
    if timed_out {
        bump(&shared.stats.connections_timed_out);
    }
    // Teardown: *detach* the connection's runs instead of cancelling them.
    // They keep executing and journaling under their tokens; the reaper
    // cancels whichever ones nobody resumes within the disconnect grace.
    client.alive.store(false, Ordering::Relaxed);
    let detached = shared.registry.detach_conn(conn_id, Instant::now());
    for _ in 0..detached {
        bump(&shared.stats.runs_detached);
    }
    bump(&shared.stats.connections_closed);
    shared.open_connections.fetch_sub(1, Ordering::Relaxed);
}

/// Longest legal PROXY protocol v1 line, terminator included.
const PROXY_V1_MAX: usize = 107;

/// The address all per-client accounting (rate buckets, in-flight quota)
/// keys on.
///
/// Direct deployments use the socket's peer address.  With
/// [`crate::ServerConfig::proxy_protocol`] on, the connection must open
/// with a PROXY protocol v1 header and the *advertised source* address is
/// used instead — behind a TLS/auth-terminating reverse proxy the socket
/// peer is always the proxy itself, which would fold every client into one
/// bucket.  `None` (close the connection) when the peer is unattributable:
/// no recoverable socket address, or a missing/malformed header.
fn connection_peer(shared: &Shared, stream: &mut TcpStream) -> Option<IpAddr> {
    let direct = stream.peer_addr().ok().map(|a| a.ip())?;
    if !shared.config.proxy_protocol {
        return Some(direct);
    }
    let deadline = Instant::now() + shared.config.frame_timeout;
    match read_proxy_v1(stream, deadline)? {
        // `PROXY UNKNOWN`: the proxy vouches for the connection but cannot
        // name the source (e.g. health checks); fall back to the socket.
        None => Some(direct),
        Some(source) => Some(source),
    }
}

/// Reads and parses one PROXY protocol v1 header line.  `Some(None)` for a
/// well-formed `UNKNOWN` header, `None` for anything malformed, oversized,
/// or slower than `deadline` (the caller closes the connection).
fn read_proxy_v1(stream: &mut TcpStream, deadline: Instant) -> Option<Option<IpAddr>> {
    let mut line = Vec::with_capacity(PROXY_V1_MAX);
    let mut byte = [0u8; 1];
    loop {
        if Instant::now() >= deadline {
            return None;
        }
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => {
                line.push(byte[0]);
                if line.len() >= PROXY_V1_MAX {
                    return None;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(_) => return None,
        }
    }
    let line = std::str::from_utf8(&line).ok()?;
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut fields = line.split(' ');
    if fields.next() != Some("PROXY") {
        return None;
    }
    match fields.next() {
        Some("UNKNOWN") => Some(None), // remainder is unspecified; ignore it
        Some("TCP4") | Some("TCP6") => {
            let source: IpAddr = fields.next()?.parse().ok()?;
            let _dest: IpAddr = fields.next()?.parse().ok()?;
            let _source_port: u16 = fields.next()?.parse().ok()?;
            let _dest_port: u16 = fields.next()?.parse().ok()?;
            if fields.next().is_some() {
                return None;
            }
            Some(Some(source))
        }
        _ => None,
    }
}

fn handle_frame(shared: &Shared, client: &Arc<ClientHandle>, line: &str) {
    let frame = match json::parse_with_limits(line, shared.config.max_frame_depth) {
        Ok(frame) => frame,
        Err(e) => {
            bump(&shared.stats.protocol_errors);
            client.send(&protocol::error_frame(
                &ProtocolError::new("parse", e.to_string()),
                None,
            ));
            return;
        }
    };
    let request = match protocol::parse_request(&frame) {
        Ok(request) => request,
        Err(error) => {
            bump(&shared.stats.protocol_errors);
            client.send(&protocol::error_frame(&error, protocol::request_id(&frame)));
            return;
        }
    };
    match request {
        Request::Ping => {
            client.send(&protocol::pong_frame());
        }
        Request::Stats => {
            let (queued, active) = shared.admission.load();
            client.send(&protocol::stats_frame(
                shared.stats.to_json(),
                shared.engine.cached_problems(),
                queued,
                active,
                shared.admission.is_draining(),
                shared.tunables.get().to_json(),
                shared.registry.tracked(),
            ));
        }
        Request::Drain => {
            shared.request_drain();
            client.send(&protocol::draining_frame());
        }
        Request::Reload => match reload(shared) {
            Ok(tunables) => {
                client.send(&protocol::reloaded_frame(tunables));
            }
            Err(error) => {
                bump(&shared.stats.protocol_errors);
                client.send(&protocol::error_frame(&error, None));
            }
        },
        Request::Cancel { id } => {
            let found = match shared.registry.resolve(client.id, &id) {
                Some(entry) => {
                    entry.cancel_token().cancel();
                    true
                }
                None => false,
            };
            if found {
                bump(&shared.stats.cancels_honoured);
            }
            client.send(&protocol::cancelled_frame(&id, found));
        }
        Request::Resume { token, last_seq } => handle_resume(shared, client, &token, last_seq),
        Request::Submit(submit) => handle_submit(shared, client, *submit),
    }
}

fn handle_resume(shared: &Shared, client: &Arc<ClientHandle>, token: &str, last_seq: u64) {
    let sink: Arc<dyn FrameSink> = Arc::clone(client) as Arc<dyn FrameSink>;
    match shared.registry.resume(
        token,
        client.id,
        sink,
        last_seq,
        Instant::now(),
        |id, replayed, finished| protocol::resumed_frame(id, token, replayed, finished),
        protocol::gap_frame,
    ) {
        Ok(resumed) => {
            bump(&shared.stats.runs_resumed);
            if resumed.gap.is_some() {
                bump(&shared.stats.replay_gaps);
            }
            for _ in 0..resumed.replayed {
                bump(&shared.stats.replay_events_sent);
            }
        }
        Err(error) => {
            bump(&shared.stats.protocol_errors);
            let code = match error {
                ResumeError::UnknownToken => "unknown-token",
                ResumeError::IdConflict => "resume-conflict",
            };
            client.send(&protocol::error_frame(
                &ProtocolError::new(code, error.to_string()),
                None,
            ));
        }
    }
}

fn handle_submit(shared: &Shared, client: &Arc<ClientHandle>, submit: SubmitRequest) {
    if submit.chaos.is_some() && !shared.config.enable_chaos {
        bump(&shared.stats.protocol_errors);
        client.send(&protocol::error_frame(
            &ProtocolError::new(
                "chaos-disabled",
                "chaos directives require a server started with chaos enabled",
            ),
            Some(&submit.id),
        ));
        return;
    }
    let tunables = shared.tunables.get();
    // The rate limiter sits in front of the admission queue: a client
    // hammering submits is shed on its own clock before it can contend for
    // queue depth, with an honest hint from its bucket's actual deficit.
    if let Err(retry_after_ms) = shared.limiter.try_acquire(
        client.peer,
        tunables.rate_per_sec,
        tunables.rate_burst,
        Instant::now(),
    ) {
        bump(&shared.stats.rate_limited_sheds);
        client.send(&protocol::shed_frame(
            &submit.id,
            ShedReason::RateLimited,
            retry_after_ms.max(1),
        ));
        return;
    }
    // The watchdog ceiling is a hard bound: client timeouts are clamped to
    // it, never trusted beyond it.
    let watchdog = tunables.watchdog;
    let mut options = submit.options;
    options.timeout = Some(options.timeout.map_or(watchdog, |t| t.min(watchdog)));
    let limit = options.timeout.unwrap_or(watchdog);
    let entry = match shared.registry.register(
        client.id,
        Arc::clone(client) as Arc<dyn FrameSink>,
        &submit.id,
        submit.events,
        limit,
        shared.config.replay_buffer_bytes,
        shared.config.max_tracked_runs,
    ) {
        Ok(entry) => entry,
        Err(RegisterError::DuplicateId) => {
            bump(&shared.stats.protocol_errors);
            client.send(&protocol::error_frame(
                &ProtocolError::new("bad-request", "run id already in flight"),
                Some(&submit.id),
            ));
            return;
        }
        Err(RegisterError::Full) => {
            bump(&shared.stats.shed_queue_full);
            client.send(&protocol::shed_frame(
                &submit.id,
                ShedReason::QueueFull,
                tunables.retry_after_base_ms.max(1),
            ));
            return;
        }
    };
    let job = Job {
        entry: Arc::clone(&entry),
        source: submit.source,
        options,
        chaos: submit.chaos,
        submitted_at: Instant::now(),
    };
    // Quota accounting keys on the client address, like the rate limiter:
    // runs outlive connections, so a connection-keyed quota would hand a
    // reconnecting client a fresh allowance while its old runs still hold
    // workers.
    match shared.admission.submit(client.peer, job) {
        Ok(queued) => {
            bump(&shared.stats.runs_accepted);
            client.send(&protocol::accepted_frame(&submit.id, queued, entry.token()));
        }
        Err((reason, retry_after_ms)) => {
            shared.registry.unregister(client.id, &entry);
            bump(match reason {
                ShedReason::QueueFull => &shared.stats.shed_queue_full,
                ShedReason::ClientQuota => &shared.stats.shed_client_quota,
                ShedReason::RateLimited => &shared.stats.rate_limited_sheds,
                ShedReason::Draining => &shared.stats.shed_draining,
            });
            client.send(&protocol::shed_frame(&submit.id, reason, retry_after_ms));
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        match shared.admission.next(POLL_INTERVAL * 2) {
            Next::Shutdown => return,
            Next::Idle => continue,
            Next::Job(client_addr, job) => {
                // The panic boundary: a defect anywhere in job execution
                // (including injected chaos) is contained to this job.
                let outcome = catch_unwind(AssertUnwindSafe(|| run_job(shared, &job)));
                if let Err(payload) = outcome {
                    bump(&shared.stats.runs_panicked);
                    if !job.entry.is_finished() {
                        let error = ProtocolError::new("panic", panic_text(payload.as_ref()));
                        let id = job.entry.id().to_string();
                        job.entry.finish(Instant::now(), |seq| {
                            protocol::sequenced(protocol::error_frame(&error, Some(&id)), seq)
                        });
                    }
                }
                // The id becomes reusable; the entry stays resumable by
                // token until retention expires.
                shared.registry.release_id(&job.entry);
                shared.admission.finish(client_addr);
            }
        }
    }
}

fn run_job(shared: &Shared, job: &Job) {
    if let Some(chaos) = job.chaos {
        match chaos {
            ChaosDirective::Sleep(ms) => thread::sleep(Duration::from_millis(ms.min(60_000))),
            ChaosDirective::Panic => panic!("chaos: injected worker panic"),
        }
    }
    let entry = &job.entry;
    let queue_ms = job.submitted_at.elapsed().as_millis() as u64;
    if entry.cancel_token().is_cancelled() {
        // Cancelled (or grace-reaped) while queued: answer without paying
        // for elaboration or a run.
        let result = RunResult::new(Outcome::Cancelled, RunStats::default());
        bump(&shared.stats.runs_completed);
        bump(&shared.stats.runs_cancelled);
        let id = entry.id().to_string();
        entry.finish(Instant::now(), |seq| {
            protocol::result_frame(&id, seq, &result, queue_ms, 0)
        });
        return;
    }
    let problem = match cached_problem(shared, &job.source) {
        Ok(problem) => problem,
        Err(message) => {
            bump(&shared.stats.runs_rejected);
            let error = ProtocolError::new("bad-problem", message);
            let id = entry.id().to_string();
            entry.finish(Instant::now(), |seq| {
                protocol::sequenced(protocol::error_frame(&error, Some(&id)), seq)
            });
            return;
        }
    };
    // Arm the watchdog: the run is now spending wall clock.
    entry.mark_started(Instant::now());
    let started = Instant::now();
    let session = shared.engine.session(&problem);
    let outcome = if entry.events_wanted() {
        let stats = &shared.stats;
        let id = entry.id().to_string();
        let mut observer = |event: &RunEvent| {
            bump(&stats.events_sent);
            // Journal + forward.  A dead owner detaches the run rather than
            // cancelling it: the journal keeps the stream whole for a
            // resumer, and the reaper enforces the grace deadline.
            let emitted = entry.emit(Instant::now(), |seq| protocol::event_frame(&id, seq, event));
            if emitted.detached {
                bump(&stats.runs_detached);
            }
        };
        session.run_caught(
            &job.options,
            Some(&mut observer),
            Some(entry.cancel_token().clone()),
        )
    } else {
        session.run_caught(&job.options, None, Some(entry.cancel_token().clone()))
    };
    let run_ms = started.elapsed().as_millis() as u64;
    match outcome {
        Ok(result) => {
            bump(&shared.stats.runs_completed);
            match &result.outcome {
                Outcome::Invariant(_) => bump(&shared.stats.runs_invariant),
                Outcome::Cancelled => bump(&shared.stats.runs_cancelled),
                Outcome::Timeout => bump(&shared.stats.runs_timeout),
                _ => {}
            }
            let id = entry.id().to_string();
            entry.finish(Instant::now(), |seq| {
                protocol::result_frame(&id, seq, &result, queue_ms, run_ms)
            });
        }
        Err(message) => {
            bump(&shared.stats.runs_panicked);
            let error = ProtocolError::new("panic", format!("run panicked: {message}"));
            let id = entry.id().to_string();
            entry.finish(Instant::now(), |seq| {
                protocol::sequenced(protocol::error_frame(&error, Some(&id)), seq)
            });
        }
    }
}

/// Looks up (or elaborates) the problem for `source`, LRU-bounded by
/// [`crate::ServerConfig::max_cached_sources`].  Sharing the elaborated
/// `Problem` is what lets repeat submissions share the engine's warm
/// caches: the engine keys cache entries by problem identity, so a fresh
/// elaboration per submit would always run cold.
fn cached_problem(shared: &Shared, source: &str) -> Result<Arc<Problem>, String> {
    {
        let mut cache = lock(&shared.problems);
        if let Some(pos) = cache.iter().position(|(s, _)| s == source) {
            let entry = cache.remove(pos);
            let problem = Arc::clone(&entry.1);
            cache.push(entry);
            return Ok(problem);
        }
    }
    // Elaborate outside the lock: it can be slow, and sibling workers must
    // not stall behind it.
    let problem = Arc::new(Problem::from_source(source).map_err(|e| e.to_string())?);
    let mut cache = lock(&shared.problems);
    if let Some(pos) = cache.iter().position(|(s, _)| s == source) {
        // A sibling elaborated the same source concurrently; share theirs,
        // since two elaborations never share engine-side warmth.
        return Ok(Arc::clone(&cache[pos].1));
    }
    cache.push((source.to_string(), Arc::clone(&problem)));
    while cache.len() > shared.config.max_cached_sources {
        cache.remove(0);
    }
    Ok(problem)
}

/// The watchdog, the disconnect-grace enforcer, the retention reaper, and
/// the rate-limiter pruner, in one periodic sweep.
fn reaper_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        thread::sleep(POLL_INTERVAL);
        let tunables = shared.tunables.get();
        let report = shared.registry.reap(
            Instant::now(),
            tunables.watchdog_grace,
            tunables.disconnect_grace,
            shared.config.result_retention,
        );
        for _ in 0..report.watchdog_cancels {
            bump(&shared.stats.watchdog_cancels);
        }
        for _ in 0..report.grace_cancels {
            bump(&shared.stats.grace_cancels);
        }
        shared
            .limiter
            .prune(tunables.rate_per_sec, tunables.rate_burst, Instant::now());
    }
}

/// The drain sequence; returns how many warm-start snapshots were written.
fn drain(shared: &Shared) -> std::io::Result<usize> {
    shared.admission.begin_drain();
    if !shared.admission.wait_idle(shared.config.drain_timeout) {
        // Patience exhausted.  Queued jobs never started: answer them
        // `cancelled` directly (journaled, like every terminal frame).
        for (_client, job) in shared.admission.drain_queue() {
            job.entry.cancel_token().cancel();
            let result = RunResult::new(Outcome::Cancelled, RunStats::default());
            bump(&shared.stats.runs_completed);
            bump(&shared.stats.runs_cancelled);
            let queue_ms = job.submitted_at.elapsed().as_millis() as u64;
            let id = job.entry.id().to_string();
            job.entry.finish(Instant::now(), |seq| {
                protocol::result_frame(&id, seq, &result, queue_ms, 0)
            });
            shared.registry.release_id(&job.entry);
        }
        // Running jobs get cancelled and a second patience window to unwind
        // through their cancellation points.
        shared.registry.cancel_all();
        shared.admission.wait_idle(shared.config.drain_timeout);
    }
    // Checkpoint warm state while the engine is quiescent.
    let written = shared.engine.save_state_to_warm_dir();
    if let Ok(count) = written {
        for _ in 0..count {
            bump(&shared.stats.drain_snapshots);
        }
    }
    // Release every thread: workers, reaper, connection loops.
    shared.shutdown.store(true, Ordering::Relaxed);
    shared.admission.shutdown();
    {
        let mut drained = lock(&shared.drained);
        *drained = Some(*written.as_ref().unwrap_or(&0));
        shared.drained_cv.notify_all();
    }
    written
}

/// Renders a panic payload as text.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
