//! The server proper: accept loop, connection threads, worker pool,
//! watchdog, and the graceful-drain coordinator.
//!
//! # Thread shape
//!
//! [`Server::serve`] blocks inside one `std::thread::scope`:
//!
//! * the calling thread runs the (non-blocking, polled) **accept loop**;
//! * one scoped thread per accepted socket runs the **connection loop** —
//!   frame decoding, request dispatch, timeout enforcement;
//! * [`crate::ServerConfig::workers`] scoped threads run the **worker
//!   loop** — they pull admitted jobs and execute inference runs against
//!   the one shared [`Engine`];
//! * one scoped **watchdog** thread force-cancels runs that outlive their
//!   deadline.
//!
//! When a drain is requested (the `drain` protocol op, or
//! [`ServerHandle::drain`] — typically wired to SIGTERM by the binary), the
//! accept loop exits and runs the drain sequence: stop admitting, wait for
//! in-flight work (cancelling whatever outlives the patience window),
//! checkpoint the engine's warm state to disk, then release every thread
//! and return.  The scope guarantees nothing leaks.
//!
//! # Fault isolation
//!
//! Every worker iteration runs behind `catch_unwind`, and the run itself
//! behind [`hanoi::Session::run_caught`] — a panicking run produces a
//! structured `error` frame for its one client (and, for run-internal
//! panics, evicts that problem's possibly-wrecked cache entry) while the
//! process, the other connections, and every *other* problem's warm caches
//! carry on.  Connection threads own all socket I/O; a client that
//! disconnects mid-run simply has its runs cancelled via their
//! [`CancelToken`]s.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use hanoi::{CancelToken, Engine, Outcome, RunEvent, RunOptions, RunResult, RunStats};
use hanoi_abstraction::Problem;
use hanoi_lang::json::{self, FrameReader, FrameResult, Json};

use crate::admission::{Admission, Next};
use crate::config::ServerConfig;
use crate::protocol::{self, ChaosDirective, ProtocolError, Request, ShedReason, SubmitRequest};
use crate::stats::{bump, ServerStats};

/// How often blocked loops (accept, connection reads, worker polls, the
/// watchdog) wake to re-check shutdown flags.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Write-side patience before a stuck client counts as gone.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|p| p.into_inner())
}

/// One admitted inference run, queued for a worker.
#[derive(Debug)]
struct Job {
    id: String,
    client: Arc<ClientHandle>,
    source: String,
    options: RunOptions,
    events: bool,
    chaos: Option<ChaosDirective>,
    token: CancelToken,
    submitted_at: Instant,
}

/// Cancellation and deadline state of one in-flight run, keyed by
/// `(connection id, run id)`.
#[derive(Debug)]
struct RunControl {
    token: CancelToken,
    /// Set when a worker picks the job up; the watchdog only times running
    /// jobs.
    started: Option<Instant>,
    /// The run's wall-clock ceiling (its clamped timeout).
    limit: Duration,
}

/// The write half of one client connection, shared between its connection
/// thread and the workers streaming frames back to it.
#[derive(Debug)]
struct ClientHandle {
    id: u64,
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl ClientHandle {
    /// Sends one frame; on any write failure the client is marked dead so
    /// later sends (and event streams) short-circuit.
    fn send(&self, stats: &ServerStats, frame: &Json) -> bool {
        if !self.alive.load(Ordering::Relaxed) {
            return false;
        }
        let mut writer = lock(&self.writer);
        match json::write_frame(&mut *writer, frame) {
            Ok(()) => true,
            Err(_) => {
                self.alive.store(false, Ordering::Relaxed);
                bump(&stats.write_errors);
                false
            }
        }
    }
}

/// State shared by every thread of one server.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    engine: Engine,
    stats: ServerStats,
    admission: Admission<Job>,
    /// In-flight runs (queued or running), for cancel/watchdog/disconnect.
    runs: Mutex<HashMap<(u64, String), RunControl>>,
    /// Elaborated problems keyed by source text, most recent last.  The
    /// engine keys its warm caches by the elaborated problem's identity, so
    /// re-elaborating the same source would always start cold: this cache is
    /// what makes repeat submissions of one problem share warmth across
    /// connections.
    problems: Mutex<Vec<(String, Arc<Problem>)>>,
    drain_requested: AtomicBool,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
    next_conn_id: AtomicU64,
    /// Snapshot count once the drain completes.
    drained: Mutex<Option<usize>>,
    drained_cv: Condvar,
}

impl Shared {
    fn request_drain(&self) {
        self.drain_requested.store(true, Ordering::Relaxed);
        self.admission.begin_drain();
    }
}

/// A bounded, fault-isolated TCP front end over one shared [`Engine`].
///
/// Bind with [`Server::bind`], grab a [`ServerHandle`] for out-of-band
/// control, then call [`Server::serve`] (blocking until drained):
///
/// ```no_run
/// use hanoi_server::{Server, ServerConfig};
///
/// let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
/// let handle = server.handle();
/// std::thread::spawn(move || server.serve());
/// // … later, e.g. from a signal handler loop:
/// handle.drain();
/// handle.wait_drained(std::time::Duration::from_secs(60));
/// ```
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Out-of-band control of a running [`Server`]: its address, a drain
/// trigger, and a way to wait for the drain to finish.  Clonable and
/// `Send`; the binary wires [`ServerHandle::drain`] to SIGTERM/SIGINT.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The server's bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: stop admitting, finish (or cancel)
    /// in-flight runs, checkpoint warm state, shut down.  Idempotent,
    /// callable from any thread (it only flips flags — safe from a signal
    /// polling loop).
    pub fn drain(&self) {
        self.shared.request_drain();
    }

    /// Waits up to `timeout` for the drain to complete; returns the number
    /// of warm-start snapshots written, or `None` on timeout.
    pub fn wait_drained(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut drained = lock(&self.shared.drained);
        loop {
            if let Some(snapshots) = *drained {
                return Some(snapshots);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            drained = self
                .shared
                .drained_cv
                .wait_timeout(drained, deadline - now)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Live server counters (same payload as the `stats` protocol reply's
    /// `server` field).
    pub fn stats_json(&self) -> Json {
        self.shared.stats.to_json()
    }
}

impl Server {
    /// Binds a listener and builds the engine; the server is not serving
    /// until [`Server::serve`] is called.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?;
        let engine = Engine::new(config.engine.clone())
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let admission = Admission::new(
            config.workers,
            config.max_queue_depth,
            config.per_client_quota,
            config.retry_after_base_ms,
        );
        let shared = Arc::new(Shared {
            engine,
            stats: ServerStats::default(),
            admission,
            runs: Mutex::new(HashMap::new()),
            problems: Mutex::new(Vec::new()),
            drain_requested: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(0),
            drained: Mutex::new(None),
            drained_cv: Condvar::new(),
            config,
        });
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle, valid before and during [`Server::serve`].
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until drained; returns the number of warm-start snapshots the
    /// drain checkpoint wrote.
    pub fn serve(self) -> std::io::Result<usize> {
        let Server {
            listener, shared, ..
        } = self;
        let shared = &*shared;
        thread::scope(|scope| {
            for _ in 0..shared.config.workers {
                scope.spawn(|| worker_loop(shared));
            }
            scope.spawn(|| watchdog_loop(shared));
            while !shared.drain_requested.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => accept_connection(shared, stream, scope),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
                    Err(_) => thread::sleep(POLL_INTERVAL),
                }
            }
            drop(listener);
            drain(shared)
        })
    }
}

fn accept_connection<'scope, 'env>(
    shared: &'scope Shared,
    stream: TcpStream,
    scope: &'scope thread::Scope<'scope, 'env>,
) {
    if shared.open_connections.load(Ordering::Relaxed) >= shared.config.max_connections {
        bump(&shared.stats.connections_rejected);
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        let _ = json::write_frame(
            &mut stream,
            &protocol::error_frame(
                &ProtocolError::new("busy", "connection limit reached"),
                None,
            ),
        );
        return;
    }
    shared.open_connections.fetch_add(1, Ordering::Relaxed);
    bump(&shared.stats.connections_opened);
    scope.spawn(move || handle_connection(shared, stream));
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed) + 1;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let client = match stream.try_clone() {
        Ok(writer) => {
            let _ = writer.set_write_timeout(Some(WRITE_TIMEOUT));
            Arc::new(ClientHandle {
                id: conn_id,
                writer: Mutex::new(writer),
                alive: AtomicBool::new(true),
            })
        }
        Err(_) => {
            bump(&shared.stats.connections_closed);
            shared.open_connections.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = stream;
    let mut frames = FrameReader::new(shared.config.max_frame_bytes);
    let mut last_activity = Instant::now();
    let mut partial_since: Option<Instant> = None;
    let timed_out = loop {
        if shared.shutdown.load(Ordering::Relaxed) || !client.alive.load(Ordering::Relaxed) {
            break false;
        }
        match frames.read_frame(&mut reader) {
            FrameResult::Frame(line) => {
                last_activity = Instant::now();
                partial_since = None;
                bump(&shared.stats.frames_received);
                handle_frame(shared, &client, &line);
            }
            FrameResult::WouldBlock => {
                let now = Instant::now();
                if frames.partial_len() > 0 {
                    // A frame has been trickling in: slow-loris defence.
                    let since = *partial_since.get_or_insert(now);
                    if now.duration_since(since) > shared.config.frame_timeout {
                        break true;
                    }
                } else {
                    partial_since = None;
                    if now.duration_since(last_activity) > shared.config.idle_timeout {
                        break true;
                    }
                }
            }
            FrameResult::Closed { .. } => break false,
            FrameResult::Oversized { limit } => {
                bump(&shared.stats.oversized_frames);
                client.send(
                    &shared.stats,
                    &protocol::error_frame(
                        &ProtocolError::new(
                            "oversized",
                            format!("frame exceeds the {limit}-byte limit"),
                        ),
                        None,
                    ),
                );
            }
            FrameResult::InvalidUtf8 => {
                bump(&shared.stats.encoding_errors);
                client.send(
                    &shared.stats,
                    &protocol::error_frame(
                        &ProtocolError::new("encoding", "frame is not valid UTF-8"),
                        None,
                    ),
                );
            }
            FrameResult::Err(_) => break false,
        }
    };
    if timed_out {
        bump(&shared.stats.connections_timed_out);
    }
    // Teardown: the client's in-flight runs are moot — cancel them so
    // workers stop spending budget on answers nobody will read.
    client.alive.store(false, Ordering::Relaxed);
    {
        let runs = lock(&shared.runs);
        for ((owner, _), control) in runs.iter() {
            if *owner == conn_id {
                control.token.cancel();
            }
        }
    }
    bump(&shared.stats.connections_closed);
    shared.open_connections.fetch_sub(1, Ordering::Relaxed);
}

fn handle_frame(shared: &Shared, client: &Arc<ClientHandle>, line: &str) {
    let frame = match json::parse_with_limits(line, shared.config.max_frame_depth) {
        Ok(frame) => frame,
        Err(e) => {
            bump(&shared.stats.protocol_errors);
            client.send(
                &shared.stats,
                &protocol::error_frame(&ProtocolError::new("parse", e.to_string()), None),
            );
            return;
        }
    };
    let request = match protocol::parse_request(&frame) {
        Ok(request) => request,
        Err(error) => {
            bump(&shared.stats.protocol_errors);
            client.send(
                &shared.stats,
                &protocol::error_frame(&error, protocol::request_id(&frame)),
            );
            return;
        }
    };
    match request {
        Request::Ping => {
            client.send(&shared.stats, &protocol::pong_frame());
        }
        Request::Stats => {
            let (queued, active) = shared.admission.load();
            client.send(
                &shared.stats,
                &protocol::stats_frame(
                    shared.stats.to_json(),
                    shared.engine.cached_problems(),
                    queued,
                    active,
                    shared.admission.is_draining(),
                ),
            );
        }
        Request::Drain => {
            shared.request_drain();
            client.send(&shared.stats, &protocol::draining_frame());
        }
        Request::Cancel { id } => {
            let found = {
                let runs = lock(&shared.runs);
                match runs.get(&(client.id, id.clone())) {
                    Some(control) => {
                        control.token.cancel();
                        true
                    }
                    None => false,
                }
            };
            if found {
                bump(&shared.stats.cancels_honoured);
            }
            client.send(&shared.stats, &protocol::cancelled_frame(&id, found));
        }
        Request::Submit(submit) => handle_submit(shared, client, *submit),
    }
}

fn handle_submit(shared: &Shared, client: &Arc<ClientHandle>, submit: SubmitRequest) {
    if submit.chaos.is_some() && !shared.config.enable_chaos {
        bump(&shared.stats.protocol_errors);
        client.send(
            &shared.stats,
            &protocol::error_frame(
                &ProtocolError::new(
                    "chaos-disabled",
                    "chaos directives require a server started with chaos enabled",
                ),
                Some(&submit.id),
            ),
        );
        return;
    }
    let key = (client.id, submit.id.clone());
    if lock(&shared.runs).contains_key(&key) {
        bump(&shared.stats.protocol_errors);
        client.send(
            &shared.stats,
            &protocol::error_frame(
                &ProtocolError::new("bad-request", "run id already in flight"),
                Some(&submit.id),
            ),
        );
        return;
    }
    // The watchdog ceiling is a hard bound: client timeouts are clamped to
    // it, never trusted beyond it.
    let watchdog = shared.config.watchdog;
    let mut options = submit.options;
    options.timeout = Some(options.timeout.map_or(watchdog, |t| t.min(watchdog)));
    let limit = options.timeout.unwrap_or(watchdog);
    let token = CancelToken::new();
    let job = Job {
        id: submit.id.clone(),
        client: Arc::clone(client),
        source: submit.source,
        options,
        events: submit.events,
        chaos: submit.chaos,
        token: token.clone(),
        submitted_at: Instant::now(),
    };
    match shared.admission.submit(client.id, job) {
        Ok(queued) => {
            bump(&shared.stats.runs_accepted);
            lock(&shared.runs).insert(
                key,
                RunControl {
                    token,
                    started: None,
                    limit,
                },
            );
            client.send(&shared.stats, &protocol::accepted_frame(&submit.id, queued));
        }
        Err((reason, retry_after_ms)) => {
            bump(match reason {
                ShedReason::QueueFull => &shared.stats.shed_queue_full,
                ShedReason::ClientQuota => &shared.stats.shed_client_quota,
                ShedReason::Draining => &shared.stats.shed_draining,
            });
            client.send(
                &shared.stats,
                &protocol::shed_frame(&submit.id, reason, retry_after_ms),
            );
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        match shared.admission.next(POLL_INTERVAL * 2) {
            Next::Shutdown => return,
            Next::Idle => continue,
            Next::Job(client_id, job) => {
                // The panic boundary: a defect anywhere in job execution
                // (including injected chaos) is contained to this job.
                let outcome = catch_unwind(AssertUnwindSafe(|| run_job(shared, &job)));
                if let Err(payload) = outcome {
                    bump(&shared.stats.runs_panicked);
                    job.client.send(
                        &shared.stats,
                        &protocol::error_frame(
                            &ProtocolError::new("panic", panic_text(payload.as_ref())),
                            Some(&job.id),
                        ),
                    );
                }
                lock(&shared.runs).remove(&(client_id, job.id.clone()));
                shared.admission.finish(client_id);
            }
        }
    }
}

fn run_job(shared: &Shared, job: &Job) {
    if let Some(chaos) = job.chaos {
        match chaos {
            ChaosDirective::Sleep(ms) => thread::sleep(Duration::from_millis(ms.min(60_000))),
            ChaosDirective::Panic => panic!("chaos: injected worker panic"),
        }
    }
    let queue_ms = job.submitted_at.elapsed().as_millis() as u64;
    if job.token.is_cancelled() {
        // Cancelled (or disconnected) while queued: answer without paying
        // for elaboration or a run.
        let result = RunResult::new(Outcome::Cancelled, RunStats::default());
        bump(&shared.stats.runs_completed);
        bump(&shared.stats.runs_cancelled);
        job.client.send(
            &shared.stats,
            &protocol::result_frame(&job.id, &result, queue_ms, 0),
        );
        return;
    }
    let problem = match cached_problem(shared, &job.source) {
        Ok(problem) => problem,
        Err(message) => {
            bump(&shared.stats.runs_rejected);
            job.client.send(
                &shared.stats,
                &protocol::error_frame(&ProtocolError::new("bad-problem", message), Some(&job.id)),
            );
            return;
        }
    };
    // Arm the watchdog: the run is now spending wall clock.
    {
        let mut runs = lock(&shared.runs);
        if let Some(control) = runs.get_mut(&(job.client.id, job.id.clone())) {
            control.started = Some(Instant::now());
        }
    }
    let started = Instant::now();
    let session = shared.engine.session(&problem);
    let outcome = if job.events {
        let stats = &shared.stats;
        let handle = &job.client;
        let id = &job.id;
        let token = job.token.clone();
        let mut observer = |event: &RunEvent| {
            bump(&stats.events_sent);
            if !handle.send(stats, &protocol::event_frame(id, event)) {
                // The client is gone; stop spending budget on the run.
                token.cancel();
            }
        };
        session.run_caught(&job.options, Some(&mut observer), Some(job.token.clone()))
    } else {
        session.run_caught(&job.options, None, Some(job.token.clone()))
    };
    let run_ms = started.elapsed().as_millis() as u64;
    match outcome {
        Ok(result) => {
            bump(&shared.stats.runs_completed);
            match &result.outcome {
                Outcome::Invariant(_) => bump(&shared.stats.runs_invariant),
                Outcome::Cancelled => bump(&shared.stats.runs_cancelled),
                Outcome::Timeout => bump(&shared.stats.runs_timeout),
                _ => {}
            }
            job.client.send(
                &shared.stats,
                &protocol::result_frame(&job.id, &result, queue_ms, run_ms),
            );
        }
        Err(message) => {
            bump(&shared.stats.runs_panicked);
            job.client.send(
                &shared.stats,
                &protocol::error_frame(
                    &ProtocolError::new("panic", format!("run panicked: {message}")),
                    Some(&job.id),
                ),
            );
        }
    }
}

/// Looks up (or elaborates) the problem for `source`, LRU-bounded by
/// [`crate::ServerConfig::max_cached_sources`].  Sharing the elaborated
/// `Problem` is what lets repeat submissions share the engine's warm
/// caches: the engine keys cache entries by problem identity, so a fresh
/// elaboration per submit would always run cold.
fn cached_problem(shared: &Shared, source: &str) -> Result<Arc<Problem>, String> {
    {
        let mut cache = lock(&shared.problems);
        if let Some(pos) = cache.iter().position(|(s, _)| s == source) {
            let entry = cache.remove(pos);
            let problem = Arc::clone(&entry.1);
            cache.push(entry);
            return Ok(problem);
        }
    }
    // Elaborate outside the lock: it can be slow, and sibling workers must
    // not stall behind it.
    let problem = Arc::new(Problem::from_source(source).map_err(|e| e.to_string())?);
    let mut cache = lock(&shared.problems);
    if let Some(pos) = cache.iter().position(|(s, _)| s == source) {
        // A sibling elaborated the same source concurrently; share theirs,
        // since two elaborations never share engine-side warmth.
        return Ok(Arc::clone(&cache[pos].1));
    }
    cache.push((source.to_string(), Arc::clone(&problem)));
    while cache.len() > shared.config.max_cached_sources {
        cache.remove(0);
    }
    Ok(problem)
}

fn watchdog_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        thread::sleep(POLL_INTERVAL);
        let grace = shared.config.watchdog_grace;
        let runs = lock(&shared.runs);
        for control in runs.values() {
            if let Some(started) = control.started {
                if started.elapsed() > control.limit + grace && !control.token.is_cancelled() {
                    control.token.cancel();
                    bump(&shared.stats.watchdog_cancels);
                }
            }
        }
    }
}

/// The drain sequence; returns how many warm-start snapshots were written.
fn drain(shared: &Shared) -> std::io::Result<usize> {
    shared.admission.begin_drain();
    if !shared.admission.wait_idle(shared.config.drain_timeout) {
        // Patience exhausted.  Queued jobs never started: answer them
        // `cancelled` directly.
        for (client_id, job) in shared.admission.drain_queue() {
            job.token.cancel();
            let result = RunResult::new(Outcome::Cancelled, RunStats::default());
            bump(&shared.stats.runs_completed);
            bump(&shared.stats.runs_cancelled);
            job.client.send(
                &shared.stats,
                &protocol::result_frame(
                    &job.id,
                    &result,
                    job.submitted_at.elapsed().as_millis() as u64,
                    0,
                ),
            );
            lock(&shared.runs).remove(&(client_id, job.id));
        }
        // Running jobs get cancelled and a second patience window to unwind
        // through their cancellation points.
        {
            let runs = lock(&shared.runs);
            for control in runs.values() {
                control.token.cancel();
            }
        }
        shared.admission.wait_idle(shared.config.drain_timeout);
    }
    // Checkpoint warm state while the engine is quiescent.
    let written = shared.engine.save_state_to_warm_dir();
    if let Ok(count) = written {
        for _ in 0..count {
            bump(&shared.stats.drain_snapshots);
        }
    }
    // Release every thread: workers, watchdog, connection loops.
    shared.shutdown.store(true, Ordering::Relaxed);
    shared.admission.shutdown();
    {
        let mut drained = lock(&shared.drained);
        *drained = Some(*written.as_ref().unwrap_or(&0));
        shared.drained_cv.notify_all();
    }
    written
}

/// Renders a panic payload as text.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
