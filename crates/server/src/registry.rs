//! The durable run registry: run lifetime decoupled from connection
//! lifetime.
//!
//! Every accepted submit registers a [`RunEntry`] under a server-issued
//! *run token*.  The entry owns the run's cancellation token, its
//! [`ReplayBuffer`] journal, and — crucially — a *detachable* pointer to the
//! connection currently receiving the stream.  When that connection dies the
//! entry merely detaches: the run keeps executing and journaling, and a
//! client presenting the token (plus the last sequence number it saw) on any
//! later connection re-attaches, receives the journaled gap, and continues
//! live.  A detached run that nobody reclaims within the configured grace
//! period is cancelled by the periodic reaper; finished runs are retained
//! for a while so a client that disconnected moments before the result can
//! still fetch it, then removed.
//!
//! Locking is three-level and strictly ordered: the registry's index lock
//! (token and connection maps) is never taken while an entry's lock is
//! held, and each entry splits its *state* lock (owner pointer, journal,
//! lifecycle — held only for short, in-memory critical sections) from its
//! *send* lock (held across socket writes so a resume replay can never
//! interleave with a concurrent live emit).  The send lock may be taken
//! before the state lock, never the other way round: frames are journaled
//! and the owner snapshotted under `state`, then written to the socket
//! under `send` with `state` released — so a client wedged mid-write can
//! stall at most the frames destined for *its* run, never the reaper sweep
//! that polices every other run's deadlines.

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::Read;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use hanoi::CancelToken;
use hanoi_lang::json::Json;

use crate::replay::{Replay, ReplayBuffer};

/// Where a run's reply frames go: one connection's framed writer.
///
/// The indirection keeps the registry testable without sockets — unit tests
/// attach buffering sinks — and keeps the lock order honest: the registry
/// only ever calls `send_frame` while holding the owning entry's state lock.
pub trait FrameSink: Send + Sync {
    /// Writes one frame; `false` means the connection is gone (the caller
    /// detaches the run).
    fn send_frame(&self, frame: &Json) -> bool;
}

/// Why a registration was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterError {
    /// The connection already has an active run with this client-chosen id.
    DuplicateId,
    /// The registry is at `max_tracked_runs` with nothing reclaimable.
    Full,
}

/// Why a resume was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeError {
    /// No run with that token (never issued, or already reaped).
    UnknownToken,
    /// The resuming connection already has a *different* active run under
    /// the resumed run's client-chosen id, so re-pointing the `(conn, id)`
    /// cancel route would silently orphan that run.
    IdConflict,
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::UnknownToken => write!(f, "unknown or expired run token"),
            ResumeError::IdConflict => write!(
                f,
                "the connection already has a different run with the resumed run's id"
            ),
        }
    }
}

/// Where a run is in its lifecycle.
#[derive(Debug, Clone, Copy)]
enum RunState {
    /// Admitted, not yet picked up by a worker.
    Queued,
    /// Executing since the recorded instant.
    Running { started: Instant },
    /// Done (result journaled) at the recorded instant.
    Finished { at: Instant },
}

struct Owner {
    conn: u64,
    sink: Arc<dyn FrameSink>,
}

struct EntryState {
    owner: Option<Owner>,
    replay: ReplayBuffer,
    /// When the run lost its last owner (cleared on re-attach).
    detached_since: Option<Instant>,
    run: RunState,
    /// Set once the reaper cancels for grace expiry, so it is counted once.
    grace_cancelled: bool,
    /// Set once the reaper cancels for watchdog overrun, counted once.
    watchdog_cancelled: bool,
}

/// One tracked run: identity, cancellation, journal, and current owner.
pub struct RunEntry {
    token: String,
    id: String,
    cancel: CancelToken,
    limit: Duration,
    events_wanted: bool,
    state: Mutex<EntryState>,
    /// Serializes socket writes for this run (live emits vs. resume
    /// replays).  Ordered strictly before `state`: it may be held while
    /// taking `state`, but `state` is never held while taking it — and
    /// never across a socket write — so a stuck client write cannot stall
    /// anyone who only needs the in-memory state (the reaper above all).
    send: Mutex<()>,
}

/// What [`RunEntry::emit`] did with the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Emitted {
    /// The sequence number the frame was journaled under.
    pub seq: u64,
    /// `true` when a live connection received it.
    pub delivered: bool,
    /// `true` when this emit discovered the owner dead and detached it.
    pub detached: bool,
}

impl RunEntry {
    /// The server-issued run token.
    pub fn token(&self) -> &str {
        &self.token
    }

    /// The client-chosen run id (scoped to whichever connection owns the
    /// run).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The run's cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The watchdog-clamped run limit.
    pub fn limit(&self) -> Duration {
        self.limit
    }

    /// Whether the submitter asked for streamed events.
    pub fn events_wanted(&self) -> bool {
        self.events_wanted
    }

    fn lock(&self) -> MutexGuard<'_, EntryState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records that a worker picked the run up.
    pub fn mark_started(&self, now: Instant) {
        let mut state = self.lock();
        if matches!(state.run, RunState::Queued) {
            state.run = RunState::Running { started: now };
        }
    }

    /// Whether the terminal frame has been journaled.
    pub fn is_finished(&self) -> bool {
        matches!(self.lock().run, RunState::Finished { .. })
    }

    /// Whether the run currently has no owning connection.
    pub fn is_detached(&self) -> bool {
        self.lock().owner.is_none()
    }

    /// Journals the frame built by `make` (given its sequence number) and
    /// forwards it to the owning connection, detaching on write failure.
    pub fn emit(&self, now: Instant, make: impl FnOnce(u64) -> Json) -> Emitted {
        let (seq, frame, target) = {
            let mut state = self.lock();
            let (seq, frame) = state.replay.append(make);
            (seq, frame, snapshot_owner(&state))
        };
        self.send_live(seq, &frame, target, now)
    }

    /// Journals the run's terminal frame, marks the run finished, and
    /// forwards the frame to the owning connection.
    pub fn finish(&self, now: Instant, make: impl FnOnce(u64) -> Json) -> Emitted {
        let (seq, frame, target) = {
            let mut state = self.lock();
            let (seq, frame) = state.replay.append(make);
            state.run = RunState::Finished { at: now };
            (seq, frame, snapshot_owner(&state))
        };
        self.send_live(seq, &frame, target, now)
    }

    /// Writes an already-journaled frame to the owner snapshotted at append
    /// time, under the send lock and with the state lock released.  A
    /// failed write detaches the run — but only if the snapshotted owner
    /// still owns it, so a concurrent resume's fresh claim is never undone
    /// by a stale write to the connection it superseded.
    fn send_live(
        &self,
        seq: u64,
        frame: &Json,
        target: Option<(u64, Arc<dyn FrameSink>)>,
        now: Instant,
    ) -> Emitted {
        let Some((conn, sink)) = target else {
            return Emitted {
                seq,
                delivered: false,
                detached: false,
            };
        };
        let _send = self.send.lock().unwrap_or_else(|p| p.into_inner());
        if sink.send_frame(frame) {
            return Emitted {
                seq,
                delivered: true,
                detached: false,
            };
        }
        let mut state = self.lock();
        if state.owner.as_ref().is_some_and(|owner| owner.conn == conn) {
            state.owner = None;
            if state.detached_since.is_none() {
                state.detached_since = Some(now);
            }
            Emitted {
                seq,
                delivered: false,
                detached: true,
            }
        } else {
            // A resume re-owned the run while this write was failing; the
            // new owner replayed the frame from the journal, so nothing is
            // lost and nothing to detach.
            Emitted {
                seq,
                delivered: false,
                detached: false,
            }
        }
    }

    /// Drops the owner (if it is `conn`) without cancelling the run.
    fn detach_if_owned_by(&self, conn: u64, now: Instant) -> bool {
        let mut state = self.lock();
        match &state.owner {
            Some(owner) if owner.conn == conn => {
                state.owner = None;
                if state.detached_since.is_none() {
                    state.detached_since = Some(now);
                }
                true
            }
            _ => false,
        }
    }
}

/// The current owner as a write target: `(conn, sink)`.
fn snapshot_owner(state: &EntryState) -> Option<(u64, Arc<dyn FrameSink>)> {
    state
        .owner
        .as_ref()
        .map(|owner| (owner.conn, Arc::clone(&owner.sink)))
}

/// What a successful [`RunRegistry::resume`] replayed.
pub struct Resumed {
    /// The re-attached run.
    pub entry: Arc<RunEntry>,
    /// The journaled-but-evicted range, if the resumer was too far behind.
    pub gap: Option<(u64, u64)>,
    /// How many journaled frames were replayed to the new connection.
    pub replayed: usize,
    /// Whether the run had already finished (the replay included the
    /// terminal frame; nothing further will stream).
    pub finished: bool,
}

/// What one reaper sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReapReport {
    /// Runs cancelled for exceeding their limit plus the watchdog grace.
    pub watchdog_cancels: usize,
    /// Detached runs cancelled for outliving the disconnect grace.
    pub grace_cancels: usize,
    /// Finished runs removed after the retention window.
    pub removed: usize,
}

struct Inner {
    entries: HashMap<String, Arc<RunEntry>>,
    /// Routes `(connection, client-chosen id)` — the cancel op's addressing
    /// scheme — to the owning token.
    by_conn: HashMap<(u64, String), String>,
    next_token: u64,
    /// The OS CSPRNG the token nonces are drawn from.  Tokens are
    /// capabilities — one leaked token must reveal nothing about any other —
    /// so they cannot come from an invertible mixer over a guessable seed:
    /// a client holding its own token could invert the mix, recover the
    /// seed, and mint every other client's token.
    urandom: Option<File>,
}

/// The registry: tokens to entries, plus the per-connection id index.
pub struct RunRegistry {
    inner: Mutex<Inner>,
}

impl Default for RunRegistry {
    fn default() -> Self {
        RunRegistry::new()
    }
}

impl RunRegistry {
    /// An empty registry drawing token entropy from the OS CSPRNG.
    pub fn new() -> RunRegistry {
        RunRegistry {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                by_conn: HashMap::new(),
                next_token: 0,
                urandom: File::open("/dev/urandom").ok(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers a new run owned by `conn`/`sink`, returning its entry (the
    /// token is `entry.token()`).
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &self,
        conn: u64,
        sink: Arc<dyn FrameSink>,
        id: &str,
        events_wanted: bool,
        limit: Duration,
        replay_budget: usize,
        max_tracked: usize,
    ) -> Result<Arc<RunEntry>, RegisterError> {
        let mut inner = self.lock();
        if inner.by_conn.contains_key(&(conn, id.to_string())) {
            return Err(RegisterError::DuplicateId);
        }
        if inner.entries.len() >= max_tracked && !evict_oldest_finished(&mut inner) {
            return Err(RegisterError::Full);
        }
        inner.next_token += 1;
        let counter = inner.next_token;
        let token = format!("run-{:x}-{}", counter, hex(&token_nonce(&mut inner)));
        let entry = Arc::new(RunEntry {
            token: token.clone(),
            id: id.to_string(),
            cancel: CancelToken::new(),
            limit,
            events_wanted,
            state: Mutex::new(EntryState {
                owner: Some(Owner { conn, sink }),
                replay: ReplayBuffer::new(replay_budget),
                detached_since: None,
                run: RunState::Queued,
                grace_cancelled: false,
                watchdog_cancelled: false,
            }),
            send: Mutex::new(()),
        });
        inner.by_conn.insert((conn, id.to_string()), token.clone());
        inner.entries.insert(token, entry.clone());
        Ok(entry)
    }

    /// Forgets a just-registered run whose admission was shed.
    pub fn unregister(&self, conn: u64, entry: &RunEntry) {
        let mut inner = self.lock();
        inner.entries.remove(entry.token());
        inner.by_conn.remove(&(conn, entry.id().to_string()));
    }

    /// The run the cancel op addresses as `(conn, id)`, if any.
    pub fn resolve(&self, conn: u64, id: &str) -> Option<Arc<RunEntry>> {
        let inner = self.lock();
        let token = inner.by_conn.get(&(conn, id.to_string()))?;
        inner.entries.get(token).cloned()
    }

    /// Detaches every run owned by `conn` (connection teardown).  The runs
    /// keep executing; returns how many were detached.
    pub fn detach_conn(&self, conn: u64, now: Instant) -> usize {
        let entries: Vec<Arc<RunEntry>> = {
            let mut inner = self.lock();
            inner.by_conn.retain(|(c, _), _| *c != conn);
            inner.entries.values().cloned().collect()
        };
        entries
            .iter()
            .filter(|entry| entry.detach_if_owned_by(conn, now))
            .count()
    }

    /// Re-attaches the run behind `token` to `conn`/`sink`: sends the
    /// acknowledgement `make_ack(id, frames_to_replay, finished)` builds,
    /// then the `make_gap(id, from, to)` marker when eviction already
    /// claimed part of the requested range, then every journaled frame
    /// after `last_seq` — and only then lets live emits through to the new
    /// owner.
    ///
    /// Ownership is last-wins: if another connection still holds the run it
    /// is silently detached — the token is the capability.  The one refusal
    /// besides an unknown token: a connection whose `(conn, id)` cancel
    /// route already addresses a *different* run cannot resume this one —
    /// re-pointing the route would orphan that run ([`ResumeError::IdConflict`]).
    #[allow(clippy::too_many_arguments)]
    pub fn resume(
        &self,
        token: &str,
        conn: u64,
        sink: Arc<dyn FrameSink>,
        last_seq: u64,
        now: Instant,
        make_ack: impl FnOnce(&str, usize, bool) -> Json,
        make_gap: impl FnOnce(&str, u64, u64) -> Json,
    ) -> Result<Resumed, ResumeError> {
        let entry = {
            let mut inner = self.lock();
            let entry = inner
                .entries
                .get(token)
                .cloned()
                .ok_or(ResumeError::UnknownToken)?;
            let route = (conn, entry.id().to_string());
            if inner.by_conn.get(&route).is_some_and(|t| t != token) {
                return Err(ResumeError::IdConflict);
            }
            inner.by_conn.retain(|_, t| t != token);
            inner.by_conn.insert(route, token.to_string());
            entry
        };
        // Claim the send lock for the whole replay: live emits queue behind
        // it, so the new owner sees ack-then-journal-then-live with no
        // interleaving or duplication.  The state lock is only held to
        // snapshot the journal and swap the owner — never across a write —
        // so the reaper (and everyone else who needs only state) is never
        // stalled by the socket.
        let _send = entry.send.lock().unwrap_or_else(|p| p.into_inner());
        let (Replay { gap, frames }, finished) = {
            let mut state = entry.lock();
            let replay = state.replay.replay_from(last_seq);
            let finished = matches!(state.run, RunState::Finished { .. });
            // Attach before writing: frames journaled while the replay is in
            // flight snapshot the new owner and queue behind the send lock,
            // keeping the merged stream in sequence order.
            state.owner = Some(Owner {
                conn,
                sink: Arc::clone(&sink),
            });
            state.detached_since = None;
            (replay, finished)
        };
        let mut delivered = sink.send_frame(&make_ack(entry.id(), frames.len(), finished));
        if delivered {
            if let Some((from, to)) = gap {
                delivered = sink.send_frame(&make_gap(entry.id(), from, to));
            }
        }
        let mut replayed = 0usize;
        if delivered {
            for frame in &frames {
                if !sink.send_frame(frame) {
                    delivered = false;
                    break;
                }
                replayed += 1;
            }
        }
        if !delivered {
            let mut state = entry.lock();
            if state.owner.as_ref().is_some_and(|owner| owner.conn == conn) {
                state.owner = None;
                state.detached_since = Some(now);
            }
        }
        drop(_send);
        Ok(Resumed {
            entry,
            gap,
            replayed,
            finished,
        })
    }

    /// Frees the `(conn, id)` cancel-routing slot of a finished run so the
    /// client may reuse the id; the entry itself stays resumable by token
    /// until retention expires.
    pub fn release_id(&self, entry: &RunEntry) {
        let mut inner = self.lock();
        inner.by_conn.retain(|_, t| t != entry.token());
    }

    /// Cancels every unfinished run (the drain coordinator's hard stop).
    pub fn cancel_all(&self) {
        let entries: Vec<Arc<RunEntry>> = self.lock().entries.values().cloned().collect();
        for entry in entries {
            if !entry.is_finished() {
                entry.cancel.cancel();
            }
        }
    }

    /// One reaper sweep: cancels watchdog-overrun runs, cancels detached
    /// runs whose grace expired, and removes finished runs past retention.
    pub fn reap(
        &self,
        now: Instant,
        watchdog_grace: Duration,
        disconnect_grace: Duration,
        retention: Duration,
    ) -> ReapReport {
        let entries: Vec<Arc<RunEntry>> = self.lock().entries.values().cloned().collect();
        let mut report = ReapReport::default();
        let mut expired: Vec<String> = Vec::new();
        for entry in &entries {
            let mut state = entry.lock();
            match state.run {
                RunState::Running { started } => {
                    if now.saturating_duration_since(started) > entry.limit + watchdog_grace
                        && !state.watchdog_cancelled
                    {
                        state.watchdog_cancelled = true;
                        entry.cancel.cancel();
                        report.watchdog_cancels += 1;
                    }
                }
                RunState::Finished { at } => {
                    if now.saturating_duration_since(at) >= retention {
                        expired.push(entry.token.clone());
                    }
                    continue;
                }
                RunState::Queued => {}
            }
            if let Some(since) = state.detached_since {
                if now.saturating_duration_since(since) >= disconnect_grace
                    && !state.grace_cancelled
                {
                    state.grace_cancelled = true;
                    entry.cancel.cancel();
                    report.grace_cancels += 1;
                }
            }
        }
        if !expired.is_empty() {
            let mut inner = self.lock();
            for token in &expired {
                if inner.entries.remove(token).is_some() {
                    report.removed += 1;
                }
            }
            inner.by_conn.retain(|_, t| !expired.contains(t));
        }
        report
    }

    /// How many runs are currently tracked (queued, running, or retained).
    pub fn tracked(&self) -> usize {
        self.lock().entries.len()
    }
}

/// Removes the longest-finished entry to make room; `false` when nothing is
/// finished (the registry is genuinely full of live runs).
fn evict_oldest_finished(inner: &mut Inner) -> bool {
    let mut oldest: Option<(String, Instant)> = None;
    for (token, entry) in &inner.entries {
        if let RunState::Finished { at } = entry.lock().run {
            if oldest.as_ref().is_none_or(|(_, t)| at < *t) {
                oldest = Some((token.clone(), at));
            }
        }
    }
    match oldest {
        Some((token, _)) => {
            inner.entries.remove(&token);
            inner.by_conn.retain(|_, t| *t != token);
            true
        }
        None => false,
    }
}

/// A fresh 128-bit token nonce from the OS CSPRNG.
///
/// `/dev/urandom` is the source of record: its output is unpredictable and
/// non-invertible, so one client's token says nothing about anyone else's.
/// Only if the device is unreadable (a platform without it, a broken
/// chroot) does this degrade to a best-effort local mix — still unique per
/// token, but *not* a cryptographic capability; real deployments run where
/// the CSPRNG exists.
fn token_nonce(inner: &mut Inner) -> [u8; 16] {
    let mut nonce = [0u8; 16];
    if let Some(urandom) = inner.urandom.as_mut() {
        if urandom.read_exact(&mut nonce).is_ok() {
            return nonce;
        }
        // A once-good handle that now fails will keep failing: drop it.
        inner.urandom = None;
    }
    let clock = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let local = &nonce as *const _ as u64; // ASLR-dependent
    let a = splitmix64(clock ^ inner.next_token.rotate_left(32));
    let b = splitmix64(a ^ (std::process::id() as u64) ^ local.rotate_left(17));
    nonce[..8].copy_from_slice(&a.to_le_bytes());
    nonce[8..].copy_from_slice(&b.to_le_bytes());
    nonce
}

/// Lower-case hex of `bytes`.
fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// SplitMix64: cheap, well-mixed *statistical* spread without external
/// crates — retry-hint jitter in [`crate::admission`], and the degraded
/// no-CSPRNG fallback above.  It is an invertible bijection, so it must
/// never be the sole defence of anything secret.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that records frames and can be switched dead.
    struct TestSink {
        frames: Mutex<Vec<Json>>,
        alive: std::sync::atomic::AtomicBool,
    }

    impl TestSink {
        fn new() -> Arc<TestSink> {
            Arc::new(TestSink {
                frames: Mutex::new(Vec::new()),
                alive: std::sync::atomic::AtomicBool::new(true),
            })
        }

        fn kill(&self) {
            self.alive.store(false, std::sync::atomic::Ordering::SeqCst);
        }

        fn seqs(&self) -> Vec<u64> {
            self.frames
                .lock()
                .unwrap()
                .iter()
                .filter_map(|f| f.get("seq").and_then(Json::as_usize).map(|s| s as u64))
                .collect()
        }
    }

    impl FrameSink for TestSink {
        fn send_frame(&self, frame: &Json) -> bool {
            if !self.alive.load(std::sync::atomic::Ordering::SeqCst) {
                return false;
            }
            self.frames.lock().unwrap().push(frame.clone());
            true
        }
    }

    fn event(seq: u64, n: usize) -> Json {
        Json::obj([("seq", Json::Num(seq as f64)), ("n", Json::Num(n as f64))])
    }

    fn register(
        registry: &RunRegistry,
        conn: u64,
        sink: &Arc<TestSink>,
        id: &str,
    ) -> Arc<RunEntry> {
        registry
            .register(
                conn,
                sink.clone() as Arc<dyn FrameSink>,
                id,
                true,
                Duration::from_secs(5),
                1 << 16,
                64,
            )
            .expect("register")
    }

    #[test]
    fn detach_keeps_the_run_alive_and_resume_replays_the_gap() {
        let registry = RunRegistry::new();
        let sink = TestSink::new();
        let entry = register(&registry, 1, &sink, "job");
        let now = Instant::now();
        entry.mark_started(now);
        for n in 0..3 {
            assert!(entry.emit(now, |seq| event(seq, n)).delivered);
        }
        // Connection dies; the run is detached, not cancelled.
        assert_eq!(registry.detach_conn(1, now), 1);
        assert!(entry.is_detached());
        assert!(!entry.cancel_token().is_cancelled());
        // Events emitted while detached are journaled silently.
        for n in 3..6 {
            let emitted = entry.emit(now, |seq| event(seq, n));
            assert!(!emitted.delivered);
            assert!(!emitted.detached);
        }
        entry.finish(now, |seq| event(seq, 6));
        // A fresh connection resumes from the last frame it saw (seq 2).
        let sink2 = TestSink::new();
        let resumed = registry
            .resume(
                "no-such-token",
                2,
                sink2.clone(),
                2,
                now,
                |_, _, _| Json::Null,
                |_, _, _| Json::Null,
            )
            .err();
        assert_eq!(resumed, Some(ResumeError::UnknownToken));
        let resumed = registry
            .resume(
                entry.token(),
                2,
                sink2.clone(),
                2,
                now,
                |_, _, _| Json::Null,
                |_, _, _| Json::Null,
            )
            .expect("resume");
        assert!(resumed.finished);
        assert!(resumed.gap.is_none());
        assert_eq!(resumed.replayed, 5);
        assert_eq!(sink2.seqs(), vec![3, 4, 5, 6, 7]);
        // The client-id index follows the resume: conn 2 can cancel, conn 1
        // cannot.
        assert!(registry.resolve(2, "job").is_some());
        assert!(registry.resolve(1, "job").is_none());
    }

    #[test]
    fn dead_owner_detaches_on_emit_and_send_failures_do_not_lose_frames() {
        let registry = RunRegistry::new();
        let sink = TestSink::new();
        let entry = register(&registry, 1, &sink, "job");
        let now = Instant::now();
        assert!(entry.emit(now, |seq| event(seq, 0)).delivered);
        sink.kill();
        let emitted = entry.emit(now, |seq| event(seq, 1));
        assert!(!emitted.delivered);
        assert!(emitted.detached);
        assert!(entry.is_detached());
        // The frame that failed to send is still journaled for resumers.
        let sink2 = TestSink::new();
        let resumed = registry
            .resume(
                entry.token(),
                2,
                sink2.clone(),
                1,
                now,
                |_, _, _| Json::Null,
                |_, _, _| Json::Null,
            )
            .expect("resume");
        assert_eq!(resumed.replayed, 1);
        assert_eq!(sink2.seqs(), vec![2]);
    }

    #[test]
    fn reaper_enforces_grace_watchdog_and_retention() {
        let registry = RunRegistry::new();
        let sink = TestSink::new();
        let entry = register(&registry, 1, &sink, "job");
        let t0 = Instant::now();
        entry.mark_started(t0);
        registry.detach_conn(1, t0);
        let grace = Duration::from_secs(10);
        let retention = Duration::from_secs(60);
        let wgrace = Duration::from_secs(2);
        // Inside the grace window: untouched.
        let report = registry.reap(t0 + Duration::from_secs(5), wgrace, grace, retention);
        assert_eq!(report, ReapReport::default());
        assert!(!entry.cancel_token().is_cancelled());
        // Past the grace window: cancelled exactly once.
        let report = registry.reap(t0 + Duration::from_secs(11), wgrace, grace, retention);
        assert_eq!(report.grace_cancels, 1);
        assert!(entry.cancel_token().is_cancelled());
        let report = registry.reap(t0 + Duration::from_secs(12), wgrace, grace, retention);
        assert_eq!(report.grace_cancels, 0);
        // The run finishes (cancelled runs still produce a terminal frame);
        // after retention it is removed.
        entry.finish(t0 + Duration::from_secs(12), |seq| event(seq, 0));
        assert_eq!(registry.tracked(), 1);
        let report = registry.reap(
            t0 + Duration::from_secs(12) + retention,
            wgrace,
            grace,
            retention,
        );
        assert_eq!(report.removed, 1);
        assert_eq!(registry.tracked(), 0);

        // Watchdog: a running entry past limit + grace is cancelled once.
        let entry = register(&registry, 2, &sink, "job2");
        entry.mark_started(t0);
        let report = registry.reap(t0 + Duration::from_secs(8), wgrace, grace, retention);
        assert_eq!(report.watchdog_cancels, 1);
        assert!(entry.cancel_token().is_cancelled());
    }

    #[test]
    fn duplicate_ids_and_full_registries_are_refused_but_finished_runs_yield() {
        let registry = RunRegistry::new();
        let sink = TestSink::new();
        let now = Instant::now();
        let reg = |conn: u64, id: &str, cap: usize| {
            registry.register(
                conn,
                sink.clone() as Arc<dyn FrameSink>,
                id,
                false,
                Duration::from_secs(5),
                1 << 16,
                cap,
            )
        };
        let first = reg(1, "a", 2).expect("first");
        assert_eq!(reg(1, "a", 2).err(), Some(RegisterError::DuplicateId));
        // Same id from another connection is fine (ids are per-connection).
        let _second = reg(2, "a", 2).expect("second");
        // At capacity with both runs live: refused.
        assert_eq!(reg(3, "c", 2).err(), Some(RegisterError::Full));
        // Finishing one makes room: the finished run is evicted.
        first.finish(now, |seq| event(seq, 0));
        assert!(reg(3, "c", 2).is_ok());
        assert!(registry.resolve(1, "a").is_none(), "evicted run unindexed");
    }

    #[test]
    fn tokens_are_unpredictable_capabilities() {
        // Two registries issuing the same counter sequence must disagree on
        // every token: the nonce comes from the OS CSPRNG, not from any
        // function of the counter — so holding one token helps mint no
        // other.
        let a = RunRegistry::new();
        let b = RunRegistry::new();
        let sink = TestSink::new();
        let mut seen = std::collections::HashSet::new();
        for i in 0..16 {
            let ta = register(&a, 1, &sink, &format!("a{i}")).token().to_string();
            let tb = register(&b, 1, &sink, &format!("b{i}")).token().to_string();
            assert_ne!(ta, tb, "same counter, different registry, same token");
            assert!(seen.insert(ta.clone()), "token reuse: {ta}");
            assert!(seen.insert(tb.clone()), "token reuse: {tb}");
            // Shape: run-<counter hex>-<128-bit nonce as 32 hex digits>.
            let nonce = ta.rsplit('-').next().unwrap();
            assert_eq!(nonce.len(), 32, "short nonce in {ta}");
            assert!(nonce.chars().all(|c| c.is_ascii_hexdigit()), "{ta}");
        }
    }

    #[test]
    fn resume_is_refused_when_the_id_routes_to_another_run() {
        let registry = RunRegistry::new();
        let sink1 = TestSink::new();
        let run_a = register(&registry, 1, &sink1, "job");
        // Connection 2 has its own active run under the same client-chosen
        // id: resuming A from connection 2 would re-point (2, "job") and
        // orphan B's cancel route.
        let sink2 = TestSink::new();
        let run_b = register(&registry, 2, &sink2, "job");
        let now = Instant::now();
        let refused = registry
            .resume(
                run_a.token(),
                2,
                sink2.clone(),
                0,
                now,
                |_, _, _| Json::Null,
                |_, _, _| Json::Null,
            )
            .err();
        assert_eq!(refused, Some(ResumeError::IdConflict));
        // B's route is intact and A is untouched (still owned by conn 1).
        let resolved = registry.resolve(2, "job").expect("b still routed");
        assert_eq!(resolved.token(), run_b.token());
        assert!(!run_a.is_detached());
        // The same connection that already routes to A may re-resume it.
        registry
            .resume(
                run_a.token(),
                1,
                sink1.clone(),
                0,
                now,
                |_, _, _| Json::Null,
                |_, _, _| Json::Null,
            )
            .expect("same-route resume");
    }

    #[test]
    fn resume_is_last_wins_between_competing_connections() {
        let registry = RunRegistry::new();
        let sink1 = TestSink::new();
        let entry = register(&registry, 1, &sink1, "job");
        let now = Instant::now();
        entry.emit(now, |seq| event(seq, 0));
        // A second connection presents the token while the first is still
        // attached: the token wins, the old connection stops receiving.
        let sink2 = TestSink::new();
        registry
            .resume(
                entry.token(),
                2,
                sink2.clone(),
                0,
                now,
                |_, _, _| Json::Null,
                |_, _, _| Json::Null,
            )
            .expect("resume");
        entry.emit(now, |seq| event(seq, 1));
        assert_eq!(sink1.seqs(), vec![1]);
        assert_eq!(sink2.seqs(), vec![1, 2]);
    }
}
