//! The bounded per-run replay buffer behind reconnect-and-resume.
//!
//! Every frame a run produces for its client (streamed `event`s and the
//! terminal `result`/`error`) is journaled here with a sequence number drawn
//! from one [`Sequencer`], so the stream has a transport-independent
//! identity: a client that saw frames `1..=k` before its connection died
//! resumes with `last_seq = k` and receives exactly `k+1..` — first from the
//! buffer, then live.
//!
//! The buffer is byte-budgeted.  When journaled frames outgrow the budget
//! the *oldest* are evicted, and the eviction is remembered: a resumer whose
//! `last_seq` predates the oldest retained frame gets an explicit gap marker
//! (`from..=to` of the missing numbers) instead of a silent hole.  The most
//! recently appended frame is never evicted, whatever its size — in
//! particular the terminal result, appended last, always survives for late
//! resumers.

use std::collections::VecDeque;

use hanoi::Sequencer;
use hanoi_lang::json::Json;

/// One journaled frame.
#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    frame: Json,
    cost: usize,
}

/// What a replay request produced: an optional leading gap, then the
/// retained frames after `last_seq`.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// `Some((from, to))` when frames `from..=to` were evicted before the
    /// resumer asked for them.
    pub gap: Option<(u64, u64)>,
    /// The retained frames with sequence numbers greater than `last_seq`,
    /// in order.
    pub frames: Vec<Json>,
}

/// A sequence-numbering, byte-budgeted journal of one run's reply frames.
#[derive(Debug)]
pub struct ReplayBuffer {
    entries: VecDeque<Entry>,
    bytes: usize,
    budget: usize,
    sequencer: Sequencer,
    /// Highest sequence number evicted for space (0 = none yet).
    evicted_through: u64,
}

impl ReplayBuffer {
    /// An empty buffer holding at most `budget` rendered bytes.
    pub fn new(budget: usize) -> ReplayBuffer {
        ReplayBuffer {
            entries: VecDeque::new(),
            bytes: 0,
            budget: budget.max(1),
            sequencer: Sequencer::new(),
            evicted_through: 0,
        }
    }

    /// Journals the frame built by `make` (called with the frame's assigned
    /// sequence number), evicting oldest frames past the byte budget, and
    /// returns `(seq, frame)` for live delivery.
    pub fn append(&mut self, make: impl FnOnce(u64) -> Json) -> (u64, Json) {
        let seq = self.sequencer.issue();
        let frame = make(seq);
        let cost = frame.render().len();
        self.entries.push_back(Entry {
            seq,
            frame: frame.clone(),
            cost,
        });
        self.bytes += cost;
        // Never evict the newest entry: over-budget singletons (e.g. a huge
        // terminal result) are kept whole rather than lost.
        while self.bytes > self.budget && self.entries.len() > 1 {
            let evicted = self.entries.pop_front().expect("len > 1");
            self.bytes -= evicted.cost;
            self.evicted_through = evicted.seq;
        }
        (seq, frame)
    }

    /// The frames a client that last saw `last_seq` still needs, with an
    /// explicit gap marker when eviction already claimed some of them.
    pub fn replay_from(&self, last_seq: u64) -> Replay {
        let gap = if self.evicted_through > last_seq {
            Some((last_seq + 1, self.evicted_through))
        } else {
            None
        };
        let frames = self
            .entries
            .iter()
            .filter(|entry| entry.seq > last_seq)
            .map(|entry| entry.frame.clone())
            .collect();
        Replay { gap, frames }
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.sequencer.next_seq()
    }

    /// Journaled bytes currently retained.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Retained frame count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64, payload: &str) -> Json {
        Json::obj([
            ("seq", Json::Num(seq as f64)),
            ("payload", Json::Str(payload.to_string())),
        ])
    }

    #[test]
    fn appends_number_consecutively_and_replay_resumes_mid_stream() {
        let mut buffer = ReplayBuffer::new(1 << 20);
        for i in 0..5 {
            let (seq, _) = buffer.append(|seq| frame(seq, &format!("e{i}")));
            assert_eq!(seq, i + 1);
        }
        assert_eq!(buffer.next_seq(), 6);
        let replay = buffer.replay_from(2);
        assert!(replay.gap.is_none());
        let seqs: Vec<u64> = replay
            .frames
            .iter()
            .map(|f| f.get("seq").and_then(Json::as_usize).unwrap() as u64)
            .collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        // From the very start, and from beyond the end.
        assert_eq!(buffer.replay_from(0).frames.len(), 5);
        assert!(buffer.replay_from(5).frames.is_empty());
    }

    #[test]
    fn byte_budget_evicts_oldest_and_marks_the_gap() {
        // Small budget: roughly three frames fit.
        let cost = frame(1, "x".repeat(40).as_str()).render().len();
        let mut buffer = ReplayBuffer::new(cost * 3 + cost / 2);
        for _ in 0..10 {
            buffer.append(|seq| frame(seq, "x".repeat(40).as_str()));
        }
        assert!(buffer.len() < 10, "budget never evicted");
        assert!(buffer.bytes() <= cost * 3 + cost / 2);
        let replay = buffer.replay_from(0);
        let (from, to) = replay.gap.expect("evictions must surface as a gap");
        assert_eq!(from, 1);
        let first_retained = replay.frames[0]
            .get("seq")
            .and_then(Json::as_usize)
            .unwrap() as u64;
        assert_eq!(
            to + 1,
            first_retained,
            "gap must end where retention begins"
        );
        // Everything retained is contiguous through the final frame.
        let seqs: Vec<u64> = replay
            .frames
            .iter()
            .map(|f| f.get("seq").and_then(Json::as_usize).unwrap() as u64)
            .collect();
        assert_eq!(
            seqs,
            (first_retained..=10).collect::<Vec<u64>>(),
            "retained frames must be contiguous"
        );
        // A resumer already past the gap sees no gap marker.
        assert!(buffer.replay_from(to).gap.is_none());
    }

    #[test]
    fn the_newest_frame_always_survives() {
        let mut buffer = ReplayBuffer::new(8); // smaller than any frame
        for i in 0..4 {
            buffer.append(|seq| frame(seq, &format!("payload-{i}")));
        }
        assert_eq!(buffer.len(), 1, "only the newest frame is retained");
        let replay = buffer.replay_from(0);
        assert_eq!(replay.gap, Some((1, 3)));
        assert_eq!(
            replay.frames[0].get("seq").and_then(Json::as_usize),
            Some(4)
        );
    }
}
