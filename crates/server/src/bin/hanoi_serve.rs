//! The production server binary: a bounded, fault-isolated TCP front end
//! over one long-lived inference engine, with signal-driven graceful drain
//! and SIGHUP-driven hot config reload.
//!
//! ```text
//! hanoi_serve [--addr HOST:PORT] [--workers N] [--queue N] [--quota N]
//!             [--rate PER_SEC] [--burst N] [--grace-secs N]
//!             [--config FILE] [--parallelism N] [--warm-dir DIR]
//!             [--watchdog-secs N] [--drain-secs N] [--max-conns N]
//!             [--proxy-protocol] [--chaos]
//! ```
//!
//! SIGTERM or SIGINT triggers a graceful drain: stop admitting, finish (or
//! cancel) in-flight runs, checkpoint warm-start snapshots into
//! `--warm-dir`, exit.  SIGHUP re-reads `--config` (a flat JSON object of
//! tunables — see [`hanoi_server::Tunables::overlaid`]) and swaps the
//! operational tunables atomically, without dropping in-flight runs.
//! `--chaos` enables the fault-injection protocol directives used by
//! `hanoi_stress` — never enable it in production.  `--proxy-protocol`
//! expects every connection to open with a PROXY protocol v1 header (as
//! sent by HAProxy/nginx) and attributes rate limits and quotas to the
//! advertised source address instead of the proxy's own — required for
//! per-client fairness behind a reverse proxy, and only safe when the
//! listener is reachable exclusively from that proxy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use hanoi::EngineConfig;
use hanoi_server::{Server, ServerConfig};

/// Flipped by the signal handler; polled by the drain watcher thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Flipped by SIGHUP; polled by the same watcher, which runs the reload.
static RELOAD: AtomicBool = AtomicBool::new(false);

const SIGHUP: i32 = 1;
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// libc `signal(2)` — raw FFI, as the container ships no signal crate.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// The handler bodies are one atomic store each: async-signal-safe.
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

extern "C" fn on_reload(_signum: i32) {
    RELOAD.store(true, Ordering::Relaxed);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let number = |name: &str| value(name).and_then(|v| v.parse::<usize>().ok());

    let addr = value("--addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7077".to_string());
    let mut engine = EngineConfig::default().with_parallelism(number("--parallelism").unwrap_or(1));
    if let Some(dir) = value("--warm-dir") {
        engine = engine.with_warm_start_dir(dir);
        // Boot-time store inventory: how much warmth this process can draw
        // on, and whether legacy monolithic snapshots await migration.
        match hanoi_store::ChunkStore::open(dir) {
            Ok(store) => {
                let stats = store.stats();
                eprintln!(
                    "hanoi-serve: warm store {dir}: {} manifest(s), {} chunk(s), {} byte(s)",
                    stats.manifests,
                    stats.chunks,
                    stats.total_bytes()
                );
                if stats.legacy_snapshots > 0 {
                    eprintln!(
                        "hanoi-serve: {} legacy monolithic snapshot(s) in {dir}; \
                         run `hanoi-store migrate {dir}` to chunk them",
                        stats.legacy_snapshots
                    );
                }
            }
            Err(e) => {
                // The engine degrades to cold starts either way; say why.
                eprintln!("hanoi-serve: warm store {dir} unavailable: {e}");
            }
        }
    }
    let mut config = ServerConfig::default()
        .with_workers(number("--workers").unwrap_or(2))
        .with_chaos(flag("--chaos"))
        .with_proxy_protocol(flag("--proxy-protocol"))
        .with_engine(engine);
    if let Some(queue) = number("--queue") {
        config = config.with_max_queue_depth(queue);
    }
    if let Some(quota) = number("--quota") {
        config = config.with_per_client_quota(quota);
    }
    if let Some(rate) = value("--rate").and_then(|v| v.parse::<f64>().ok()) {
        let burst = value("--burst")
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(16.0);
        config = config.with_rate_limit(rate, burst);
    }
    if let Some(secs) = number("--grace-secs") {
        config = config.with_disconnect_grace(Duration::from_secs(secs as u64));
    }
    if let Some(path) = value("--config") {
        config = config.with_config_path(path);
    }
    if let Some(secs) = number("--watchdog-secs") {
        config = config.with_watchdog(Duration::from_secs(secs as u64));
    }
    if let Some(secs) = number("--drain-secs") {
        config = config.with_drain_timeout(Duration::from_secs(secs as u64));
    }
    if let Some(conns) = number("--max-conns") {
        config = config.with_max_connections(conns);
    }

    // Panics are expected under chaos (and survivable always): keep the log
    // one line per incident instead of a default multi-line report.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("hanoi-serve: isolated panic: {info}");
    }));

    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGHUP, on_reload as *const () as usize);
    }

    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("hanoi-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("hanoi-serve: listening on {}", server.local_addr());
    let handle = server.handle();
    let watcher_handle = handle.clone();
    std::thread::spawn(move || loop {
        if SHUTDOWN.load(Ordering::Relaxed) {
            eprintln!("hanoi-serve: signal received, draining");
            watcher_handle.drain();
            return;
        }
        if RELOAD.swap(false, Ordering::Relaxed) {
            match watcher_handle.reload_from_file() {
                Ok(tunables) => {
                    eprintln!("hanoi-serve: reloaded tunables: {}", tunables.render());
                }
                Err(e) => {
                    // A bad reload keeps the previous tunables in force.
                    eprintln!("hanoi-serve: reload failed ({}): {}", e.code, e.message);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    });

    match server.serve() {
        Ok(snapshots) => {
            eprintln!("hanoi-serve: drained, wrote {snapshots} warm-start snapshot(s)");
        }
        Err(e) => {
            eprintln!("hanoi-serve: drain checkpoint failed: {e}");
            std::process::exit(1);
        }
    }
}
