//! Stress and chaos harness for `hanoi-server`.
//!
//! ```text
//! hanoi_stress --spawn [--mode stress|chaos|both] [--clients N]
//!              [--requests N] [--out BENCH_verification.json]
//! hanoi_stress --addr HOST:PORT [--mode stress] [...]
//! ```
//!
//! With `--spawn` the harness runs a chaos-enabled server in-process
//! (including a deliberately corrupted warm-start directory at boot, to
//! exercise snapshot quarantine) and asserts the full robustness contract:
//!
//! * **stress** — many concurrent clients hammer the server with
//!   inference runs, honouring `retry_after_ms` backoff when shed;
//!   round-trip latency lands in a p50/p95/p99 histogram.  An overload
//!   burst at 2× the admission budget must produce `shed` replies carrying
//!   `retry_after_ms`.
//! * **chaos** — malformed / truncated / oversized / non-UTF-8 / over-deep
//!   frames, mid-frame disconnects, slow-loris writers, cancel storms and
//!   injected worker panics, interleaved with well-formed requests that
//!   must keep working; completed answers are verified against direct
//!   [`Engine`] runs.
//! * **resume equivalence** — for several benchmark problems, a run whose
//!   client is forcibly disconnected at assorted stream offsets and
//!   resumed by token must produce the identical result over a contiguous,
//!   gap-free sequence-numbered stream — indistinguishable from an
//!   uninterrupted run.
//! * **reconnect storm** — ≥50 concurrent clients each rip their socket
//!   out mid-stream at a client-specific offset, reconnect, resume, and
//!   verify the merged stream; end-to-end latency (including the
//!   disconnect) lands in its own histogram.
//! * **reload** — a SIGHUP raised mid-stress re-reads the config file and
//!   turns on a token-bucket rate limit; the new limit must shed an
//!   immediate volley with `rate-limited` hints while a run in flight
//!   across the swap completes untouched.
//! * **drain** — a protocol-level `drain` must checkpoint warm-start
//!   snapshots, and a fresh engine booted from them must report
//!   `warm_start_loads > 0`.
//!
//! Any violated expectation is reported on stderr and the process exits
//! non-zero.  With `--out`, the measurements are merged into the given
//! JSON report under a `server_stress` key (other keys are preserved).

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use hanoi::{Engine, EngineConfig, RunOptions};
use hanoi_abstraction::Problem;
use hanoi_bench::latency::LatencyHistogram;
use hanoi_lang::json::{self, Json};
use hanoi_server::{Server, ServerConfig, ServerHandle};

/// Flipped by the SIGHUP handler; the reload phase polls it to prove the
/// signal actually arrived before running the reload.
static HUP: AtomicBool = AtomicBool::new(false);

const SIGHUP: i32 = 1;

extern "C" {
    /// libc `signal(2)`/`raise(3)` — raw FFI, as the container ships no
    /// signal crate.
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

extern "C" fn on_hup(_signum: i32) {
    HUP.store(true, Ordering::Relaxed);
}

/// A named chaos scenario: a closure probing one failure mode of the server.
type Scenario<'a> = Box<dyn Fn() -> Result<(), String> + 'a>;

/// A problem cheap enough to run hundreds of times under stress.
const TRIVIAL: &str = r#"
    type nat = O | S of nat
    interface I = sig
      type t
      val make : t
    end
    module M : I = struct
      type t = nat
      let make : t = O
    end
    spec (s : t) = s == s
"#;

/// A problem with a real (non-trivial) invariant, for answer verification.
const LIST_SET: &str = r#"
    type nat = O | S of nat
    type list = Nil | Cons of nat * list

    interface SET = sig
      type t
      val empty : t
      val insert : t -> nat -> t
      val delete : t -> nat -> t
      val lookup : t -> nat -> bool
    end

    module ListSet : SET = struct
      type t = list
      let empty : t = Nil
      let rec lookup (l : t) (x : nat) : bool =
        match l with
        | Nil -> False
        | Cons (hd, tl) -> hd == x || lookup tl x
        end
      let insert (l : t) (x : nat) : t =
        if lookup l x then l else Cons (x, l)
      let rec delete (l : t) (x : nat) : t =
        match l with
        | Nil -> Nil
        | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
        end
    end

    spec (s : t) (i : nat) =
      not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
"#;

// ---------------------------------------------------------------------------
// Protocol client
// ---------------------------------------------------------------------------

struct Client {
    reader: BufReader<TcpStream>,
    /// Answers that arrived while waiting for a different id (runs finish
    /// in completion order, not submission order).
    parked: std::collections::HashMap<String, Json>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            reader: BufReader::new(stream),
            parked: std::collections::HashMap::new(),
        })
    }

    fn send(&mut self, frame: &Json) -> std::io::Result<()> {
        json::write_frame(self.reader.get_mut(), frame)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.reader.get_mut().write_all(bytes)?;
        self.reader.get_mut().flush()
    }

    fn read_frame(&mut self) -> std::io::Result<Json> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return json::parse(trimmed)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()));
        }
    }

    /// Reads frames until the `result` or `error` frame for `id` arrives
    /// (skipping `accepted` acks and streamed events).  A `shed` frame for
    /// `id` is returned as-is.  Answers for *other* ids are parked, not
    /// dropped — pipelined runs complete in whatever order the workers
    /// finish them.
    fn wait_answer(&mut self, id: &str) -> std::io::Result<Json> {
        if let Some(frame) = self.parked.remove(id) {
            return Ok(frame);
        }
        loop {
            let frame = self.read_frame()?;
            let reply = frame.get("reply").and_then(Json::as_str).unwrap_or("");
            let frame_id = frame.get("id").and_then(Json::as_str).unwrap_or("");
            match reply {
                "result" | "error" | "shed" if frame_id == id => return Ok(frame),
                "result" | "error" | "shed" if !frame_id.is_empty() => {
                    self.parked.insert(frame_id.to_string(), frame);
                }
                _ => continue,
            }
        }
    }
}

fn streaming_submit_frame(id: &str, source: &str, sleep_ms: Option<u64>) -> Json {
    let mut fields = vec![
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str(id.to_string())),
        ("source", Json::Str(source.to_string())),
        ("events", Json::Bool(true)),
    ];
    if let Some(ms) = sleep_ms {
        fields.push((
            "chaos",
            Json::obj([
                ("kind", Json::Str("sleep".to_string())),
                ("ms", Json::Num(ms as f64)),
            ]),
        ));
    }
    Json::obj(fields)
}

fn resume_frame(token: &str, last_seq: u64) -> Json {
    Json::obj([
        ("op", Json::Str("resume".to_string())),
        ("token", Json::Str(token.to_string())),
        ("last_seq", Json::Num(last_seq as f64)),
    ])
}

fn submit_frame(id: &str, source: &str) -> Json {
    Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str(id.to_string())),
        ("source", Json::Str(source.to_string())),
    ])
}

fn chaos_submit_frame(id: &str, source: &str, kind: &str, ms: u64) -> Json {
    let chaos = if kind == "sleep" {
        Json::obj([
            ("kind", Json::Str("sleep".to_string())),
            ("ms", Json::Num(ms as f64)),
        ])
    } else {
        Json::obj([("kind", Json::Str(kind.to_string()))])
    };
    Json::obj([
        ("op", Json::Str("submit".to_string())),
        ("id", Json::Str(id.to_string())),
        ("source", Json::Str(source.to_string())),
        ("chaos", chaos),
    ])
}

fn op_frame(op: &str) -> Json {
    Json::obj([("op", Json::Str(op.to_string()))])
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Report {
    latency: LatencyHistogram,
    accepted: u64,
    shed: u64,
    overload_submitted: u64,
    overload_accepted: u64,
    overload_shed: u64,
    chaos_scenarios: u64,
    violations: Vec<String>,
    drain_snapshots: Option<usize>,
    restart_warm_loads: Option<u64>,
    /// Benchmark problems proven disconnect/resume-equivalent.
    equivalence_sources: u64,
    /// Reconnect storm: clients, successful resumes, forced disconnects,
    /// and end-to-end latency across the disconnect.
    storm_clients: u64,
    storm_resumed: u64,
    storm_disconnects: u64,
    storm_latency: LatencyHistogram,
    /// Reload phase: config reloads applied and rate-limit sheds observed.
    reloads_applied: u64,
    rate_limited_sheds: u64,
}

impl Report {
    fn violation(&mut self, message: impl Into<String>) {
        let message = message.into();
        eprintln!("VIOLATION: {message}");
        self.violations.push(message);
    }

    fn summary(&mut self, clients: usize, requests: usize) -> Json {
        Json::obj([
            ("clients", Json::Num(clients as f64)),
            ("requests_per_client", Json::Num(requests as f64)),
            ("latency", self.latency.summary()),
            ("accepted", Json::Num(self.accepted as f64)),
            ("shed", Json::Num(self.shed as f64)),
            (
                "overload",
                Json::obj([
                    ("submitted", Json::Num(self.overload_submitted as f64)),
                    ("accepted", Json::Num(self.overload_accepted as f64)),
                    ("shed", Json::Num(self.overload_shed as f64)),
                ]),
            ),
            ("chaos_scenarios", Json::Num(self.chaos_scenarios as f64)),
            (
                "resume_equivalence",
                Json::obj([("sources", Json::Num(self.equivalence_sources as f64))]),
            ),
            (
                "resume_storm",
                Json::obj([
                    ("clients", Json::Num(self.storm_clients as f64)),
                    ("resumed", Json::Num(self.storm_resumed as f64)),
                    (
                        "forced_disconnects",
                        Json::Num(self.storm_disconnects as f64),
                    ),
                    ("latency", self.storm_latency.summary()),
                ]),
            ),
            (
                "reload",
                Json::obj([
                    ("reloads_applied", Json::Num(self.reloads_applied as f64)),
                    (
                        "rate_limited_sheds",
                        Json::Num(self.rate_limited_sheds as f64),
                    ),
                ]),
            ),
            ("violations", Json::Num(self.violations.len() as f64)),
            (
                "drain_snapshots",
                match self.drain_snapshots {
                    Some(n) => Json::Num(n as f64),
                    None => Json::Null,
                },
            ),
            (
                "restart_warm_loads",
                match self.restart_warm_loads {
                    Some(n) => Json::Num(n as f64),
                    None => Json::Null,
                },
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Stress phase
// ---------------------------------------------------------------------------

/// One client worker: `requests` sequential submits, honouring shed
/// backoff.  Returns `(latencies, accepted, shed, violations)`.
fn stress_client(
    addr: &str,
    who: usize,
    requests: usize,
) -> (Vec<Duration>, u64, u64, Vec<String>) {
    let mut latencies = Vec::new();
    let mut accepted = 0u64;
    let mut shed = 0u64;
    let mut violations = Vec::new();
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => return (latencies, 0, 0, vec![format!("client {who}: connect: {e}")]),
    };
    for request in 0..requests {
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 200 {
                violations.push(format!("client {who}: request {request} never accepted"));
                break;
            }
            let id = format!("c{who}-r{request}-a{attempts}");
            let started = Instant::now();
            if let Err(e) = client.send(&submit_frame(&id, TRIVIAL)) {
                violations.push(format!("client {who}: send: {e}"));
                return (latencies, accepted, shed, violations);
            }
            let answer = match client.wait_answer(&id) {
                Ok(answer) => answer,
                Err(e) => {
                    violations.push(format!("client {who}: read: {e}"));
                    return (latencies, accepted, shed, violations);
                }
            };
            match answer.get("reply").and_then(Json::as_str) {
                Some("shed") => {
                    shed += 1;
                    let backoff = answer
                        .get("retry_after_ms")
                        .and_then(Json::as_usize)
                        .unwrap_or(0);
                    if backoff == 0 {
                        violations.push(format!("client {who}: shed without retry_after_ms hint"));
                    }
                    std::thread::sleep(Duration::from_millis((backoff as u64).clamp(1, 500)));
                }
                Some("result") => {
                    accepted += 1;
                    latencies.push(started.elapsed());
                    let status = answer.get("status").and_then(Json::as_str).unwrap_or("");
                    if status != "invariant" {
                        violations.push(format!(
                            "client {who}: trivial run ended `{status}`, expected an invariant"
                        ));
                    }
                    break;
                }
                other => {
                    violations.push(format!(
                        "client {who}: unexpected answer {:?} to a well-formed submit",
                        other
                    ));
                    break;
                }
            }
        }
    }
    (latencies, accepted, shed, violations)
}

fn stress_phase(addr: &str, clients: usize, requests: usize, report: &Mutex<Report>) {
    let results: Vec<(Vec<Duration>, u64, u64, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|who| scope.spawn(move || stress_client(addr, who, requests)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut report = report.lock().unwrap();
    for (latencies, accepted, shed, violations) in results {
        for sample in latencies {
            report.latency.record(sample);
        }
        report.accepted += accepted;
        report.shed += shed;
        for violation in violations {
            report.violation(violation);
        }
    }
}

/// Fires ~2× the admission budget at the server at once (sleep-chaos runs
/// keep the workers busy so the queue genuinely fills) and checks that
/// overload produces `shed` replies carrying backoff hints.
fn overload_phase(addr: &str, budget: usize, quota: usize, report: &Mutex<Report>) {
    let target = 2 * budget;
    let client_count = target.div_ceil(quota);
    let results: Vec<(u64, u64, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..client_count)
            .map(|who| {
                scope.spawn(move || {
                    let mut accepted_ids = Vec::new();
                    let mut accepted = 0u64;
                    let mut shed = 0u64;
                    let mut violations = Vec::new();
                    let mut client = match Client::connect(addr) {
                        Ok(client) => client,
                        Err(e) => return (0, 0, vec![format!("overload {who}: connect: {e}")]),
                    };
                    // Pipeline a full quota without waiting: worst-case burst.
                    for i in 0..quota {
                        let id = format!("o{who}-{i}");
                        let frame = chaos_submit_frame(&id, TRIVIAL, "sleep", 150);
                        if let Err(e) = client.send(&frame) {
                            violations.push(format!("overload {who}: send: {e}"));
                            return (accepted, shed, violations);
                        }
                    }
                    let mut pending = 0usize;
                    for _ in 0..quota {
                        let frame = match client.read_frame() {
                            Ok(frame) => frame,
                            Err(e) => {
                                violations.push(format!("overload {who}: read: {e}"));
                                return (accepted, shed, violations);
                            }
                        };
                        match frame.get("reply").and_then(Json::as_str) {
                            Some("accepted") => {
                                accepted += 1;
                                pending += 1;
                                if let Some(id) = frame.get("id").and_then(Json::as_str) {
                                    accepted_ids.push(id.to_string());
                                }
                            }
                            Some("shed") => {
                                shed += 1;
                                if frame
                                    .get("retry_after_ms")
                                    .and_then(Json::as_usize)
                                    .unwrap_or(0)
                                    == 0
                                {
                                    violations.push(format!(
                                        "overload {who}: shed without retry_after_ms"
                                    ));
                                }
                            }
                            other => violations.push(format!(
                                "overload {who}: unexpected reply {other:?} to a burst submit"
                            )),
                        }
                    }
                    // Wait the accepted runs out so the server quiesces.
                    for id in accepted_ids.iter().take(pending) {
                        if client.wait_answer(id).is_err() {
                            violations.push(format!("overload {who}: lost the answer to {id}"));
                            break;
                        }
                    }
                    (accepted, shed, violations)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut report = report.lock().unwrap();
    for (accepted, shed, violations) in results {
        report.overload_submitted += quota as u64;
        report.overload_accepted += accepted;
        report.overload_shed += shed;
        for violation in violations {
            report.violation(violation);
        }
    }
    if report.overload_shed == 0 {
        report.violation(format!(
            "overload at 2x budget ({target} submits) produced no shed replies"
        ));
    }
}

// ---------------------------------------------------------------------------
// Durability phases: resume equivalence, reconnect storm, hot reload
// ---------------------------------------------------------------------------

/// Reads sequenced frames (`event`/`result`/`error`) into `frames`,
/// tracking the last seen sequence number.  Returns `Ok(true)` at the
/// terminal frame, `Ok(false)` after `limit` frames on this leg.  A `gap`
/// frame is a violation: no phase here journals enough to evict.
fn read_sequenced(
    client: &mut Client,
    frames: &mut Vec<Json>,
    last_seq: &mut u64,
    limit: Option<usize>,
) -> Result<bool, String> {
    let mut read_here = 0usize;
    loop {
        if let Some(limit) = limit {
            if read_here >= limit {
                return Ok(false);
            }
        }
        let frame = client.read_frame().map_err(|e| format!("read: {e}"))?;
        match frame.get("reply").and_then(Json::as_str) {
            Some("event") | Some("result") | Some("error") => {
                if let Some(seq) = frame.get("seq").and_then(Json::as_usize) {
                    *last_seq = seq as u64;
                }
                let terminal = frame.get("reply").and_then(Json::as_str) != Some("event");
                frames.push(frame);
                read_here += 1;
                if terminal {
                    return Ok(true);
                }
            }
            Some("gap") => return Err(format!("unexpected gap: {}", frame.render())),
            Some("shed") => return Err(format!("unexpectedly shed: {}", frame.render())),
            _ => continue, // accepted / resumed acks
        }
    }
}

/// Waits for this id's admission verdict: `Ok(token)` or `Err(backoff_ms)`.
fn wait_admission(client: &mut Client, id: &str) -> Result<Result<String, u64>, String> {
    loop {
        let frame = client.read_frame().map_err(|e| format!("read: {e}"))?;
        let frame_id = frame.get("id").and_then(Json::as_str).unwrap_or("");
        match frame.get("reply").and_then(Json::as_str) {
            Some("accepted") if frame_id == id => {
                let token = frame
                    .get("token")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("accepted without a token: {}", frame.render()))?;
                return Ok(Ok(token.to_string()));
            }
            Some("shed") if frame_id == id => {
                let backoff = frame
                    .get("retry_after_ms")
                    .and_then(Json::as_usize)
                    .unwrap_or(0) as u64;
                if backoff == 0 {
                    return Err("shed without a retry_after_ms hint".to_string());
                }
                return Ok(Err(backoff));
            }
            Some("error") if frame_id == id => return Err(format!("rejected: {}", frame.render())),
            _ => continue,
        }
    }
}

/// Checks the frames form one complete run stream — sequence numbers
/// exactly `1..=n`, ending in a terminal frame — and returns the terminal.
fn check_contiguous(frames: &[Json], what: &str) -> Result<Json, String> {
    if frames.is_empty() {
        return Err(format!("{what}: empty stream"));
    }
    for (i, frame) in frames.iter().enumerate() {
        match frame.get("seq").and_then(Json::as_usize) {
            Some(seq) if seq == i + 1 => {}
            _ => {
                return Err(format!(
                    "{what}: hole or duplicate at position {i}: {}",
                    frame.render()
                ))
            }
        }
    }
    let last = frames.last().unwrap();
    match last.get("reply").and_then(Json::as_str) {
        Some("result") | Some("error") => Ok(last.clone()),
        _ => Err(format!("{what}: stream has no terminal frame")),
    }
}

/// One uninterrupted streamed run: the reference stream.
fn run_uninterrupted(addr: &str, id: &str, source: &str) -> Result<Vec<Json>, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .send(&streaming_submit_frame(id, source, None))
        .map_err(|e| format!("send: {e}"))?;
    let mut frames = Vec::new();
    let mut last_seq = 0u64;
    read_sequenced(&mut client, &mut frames, &mut last_seq, None)?;
    Ok(frames)
}

/// The same run chopped up: the socket is ripped out after each offset's
/// worth of frames, then a fresh connection resumes by token from the last
/// seen sequence number.  Returns the merged stream and the disconnects
/// actually forced.
fn run_interrupted(
    addr: &str,
    id: &str,
    source: &str,
    offsets: &[usize],
    sleep_ms: u64,
) -> Result<(Vec<Json>, usize), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .send(&streaming_submit_frame(id, source, Some(sleep_ms)))
        .map_err(|e| format!("send: {e}"))?;
    let token = match wait_admission(&mut client, id)? {
        Ok(token) => token,
        Err(_) => return Err("interrupted run was shed".to_string()),
    };
    let mut frames = Vec::new();
    let mut last_seq = 0u64;
    let mut disconnects = 0usize;
    for &offset in offsets {
        if read_sequenced(&mut client, &mut frames, &mut last_seq, Some(offset))? {
            return Ok((frames, disconnects)); // finished before this cut
        }
        drop(client); // mid-stream, no goodbye
        disconnects += 1;
        std::thread::sleep(Duration::from_millis(25));
        client = Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
        client
            .send(&resume_frame(&token, last_seq))
            .map_err(|e| format!("resume: {e}"))?;
    }
    read_sequenced(&mut client, &mut frames, &mut last_seq, None)?;
    Ok((frames, disconnects))
}

/// Disconnect/resume equivalence over three benchmark problems: the merged
/// stream must carry the identical terminal answer over a contiguous
/// sequence, for cut offsets that land on different parts of each stream.
fn resume_equivalence_phase(addr: &str, report: &Mutex<Report>) {
    let third = hanoi_benchmarks::find("/other/sized-list").expect("known benchmark id");
    let sources: Vec<(&str, String)> = vec![
        ("trivial", TRIVIAL.to_string()),
        ("list-set", LIST_SET.to_string()),
        ("sized-list", third.source),
    ];
    for (round, (name, source)) in sources.iter().enumerate() {
        let outcome = (|| -> Result<(), String> {
            let baseline = run_uninterrupted(addr, &format!("eq-base-{round}"), source)?;
            let expected = check_contiguous(&baseline, name)?;
            let offsets: &[usize] = match round % 3 {
                0 => &[1, 2],
                1 => &[2, 4],
                _ => &[3],
            };
            let (merged, _) =
                run_interrupted(addr, &format!("eq-chop-{round}"), source, offsets, 80)?;
            let got = check_contiguous(&merged, name)?;
            for key in ["reply", "status", "invariant"] {
                if got.get(key).and_then(Json::as_str) != expected.get(key).and_then(Json::as_str) {
                    return Err(format!(
                        "interrupted run differs on `{key}`: got {}, want {}",
                        got.render(),
                        expected.render()
                    ));
                }
            }
            Ok(())
        })();
        let mut report = report.lock().unwrap();
        match outcome {
            Ok(()) => report.equivalence_sources += 1,
            Err(e) => report.violation(format!("resume-equivalence {name}: {e}")),
        }
    }
}

/// One storm client: submit (honouring shed backoff), rip the socket out
/// at a client-specific stream offset — twice for every fifth client —
/// resume, and verify the merged stream.  Returns (end-to-end latency
/// across the disconnects, forced disconnects).
fn storm_client(addr: &str, who: usize) -> Result<(Duration, usize), String> {
    let id = format!("storm-{who}");
    let sleep_ms = 30 + (who as u64 * 7) % 50;
    let started = Instant::now();
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut attempts = 0;
    let token = loop {
        attempts += 1;
        if attempts > 200 {
            return Err("never admitted".to_string());
        }
        client
            .send(&streaming_submit_frame(&id, TRIVIAL, Some(sleep_ms)))
            .map_err(|e| format!("send: {e}"))?;
        match wait_admission(&mut client, &id)? {
            Ok(token) => break token,
            Err(backoff) => std::thread::sleep(Duration::from_millis(backoff.clamp(1, 500))),
        }
    };
    let first_cut = 1 + who % 3;
    let offsets: Vec<usize> = if who.is_multiple_of(5) {
        vec![first_cut, 2]
    } else {
        vec![first_cut]
    };
    let mut frames = Vec::new();
    let mut last_seq = 0u64;
    let mut disconnects = 0usize;
    let mut done = false;
    for &offset in &offsets {
        if read_sequenced(&mut client, &mut frames, &mut last_seq, Some(offset))? {
            done = true;
            break;
        }
        drop(client);
        disconnects += 1;
        std::thread::sleep(Duration::from_millis(10 + (who as u64 * 13) % 40));
        client = Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
        client
            .send(&resume_frame(&token, last_seq))
            .map_err(|e| format!("resume: {e}"))?;
    }
    if !done {
        read_sequenced(&mut client, &mut frames, &mut last_seq, None)?;
    }
    let terminal = check_contiguous(&frames, &id)?;
    if terminal.get("status").and_then(Json::as_str) != Some("invariant") {
        return Err(format!(
            "run across {disconnects} disconnect(s) ended wrong: {}",
            terminal.render()
        ));
    }
    Ok((started.elapsed(), disconnects))
}

/// ≥50 concurrent clients, every one forcibly disconnected mid-stream at a
/// client-specific offset and resumed by token.  Zero tolerance: every
/// merged stream must be contiguous and end in the invariant.
fn resume_storm_phase(addr: &str, clients: usize, report: &Mutex<Report>) {
    let results: Vec<Result<(Duration, usize), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|who| scope.spawn(move || storm_client(addr, who)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut report = report.lock().unwrap();
    report.storm_clients += clients as u64;
    for (who, result) in results.into_iter().enumerate() {
        match result {
            Ok((latency, disconnects)) => {
                report.storm_latency.record(latency);
                report.storm_disconnects += disconnects as u64;
                if disconnects > 0 {
                    report.storm_resumed += 1;
                }
            }
            Err(e) => report.violation(format!("storm client {who}: {e}")),
        }
    }
}

/// SIGHUP mid-stress: the config file grows a token-bucket rate limit, the
/// signal's reload swaps it in atomically, a volley runs into the bucket,
/// and a run in flight across the swap completes untouched.
fn reload_phase(
    addr: &str,
    handle: &ServerHandle,
    config_path: &std::path::Path,
    report: &Mutex<Report>,
) {
    let outcome = (|| -> Result<u64, String> {
        // A run in flight across the swap.
        let mut straddler = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        straddler
            .send(&chaos_submit_frame("straddler", TRIVIAL, "sleep", 600))
            .map_err(|e| format!("send: {e}"))?;

        // The rate limit arrives through the config file, announced by a
        // real SIGHUP (the handler only flips a flag; the reload itself
        // runs here, exactly as hanoi_serve's watcher thread does).
        std::fs::write(config_path, r#"{"rate_per_sec": 4.0, "rate_burst": 2.0}"#)
            .map_err(|e| format!("write config: {e}"))?;
        HUP.store(false, Ordering::Relaxed);
        unsafe {
            raise(SIGHUP);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while !HUP.load(Ordering::Relaxed) {
            if Instant::now() > deadline {
                return Err("SIGHUP was never delivered".to_string());
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let tunables = handle
            .reload_from_file()
            .map_err(|e| format!("reload: {}: {}", e.code, e.message))?;
        if tunables.get("rate_per_sec").and_then(Json::as_f64) != Some(4.0) {
            return Err(format!("reload did not apply: {}", tunables.render()));
        }

        // An immediate 4x-burst volley must run into the bucket.
        let mut volley = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        for i in 0..8 {
            volley
                .send(&submit_frame(&format!("volley-{i}"), TRIVIAL))
                .map_err(|e| format!("send: {e}"))?;
        }
        let mut sheds = 0u64;
        for i in 0..8 {
            let answer = volley
                .wait_answer(&format!("volley-{i}"))
                .map_err(|e| format!("read: {e}"))?;
            if answer.get("reply").and_then(Json::as_str) == Some("shed") {
                if answer.get("reason").and_then(Json::as_str) != Some("rate-limited") {
                    return Err(format!("wrong shed reason: {}", answer.render()));
                }
                if answer
                    .get("retry_after_ms")
                    .and_then(Json::as_usize)
                    .unwrap_or(0)
                    == 0
                {
                    return Err("rate shed without a retry hint".to_string());
                }
                sheds += 1;
            }
        }
        if sheds == 0 {
            return Err("a 4x-burst volley was never rate-limited".to_string());
        }

        // The straddler crossed the swap untouched.
        let answer = straddler
            .wait_answer("straddler")
            .map_err(|e| format!("read: {e}"))?;
        if answer.get("status").and_then(Json::as_str) != Some("invariant") {
            return Err(format!(
                "in-flight run was dropped by the reload: {}",
                answer.render()
            ));
        }
        Ok(sheds)
    })();

    // Always turn the limit back off: the phases that follow assume an
    // unthrottled server, even if this phase failed halfway.
    let _ = std::fs::write(config_path, "{}");
    let restored = handle.reload_from_file().is_ok();

    let mut report = report.lock().unwrap();
    match outcome {
        Ok(sheds) => {
            report.reloads_applied += if restored { 2 } else { 1 };
            report.rate_limited_sheds += sheds;
        }
        Err(e) => report.violation(format!("reload: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Chaos phase
// ---------------------------------------------------------------------------

/// Sends `line` raw and expects a structured error reply with `code`,
/// then proves the stream is still synchronized with a ping.
fn expect_error_then_ping(addr: &str, raw: &[u8], want_code: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client.send_raw(raw).map_err(|e| format!("send: {e}"))?;
    let frame = client.read_frame().map_err(|e| format!("read: {e}"))?;
    let reply = frame.get("reply").and_then(Json::as_str).unwrap_or("");
    let code = frame.get("code").and_then(Json::as_str).unwrap_or("");
    if reply != "error" || code != want_code {
        return Err(format!(
            "expected an `error`/`{want_code}` reply, got `{reply}`/`{code}`"
        ));
    }
    client
        .send(&op_frame("ping"))
        .map_err(|e| format!("ping send: {e}"))?;
    let pong = client.read_frame().map_err(|e| format!("pong read: {e}"))?;
    if pong.get("reply").and_then(Json::as_str) != Some("pong") {
        return Err("stream desynchronized: ping after error did not pong".to_string());
    }
    Ok(())
}

fn scenario_malformed(addr: &str) -> Result<(), String> {
    for (raw, code) in [
        (&b"this is not json\n"[..], "parse"),
        (&b"{\"op\":\n"[..], "parse"),
        (&b"[1,2,3]\n"[..], "bad-request"),
        (&b"{\"op\":\"frobnicate\"}\n"[..], "bad-request"),
        (&b"{\"op\":\"submit\",\"id\":\"x\"}\n"[..], "bad-request"),
        (&b"\xff\xfe garbage \xfa\n"[..], "encoding"),
    ] {
        expect_error_then_ping(addr, raw, code)
            .map_err(|e| format!("input {:?}: {e}", String::from_utf8_lossy(raw)))?;
    }
    // Over-deep nesting: balanced but past the server's depth limit.
    let mut deep = Vec::new();
    deep.extend(std::iter::repeat_n(b'[', 300));
    deep.extend(std::iter::repeat_n(b']', 300));
    deep.push(b'\n');
    expect_error_then_ping(addr, &deep, "parse").map_err(|e| format!("deep nesting: {e}"))
}

fn scenario_oversized(addr: &str, max_frame_bytes: usize) -> Result<(), String> {
    let mut line = vec![b'a'; max_frame_bytes + 64];
    line.push(b'\n');
    expect_error_then_ping(addr, &line, "oversized")
}

fn scenario_mid_frame_disconnect(addr: &str) -> Result<(), String> {
    {
        let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        client
            .send_raw(br#"{"op":"submit","id":"trunc","sour"#)
            .map_err(|e| format!("send: {e}"))?;
        // Connection dropped mid-frame here.
    }
    let mut probe = Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
    probe
        .send(&op_frame("ping"))
        .map_err(|e| format!("ping: {e}"))?;
    let pong = probe.read_frame().map_err(|e| format!("pong: {e}"))?;
    if pong.get("reply").and_then(Json::as_str) != Some("pong") {
        return Err("server unavailable after a mid-frame disconnect".to_string());
    }
    Ok(())
}

/// Writes one byte at a time, slower than the server's frame timeout; the
/// server must cut the connection rather than hold a buffer open forever.
fn scenario_slow_loris(addr: &str, frame_timeout: Duration) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .reader
        .get_mut()
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let deadline = Instant::now() + frame_timeout * 10 + Duration::from_secs(5);
    let mut cut = false;
    while Instant::now() < deadline {
        if client.send_raw(b"{").is_err() {
            cut = true; // write side failed: server closed on us
            break;
        }
        match client.read_frame() {
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                cut = true;
                break;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // still open; keep dripping
            }
            Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                cut = true;
                break;
            }
            Err(e) => return Err(format!("unexpected read error: {e}")),
            Ok(frame) => {
                return Err(format!(
                    "server answered a partial frame: {}",
                    frame.render()
                ))
            }
        }
        std::thread::sleep(frame_timeout / 4);
    }
    if !cut {
        return Err("slow-loris writer was never disconnected".to_string());
    }
    // And the server still serves others.
    let mut probe = Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
    probe
        .send(&op_frame("ping"))
        .map_err(|e| format!("ping: {e}"))?;
    probe.read_frame().map_err(|e| format!("pong: {e}"))?;
    Ok(())
}

fn scenario_panic_isolation(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    // Warm the caches with a clean run first.
    client
        .send(&submit_frame("warm", TRIVIAL))
        .map_err(|e| format!("send: {e}"))?;
    let warm = client
        .wait_answer("warm")
        .map_err(|e| format!("read: {e}"))?;
    if warm.get("status").and_then(Json::as_str) != Some("invariant") {
        return Err("warm-up run failed".to_string());
    }
    // Injected worker panic: the answer is a structured error, not a hang.
    client
        .send(&chaos_submit_frame("boom", TRIVIAL, "panic", 0))
        .map_err(|e| format!("send: {e}"))?;
    let boom = client
        .wait_answer("boom")
        .map_err(|e| format!("read: {e}"))?;
    if boom.get("reply").and_then(Json::as_str) != Some("error")
        || boom.get("code").and_then(Json::as_str) != Some("panic")
    {
        return Err(format!(
            "expected a `panic` error for the injected panic, got {}",
            boom.render()
        ));
    }
    // The process survived, the connection survived, and the problem's warm
    // caches survived (a worker-layer panic never touches them): the next
    // run must not rebuild the value pools.
    client
        .send(&submit_frame("after", TRIVIAL))
        .map_err(|e| format!("send: {e}"))?;
    let after = client
        .wait_answer("after")
        .map_err(|e| format!("read: {e}"))?;
    if after.get("status").and_then(Json::as_str) != Some("invariant") {
        return Err("run after the panic failed".to_string());
    }
    let pool_builds = after
        .get("stats")
        .and_then(|s| s.get("pool_builds"))
        .and_then(Json::as_usize);
    if pool_builds != Some(0) {
        return Err(format!(
            "warm caches lost across the panic: pool_builds = {pool_builds:?}"
        ));
    }
    Ok(())
}

fn scenario_cancel_storm(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let ids: Vec<String> = (0..4).map(|i| format!("storm-{i}")).collect();
    for id in &ids {
        client
            .send(&chaos_submit_frame(id, TRIVIAL, "sleep", 300))
            .map_err(|e| format!("send: {e}"))?;
    }
    for id in &ids {
        let cancel = Json::obj([
            ("op", Json::Str("cancel".to_string())),
            ("id", Json::Str(id.clone())),
        ]);
        client.send(&cancel).map_err(|e| format!("cancel: {e}"))?;
    }
    // Every run must terminate with an answer: accepted ones with a result
    // (cancelled or completed — the race is fair game), shed ones with the
    // shed reply itself.
    for id in &ids {
        let answer = client.wait_answer(id).map_err(|e| format!("answer: {e}"))?;
        let reply = answer.get("reply").and_then(Json::as_str).unwrap_or("");
        if !matches!(reply, "result" | "shed") {
            return Err(format!("run {id} ended with `{reply}`"));
        }
    }
    Ok(())
}

/// Every completed server answer must match a direct engine run bit for
/// bit (same invariant text).
fn scenario_correctness(addr: &str) -> Result<(), String> {
    let engine = Engine::with_defaults();
    for (name, source) in [("trivial", TRIVIAL), ("list-set", LIST_SET)] {
        let problem = Problem::from_source(source).map_err(|e| format!("{name}: {e}"))?;
        let direct = engine.run(&problem, &RunOptions::quick());
        let expect = direct
            .outcome
            .invariant()
            .map(|e| e.to_string())
            .ok_or_else(|| format!("{name}: direct run found no invariant"))?;
        let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let id = format!("verify-{name}");
        client
            .send(&submit_frame(&id, source))
            .map_err(|e| format!("send: {e}"))?;
        let answer = client.wait_answer(&id).map_err(|e| format!("read: {e}"))?;
        let got = answer
            .get("invariant")
            .and_then(Json::as_str)
            .unwrap_or("<none>");
        if got != expect {
            return Err(format!(
                "{name}: server answered `{got}`, direct engine run answered `{expect}`"
            ));
        }
    }
    Ok(())
}

/// The server booted from a corrupted warm-start snapshot: the first runs
/// over that problem must report it quarantined (and still succeed).
fn scenario_quarantine(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .send(&submit_frame("quarantine", TRIVIAL))
        .map_err(|e| format!("send: {e}"))?;
    let answer = client
        .wait_answer("quarantine")
        .map_err(|e| format!("read: {e}"))?;
    if answer.get("status").and_then(Json::as_str) != Some("invariant") {
        return Err(format!(
            "run over the corrupted snapshot failed: {}",
            answer.render()
        ));
    }
    let quarantined = answer
        .get("stats")
        .and_then(|s| s.get("warm_start_quarantined"))
        .and_then(Json::as_usize)
        .unwrap_or(0);
    if quarantined == 0 {
        return Err("corrupted snapshot was not quarantined".to_string());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Drain + report plumbing
// ---------------------------------------------------------------------------

fn merge_into_bench_report(path: &str, section: Json) -> Result<(), String> {
    let mut root = match std::fs::read_to_string(path) {
        Ok(text) => json::parse(&text).map_err(|e| format!("{path}: {e}"))?,
        Err(e) if e.kind() == ErrorKind::NotFound => Json::obj([]),
        Err(e) => return Err(format!("{path}: {e}")),
    };
    match &mut root {
        Json::Obj(map) => {
            map.insert("server_stress".to_string(), section);
        }
        _ => return Err(format!("{path}: top level is not an object")),
    }
    std::fs::write(path, root.render_pretty() + "\n").map_err(|e| format!("{path}: {e}"))
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hanoi-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let number = |name: &str, default: usize| {
        value(name)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(default)
    };

    let spawn = flag("--spawn");
    let clients = number("--clients", 100);
    let storm_clients = number("--storm-clients", 50);
    let requests = number("--requests", 3);
    let mode = value("--mode").map(String::as_str).unwrap_or("both");
    let run_stress = matches!(mode, "stress" | "both");
    let run_chaos = matches!(mode, "chaos" | "both");
    let out = value("--out").cloned();

    // Quiet one-line panic log: injected chaos panics are expected noise.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("hanoi-stress: isolated panic: {info}");
    }));

    // Spawn an in-process server (chaos-enabled, small budgets so overload
    // is reachable, short frame timeout so slow-loris is testable) — or
    // target an external one.
    let workers = 2;
    let queue_depth = 8;
    let quota = 4;
    let max_frame_bytes = 32 * 1024;
    let frame_timeout = Duration::from_millis(700);
    let mut report = Mutex::new(Report::default());

    let (addr, server_ctx) = if spawn {
        let warm_dir = scratch_dir("warm");
        // Hot-reload source: a flat tunables overlay, empty at boot.
        let cfg_dir = scratch_dir("cfg");
        let tunables_path = cfg_dir.join("tunables.json");
        std::fs::write(&tunables_path, "{}").expect("seed tunables file");
        unsafe {
            signal(SIGHUP, on_hup as *const () as usize);
        }
        // Corrupt warm-start store at boot: write a real chunked snapshot
        // for the trivial problem, then garble every chunk file in place —
        // each garbled chunk fails its content-address re-hash and is
        // quarantined individually at restore.
        {
            let engine = Engine::new(EngineConfig::default().with_warm_start_dir(&warm_dir))
                .expect("engine config");
            let problem = Problem::from_source(TRIVIAL).expect("trivial problem");
            let run = engine.run(&problem, &RunOptions::quick());
            assert!(run.is_success(), "seed run failed: {}", run.outcome);
            engine
                .save_state_to_warm_dir()
                .expect("seed warm-start save");
            let mut garbled = 0;
            for entry in std::fs::read_dir(warm_dir.join("chunks")).expect("read chunks dir") {
                let path = entry.expect("dir entry").path();
                if path.extension().and_then(|e| e.to_str()) == Some("json") {
                    std::fs::write(&path, b"{ truncated garbage").expect("garble");
                    garbled += 1;
                }
            }
            assert!(garbled > 0, "no chunk to garble");
        }
        let config = ServerConfig::default()
            .with_workers(workers)
            .with_max_queue_depth(queue_depth)
            .with_per_client_quota(quota)
            .with_max_frame_bytes(max_frame_bytes)
            .with_frame_timeout(frame_timeout)
            .with_drain_timeout(Duration::from_secs(10))
            .with_watchdog(Duration::from_secs(30))
            .with_config_path(&tunables_path)
            .with_chaos(true)
            .with_engine(EngineConfig::default().with_warm_start_dir(&warm_dir));
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        (
            handle.addr().to_string(),
            Some((handle, join, warm_dir, cfg_dir, tunables_path)),
        )
    } else {
        let addr = value("--addr").cloned().unwrap_or_else(|| {
            eprintln!("hanoi-stress: need --spawn or --addr HOST:PORT");
            std::process::exit(2);
        });
        (addr, None)
    };
    eprintln!("hanoi-stress: target {addr} (mode: {mode})");

    if spawn && run_chaos {
        // Must run before anything else touches the trivial problem: the
        // quarantine happens when its engine cache entry is first created.
        report.get_mut().unwrap().chaos_scenarios += 1;
        if let Err(e) = scenario_quarantine(&addr) {
            report
                .get_mut()
                .unwrap()
                .violation(format!("quarantine: {e}"));
        }
    }

    if run_stress {
        eprintln!("hanoi-stress: stress phase ({clients} clients x {requests} requests)");
        stress_phase(&addr, clients, requests, &report);
        if spawn {
            eprintln!("hanoi-stress: overload burst (2x admission budget)");
            overload_phase(&addr, workers + queue_depth, quota, &report);
        }
        eprintln!("hanoi-stress: resume equivalence (3 benchmark problems)");
        resume_equivalence_phase(&addr, &report);
        eprintln!("hanoi-stress: reconnect storm ({storm_clients} clients, forced disconnects)");
        resume_storm_phase(&addr, storm_clients, &report);
    }

    if let Some((handle, _, _, _, tunables_path)) = server_ctx.as_ref() {
        eprintln!("hanoi-stress: SIGHUP reload mid-stress (rate limit on, volley, rate limit off)");
        reload_phase(&addr, handle, tunables_path, &report);
    }

    if run_chaos {
        let scenarios: Vec<(&str, Scenario<'_>)> = vec![
            ("malformed", Box::new(|| scenario_malformed(&addr))),
            (
                "mid-frame-disconnect",
                Box::new(|| scenario_mid_frame_disconnect(&addr)),
            ),
            ("cancel-storm", Box::new(|| scenario_cancel_storm(&addr))),
            (
                "panic-isolation",
                Box::new(|| scenario_panic_isolation(&addr)),
            ),
            ("correctness", Box::new(|| scenario_correctness(&addr))),
        ];
        for (name, scenario) in &scenarios {
            eprintln!("hanoi-stress: chaos scenario `{name}`");
            let mut r = report.lock().unwrap();
            r.chaos_scenarios += 1;
            drop(r);
            if let Err(e) = scenario() {
                report.lock().unwrap().violation(format!("{name}: {e}"));
            }
        }
        if spawn {
            for (name, result) in [
                ("oversized", scenario_oversized(&addr, max_frame_bytes)),
                ("slow-loris", scenario_slow_loris(&addr, frame_timeout)),
            ] {
                eprintln!("hanoi-stress: chaos scenario `{name}`");
                let mut r = report.lock().unwrap();
                r.chaos_scenarios += 1;
                match result {
                    Ok(()) => {}
                    Err(e) => r.violation(format!("{name}: {e}")),
                }
            }
        }
    }

    // Drain the spawned server through the protocol and prove the
    // warm-start checkpoint landed.
    if let Some((handle, join, warm_dir, cfg_dir, _)) = server_ctx {
        eprintln!("hanoi-stress: draining");
        match Client::connect(&addr) {
            Ok(mut client) => {
                if client.send(&op_frame("drain")).is_err() {
                    report.get_mut().unwrap().violation("drain request failed");
                }
            }
            Err(e) => report
                .get_mut()
                .unwrap()
                .violation(format!("drain connect: {e}")),
        }
        match handle.wait_drained(Duration::from_secs(60)) {
            Some(snapshots) => {
                let report = report.get_mut().unwrap();
                report.drain_snapshots = Some(snapshots);
                if snapshots == 0 {
                    report.violation("drain wrote no warm-start snapshots");
                }
            }
            None => report.get_mut().unwrap().violation("drain timed out"),
        }
        match join.join() {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => report
                .get_mut()
                .unwrap()
                .violation(format!("serve returned an error: {e}")),
            Err(_) => report
                .get_mut()
                .unwrap()
                .violation("server thread panicked"),
        }
        // A fresh engine must boot warm from the drained snapshots.
        let engine = Engine::new(EngineConfig::default().with_warm_start_dir(&warm_dir))
            .expect("engine config");
        let problem = Problem::from_source(TRIVIAL).expect("trivial problem");
        let restarted = engine.run(&problem, &RunOptions::quick());
        let report = report.get_mut().unwrap();
        report.restart_warm_loads = Some(restarted.stats.warm_start_loads);
        if restarted.stats.warm_start_loads == 0 {
            report.violation("restart after drain found no warm-start snapshots to load");
        }
        let _ = std::fs::remove_dir_all(&warm_dir);
        let _ = std::fs::remove_dir_all(&cfg_dir);
    }

    // Report.
    let mut report = report.into_inner().unwrap();
    let section = report.summary(clients, requests);
    println!("{}", section.render_pretty());
    if let Some(path) = out {
        match merge_into_bench_report(&path, section) {
            Ok(()) => eprintln!("hanoi-stress: wrote `server_stress` section to {path}"),
            Err(e) => {
                report.violation(format!("report: {e}"));
            }
        }
    }
    if report.violations.is_empty() {
        eprintln!(
            "hanoi-stress: OK ({} accepted, {} shed, {} chaos scenario(s))",
            report.accepted + report.overload_accepted,
            report.shed + report.overload_shed,
            report.chaos_scenarios
        );
    } else {
        eprintln!(
            "hanoi-stress: FAILED with {} violation(s)",
            report.violations.len()
        );
        std::process::exit(1);
    }
}
