//! The wire protocol: newline-delimited JSON frames.
//!
//! Every frame is one line: a JSON object, no embedded newlines, terminated
//! by `\n`.  Client → server frames carry an `"op"`; server → client frames
//! carry a `"reply"`.  The protocol is deliberately boring — its interesting
//! property is that *no* input, however malformed, produces anything but a
//! structured `error` reply (or a closed connection for transport-level
//! defects): parsing failures never panic and never desynchronize the frame
//! stream.
//!
//! # Requests
//!
//! | op       | fields                                                  |
//! |----------|---------------------------------------------------------|
//! | `submit` | `id`, `source`, `options?`, `events?`, `chaos?`         |
//! | `cancel` | `id`                                                    |
//! | `resume` | `token`, `last_seq?`                                    |
//! | `stats`  | —                                                       |
//! | `ping`   | —                                                       |
//! | `drain`  | —                                                       |
//! | `reload` | —                                                       |
//!
//! `options` is an object of per-run overrides: `quick` (bool, default
//! `true`), `mode` (a [`Mode`] label), `synth` (a [`SynthChoice`] label),
//! `timeout_ms`, `max_iterations`.  `chaos` is a fault-injection directive
//! (see [`ChaosDirective`]) honoured only when the server runs with chaos
//! enabled.  `resume` re-attaches to a run by the server-issued token from
//! its `accepted` frame; `last_seq` (default 0) is the highest `seq` the
//! client already received, and the server replays everything after it.
//! `reload` re-reads the server's config file and hot-swaps the tunables.
//!
//! # Replies
//!
//! `accepted` (with the run `token`), `shed` (with `retry_after_ms`),
//! `event` and `result` (each carrying the run's `seq`), `gap` (journaled
//! frames evicted before replay), `resumed`, `reloaded`, `error`, `pong`,
//! `stats`, `draining`, `cancelled` — built by the `*_frame` functions
//! below, which are the single source of truth for the reply shapes.

use std::time::Duration;

use hanoi::{Mode, Outcome, RunEvent, RunOptions, RunResult, SynthChoice};
use hanoi_lang::json::Json;

/// Protocol revision, reported in `stats` replies.  Version 2 added run
/// tokens, sequence-numbered streams, `resume`, and `reload`.
pub const PROTOCOL_VERSION: u64 = 2;

/// A structured protocol failure, reported to the client as an `error`
/// frame instead of ever tearing down the connection or the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable code (`parse`, `bad-request`, `oversized`,
    /// `encoding`, `bad-problem`, `panic`, `chaos-disabled`, `busy`,
    /// `unknown-token`, `reload-unavailable`, `reload-failed`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// Creates an error.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtocolError {
            code,
            message: message.into(),
        }
    }
}

/// One parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit an inference run.  Boxed: the payload (source text plus
    /// options) dwarfs every other variant.
    Submit(Box<SubmitRequest>),
    /// Cancel an in-flight run of this connection.
    Cancel {
        /// The run id given at submit time.
        id: String,
    },
    /// Re-attach to a (possibly still running) run by its server-issued
    /// token, replaying the stream after `last_seq`.
    Resume {
        /// The token from the run's `accepted` frame.
        token: String,
        /// The highest `seq` the client already received (0 = replay all).
        last_seq: u64,
    },
    /// Report server statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Start a graceful drain of the whole server.
    Drain,
    /// Re-read the server's config file and hot-swap the tunables.
    Reload,
}

/// A `submit` request: one inference run.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Client-chosen run id, unique among this connection's in-flight runs.
    pub id: String,
    /// The problem source text.
    pub source: String,
    /// Per-run options (already validated).
    pub options: RunOptions,
    /// Stream [`RunEvent`]s to the client as `event` frames.
    pub events: bool,
    /// Fault injection (test harness only).
    pub chaos: Option<ChaosDirective>,
}

/// A fault-injection directive, honoured only when the server was started
/// with chaos enabled ([`crate::ServerConfig::enable_chaos`]).  Directives
/// fire on the *worker* thread, before the run proper — they simulate
/// defects in the service layer itself, the kind panic isolation exists
/// for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosDirective {
    /// Panic on the worker thread.
    Panic,
    /// Sleep this many milliseconds (occupies a worker; exercises the
    /// watchdog and the shedding path).
    Sleep(u64),
}

/// Why a submit was shed instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    QueueFull,
    /// The client exceeded its in-flight quota.
    ClientQuota,
    /// The client exceeded its submit rate (token bucket empty).
    RateLimited,
    /// The server is draining and admits no new work.
    Draining,
}

impl ShedReason {
    /// The wire label.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::ClientQuota => "client-quota",
            ShedReason::RateLimited => "rate-limited",
            ShedReason::Draining => "draining",
        }
    }
}

/// The `id` field of a frame, when present — used to tag error replies for
/// requests that failed before full parsing.
pub fn request_id(json: &Json) -> Option<&str> {
    json.get("id").and_then(Json::as_str)
}

/// Parses one client frame into a [`Request`].
pub fn parse_request(json: &Json) -> Result<Request, ProtocolError> {
    let bad = |message: String| ProtocolError::new("bad-request", message);
    if !matches!(json, Json::Obj(_)) {
        return Err(bad("a frame must be a JSON object".to_string()));
    }
    let op = json
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field `op`".to_string()))?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        "reload" => Ok(Request::Reload),
        "resume" => {
            let token = json
                .get("token")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("`resume` requires a string `token`".to_string()))?;
            if token.is_empty() {
                return Err(bad("`token` must be non-empty".to_string()));
            }
            let last_seq = match json.get("last_seq") {
                None | Some(Json::Null) => 0,
                Some(v) => v
                    .as_usize()
                    .ok_or_else(|| bad("`last_seq` must be a non-negative integer".to_string()))?
                    as u64,
            };
            Ok(Request::Resume {
                token: token.to_string(),
                last_seq,
            })
        }
        "cancel" => {
            let id = json
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("`cancel` requires a string `id`".to_string()))?;
            Ok(Request::Cancel { id: id.to_string() })
        }
        "submit" => parse_submit(json).map(|submit| Request::Submit(Box::new(submit))),
        other => Err(bad(format!("unknown op `{other}`"))),
    }
}

fn parse_submit(json: &Json) -> Result<SubmitRequest, ProtocolError> {
    let bad = |message: String| ProtocolError::new("bad-request", message);
    let id = json
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`submit` requires a string `id`".to_string()))?;
    if id.is_empty() {
        return Err(bad("`id` must be non-empty".to_string()));
    }
    let source = json
        .get("source")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`submit` requires a string `source`".to_string()))?;
    let events = json.get("events").and_then(Json::as_bool).unwrap_or(false);
    let options = parse_options(json.get("options"))?;
    let chaos = match json.get("chaos") {
        None | Some(Json::Null) => None,
        Some(directive) => Some(parse_chaos(directive)?),
    };
    Ok(SubmitRequest {
        id: id.to_string(),
        source: source.to_string(),
        options,
        events,
        chaos,
    })
}

fn parse_chaos(json: &Json) -> Result<ChaosDirective, ProtocolError> {
    let bad = |message: String| ProtocolError::new("bad-request", message);
    let kind = json
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`chaos` requires a string `kind`".to_string()))?;
    match kind {
        "panic" => Ok(ChaosDirective::Panic),
        "sleep" => {
            let ms = json
                .get("ms")
                .and_then(Json::as_usize)
                .ok_or_else(|| bad("`chaos: sleep` requires a numeric `ms`".to_string()))?;
            Ok(ChaosDirective::Sleep(ms as u64))
        }
        other => Err(bad(format!("unknown chaos kind `{other}`"))),
    }
}

/// Inverse of [`Mode::label`].
fn mode_from_label(label: &str) -> Option<Mode> {
    Mode::all().into_iter().find(|m| m.label() == label)
}

fn parse_options(json: Option<&Json>) -> Result<RunOptions, ProtocolError> {
    let bad = |message: String| ProtocolError::new("bad-request", message);
    let Some(json) = json else {
        return Ok(RunOptions::quick());
    };
    if !matches!(json, Json::Obj(_)) {
        return Err(bad("`options` must be an object".to_string()));
    }
    let mut options = if json.get("quick").and_then(Json::as_bool) == Some(false) {
        RunOptions::paper()
    } else {
        RunOptions::quick()
    };
    if let Some(label) = json.get("mode").and_then(Json::as_str) {
        options.mode =
            mode_from_label(label).ok_or_else(|| bad(format!("unknown mode `{label}`")))?;
    }
    if let Some(label) = json.get("synth").and_then(Json::as_str) {
        options.synthesizer = SynthChoice::from_label(label)
            .ok_or_else(|| bad(format!("unknown synthesizer `{label}`")))?;
    }
    if let Some(ms) = json.get("timeout_ms").and_then(Json::as_usize) {
        options.timeout = Some(Duration::from_millis(ms as u64));
    }
    if let Some(n) = json.get("max_iterations").and_then(Json::as_usize) {
        options.max_iterations = n;
    }
    options
        .validate()
        .map_err(|e| bad(format!("invalid options: {e}")))?;
    Ok(options)
}

// ---------------------------------------------------------------------------
// Reply frames
// ---------------------------------------------------------------------------

/// A run was admitted: `queued` is the queue depth it joined at and
/// `token` is the durable handle a `resume` presents after a disconnect.
pub fn accepted_frame(id: &str, queued: usize, token: &str) -> Json {
    Json::obj([
        ("reply", Json::Str("accepted".to_string())),
        ("id", Json::Str(id.to_string())),
        ("queued", Json::Num(queued as f64)),
        ("token", Json::Str(token.to_string())),
    ])
}

/// A run was shed; the client should back off `retry_after_ms` before
/// retrying.
pub fn shed_frame(id: &str, reason: ShedReason, retry_after_ms: u64) -> Json {
    Json::obj([
        ("reply", Json::Str("shed".to_string())),
        ("id", Json::Str(id.to_string())),
        ("reason", Json::Str(reason.label().to_string())),
        ("retry_after_ms", Json::Num(retry_after_ms as f64)),
    ])
}

/// A structured error, optionally tied to a run id.
pub fn error_frame(error: &ProtocolError, id: Option<&str>) -> Json {
    Json::obj([
        ("reply", Json::Str("error".to_string())),
        ("code", Json::Str(error.code.to_string())),
        ("message", Json::Str(error.message.clone())),
        (
            "id",
            match id {
                Some(id) => Json::Str(id.to_string()),
                None => Json::Null,
            },
        ),
    ])
}

/// Reply to `ping`.
pub fn pong_frame() -> Json {
    Json::obj([("reply", Json::Str("pong".to_string()))])
}

/// Reply to `stats`: server counters plus live queue/engine gauges, the
/// currently published tunables, and the tracked-run gauge.
pub fn stats_frame(
    server: Json,
    cached_problems: usize,
    queued: usize,
    active: usize,
    draining: bool,
    tunables: Json,
    tracked_runs: usize,
) -> Json {
    Json::obj([
        ("reply", Json::Str("stats".to_string())),
        ("protocol_version", Json::Num(PROTOCOL_VERSION as f64)),
        ("server", server),
        ("cached_problems", Json::Num(cached_problems as f64)),
        ("queued", Json::Num(queued as f64)),
        ("active", Json::Num(active as f64)),
        ("draining", Json::Bool(draining)),
        ("tunables", tunables),
        ("tracked_runs", Json::Num(tracked_runs as f64)),
    ])
}

/// Acknowledges a `drain` request.
pub fn draining_frame() -> Json {
    Json::obj([("reply", Json::Str("draining".to_string()))])
}

/// Reply to `cancel`: whether a matching in-flight run existed.
pub fn cancelled_frame(id: &str, found: bool) -> Json {
    Json::obj([
        ("reply", Json::Str("cancelled".to_string())),
        ("id", Json::Str(id.to_string())),
        ("found", Json::Bool(found)),
    ])
}

/// Acknowledges a successful `resume`, ahead of the replayed frames' gap
/// marker (if any) and the replay itself.  `finished` tells the client
/// whether a terminal `result`/`error` is part of the replay (nothing
/// further will stream after it).
pub fn resumed_frame(id: &str, token: &str, replayed: usize, finished: bool) -> Json {
    Json::obj([
        ("reply", Json::Str("resumed".to_string())),
        ("id", Json::Str(id.to_string())),
        ("token", Json::Str(token.to_string())),
        ("replayed", Json::Num(replayed as f64)),
        ("finished", Json::Bool(finished)),
    ])
}

/// Journaled frames `from..=to` were evicted from the replay buffer before
/// this resume: the client's stream has a hole it can see, not a silent one.
pub fn gap_frame(id: &str, from: u64, to: u64) -> Json {
    Json::obj([
        ("reply", Json::Str("gap".to_string())),
        ("id", Json::Str(id.to_string())),
        ("from", Json::Num(from as f64)),
        ("to", Json::Num(to as f64)),
    ])
}

/// Stamps an already-built reply frame with a sequence number — used for
/// journaled terminal `error` frames (`bad-problem`, `panic`), which close
/// a run's stream just like a `result` does.
pub fn sequenced(frame: Json, seq: u64) -> Json {
    match frame {
        Json::Obj(mut map) => {
            map.insert("seq".to_string(), Json::Num(seq as f64));
            Json::Obj(map)
        }
        other => other,
    }
}

/// Acknowledges a `reload`: the tunable set now in force.
pub fn reloaded_frame(tunables: Json) -> Json {
    Json::obj([
        ("reply", Json::Str("reloaded".to_string())),
        ("tunables", tunables),
    ])
}

/// One streamed [`RunEvent`], stamped with its position in the run's
/// sequence-numbered stream.
pub fn event_frame(id: &str, seq: u64, event: &RunEvent) -> Json {
    let body = match event {
        RunEvent::RunStarted { mode, synthesizer } => Json::obj([
            ("kind", Json::Str("run-started".to_string())),
            ("mode", Json::Str(mode.label().to_string())),
            ("synthesizer", Json::Str(synthesizer.label().to_string())),
        ]),
        RunEvent::CandidateProposed {
            iteration,
            candidate,
            from_cache,
        } => Json::obj([
            ("kind", Json::Str("candidate".to_string())),
            ("iteration", Json::Num(*iteration as f64)),
            ("candidate", Json::Str(candidate.to_string())),
            ("from_cache", Json::Bool(*from_cache)),
        ]),
        RunEvent::PositivesAdded { added, total } => Json::obj([
            ("kind", Json::Str("positives".to_string())),
            ("added", Json::Num(*added as f64)),
            ("total", Json::Num(*total as f64)),
        ]),
        RunEvent::NegativesAdded { added, total } => Json::obj([
            ("kind", Json::Str("negatives".to_string())),
            ("added", Json::Num(*added as f64)),
            ("total", Json::Num(*total as f64)),
        ]),
        RunEvent::PhaseFinished { phase, elapsed } => Json::obj([
            ("kind", Json::Str("phase".to_string())),
            ("phase", Json::Str(phase.label().to_string())),
            ("elapsed_ms", Json::Num(elapsed.as_secs_f64() * 1000.0)),
        ]),
        RunEvent::RunFinished {
            success,
            iterations,
            total,
        } => Json::obj([
            ("kind", Json::Str("run-finished".to_string())),
            ("success", Json::Bool(*success)),
            ("iterations", Json::Num(*iterations as f64)),
            ("total_ms", Json::Num(total.as_secs_f64() * 1000.0)),
        ]),
    };
    match body {
        Json::Obj(mut map) => {
            map.insert("reply".to_string(), Json::Str("event".to_string()));
            map.insert("id".to_string(), Json::Str(id.to_string()));
            map.insert("seq".to_string(), Json::Num(seq as f64));
            Json::Obj(map)
        }
        other => other,
    }
}

/// The wire label of a run outcome.
pub fn status_of(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Invariant(_) => "invariant",
        Outcome::SpecViolation(_) => "spec-violation",
        Outcome::SynthesisFailure(_) => "synthesis-failure",
        Outcome::Timeout => "timeout",
        Outcome::Cancelled => "cancelled",
    }
}

/// The final answer for a run: outcome, full statistics, and the time the
/// run spent queued vs running.  The terminal frame closes the run's
/// sequence-numbered stream, so it carries a `seq` too.
pub fn result_frame(id: &str, seq: u64, result: &RunResult, queue_ms: u64, run_ms: u64) -> Json {
    let detail = match &result.outcome {
        Outcome::SynthesisFailure(message) => Json::Str(message.clone()),
        Outcome::SpecViolation(values) => Json::Str(format!(
            "specification violated by {} constructible value(s)",
            values.len()
        )),
        _ => Json::Null,
    };
    Json::obj([
        ("reply", Json::Str("result".to_string())),
        ("id", Json::Str(id.to_string())),
        ("seq", Json::Num(seq as f64)),
        ("status", Json::Str(status_of(&result.outcome).to_string())),
        (
            "invariant",
            match result.outcome.invariant() {
                Some(expr) => Json::Str(expr.to_string()),
                None => Json::Null,
            },
        ),
        ("detail", detail),
        ("stats", result.stats.to_json()),
        ("queue_ms", Json::Num(queue_ms as f64)),
        ("run_ms", Json::Num(run_ms as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::json::parse;

    #[test]
    fn requests_parse() {
        let frame = parse(
            r#"{"op":"submit","id":"r1","source":"src","events":true,
                "options":{"mode":"OneShot","synth":"fold","timeout_ms":500,"max_iterations":7}}"#,
        )
        .unwrap();
        match parse_request(&frame).unwrap() {
            Request::Submit(submit) => {
                assert_eq!(submit.id, "r1");
                assert_eq!(submit.source, "src");
                assert!(submit.events);
                assert!(submit.chaos.is_none());
                assert_eq!(submit.options.mode, Mode::OneShot);
                assert_eq!(submit.options.synthesizer, SynthChoice::Fold);
                assert_eq!(submit.options.timeout, Some(Duration::from_millis(500)));
                assert_eq!(submit.options.max_iterations, 7);
            }
            other => panic!("expected submit, got {other:?}"),
        }
        assert!(matches!(
            parse_request(&parse(r#"{"op":"ping"}"#).unwrap()),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(&parse(r#"{"op":"cancel","id":"x"}"#).unwrap()),
            Ok(Request::Cancel { .. })
        ));
        assert!(matches!(
            parse_request(&parse(r#"{"op":"reload"}"#).unwrap()),
            Ok(Request::Reload)
        ));
        match parse_request(&parse(r#"{"op":"resume","token":"run-1-aa","last_seq":17}"#).unwrap())
            .unwrap()
        {
            Request::Resume { token, last_seq } => {
                assert_eq!(token, "run-1-aa");
                assert_eq!(last_seq, 17);
            }
            other => panic!("expected resume, got {other:?}"),
        }
        match parse_request(&parse(r#"{"op":"resume","token":"t"}"#).unwrap()).unwrap() {
            Request::Resume { last_seq, .. } => assert_eq!(last_seq, 0),
            other => panic!("expected resume, got {other:?}"),
        }
    }

    #[test]
    fn chaos_directives_parse() {
        let frame =
            parse(r#"{"op":"submit","id":"c","source":"s","chaos":{"kind":"sleep","ms":40}}"#)
                .unwrap();
        match parse_request(&frame).unwrap() {
            Request::Submit(submit) => {
                assert_eq!(submit.chaos, Some(ChaosDirective::Sleep(40)))
            }
            other => panic!("expected submit, got {other:?}"),
        }
        let frame =
            parse(r#"{"op":"submit","id":"c","source":"s","chaos":{"kind":"panic"}}"#).unwrap();
        match parse_request(&frame).unwrap() {
            Request::Submit(submit) => assert_eq!(submit.chaos, Some(ChaosDirective::Panic)),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_become_structured_errors() {
        for (frame, needle) in [
            (r#"[1,2,3]"#, "object"),
            (r#"{"noop":1}"#, "op"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"cancel"}"#, "id"),
            (r#"{"op":"submit","id":"r"}"#, "source"),
            (r#"{"op":"submit","id":"","source":"s"}"#, "non-empty"),
            (
                r#"{"op":"submit","id":"r","source":"s","options":{"mode":"Bogus"}}"#,
                "unknown mode",
            ),
            (
                r#"{"op":"submit","id":"r","source":"s","options":{"max_iterations":0}}"#,
                "max_iterations",
            ),
            (
                r#"{"op":"submit","id":"r","source":"s","chaos":{"kind":"explode"}}"#,
                "chaos",
            ),
            (r#"{"op":"resume"}"#, "token"),
            (r#"{"op":"resume","token":""}"#, "non-empty"),
            (r#"{"op":"resume","token":"t","last_seq":-4}"#, "last_seq"),
        ] {
            let json = parse(frame).unwrap();
            let error = parse_request(&json).expect_err(frame);
            assert_eq!(error.code, "bad-request", "{frame}");
            assert!(error.message.contains(needle), "{frame}: {}", error.message);
        }
    }

    #[test]
    fn reply_frames_have_the_documented_shape() {
        let shed = shed_frame("r9", ShedReason::QueueFull, 250);
        assert_eq!(shed.get("reply").unwrap().as_str(), Some("shed"));
        assert_eq!(shed.get("reason").unwrap().as_str(), Some("queue-full"));
        assert_eq!(shed.get("retry_after_ms").unwrap().as_usize(), Some(250));

        let err = error_frame(&ProtocolError::new("parse", "boom"), None);
        assert_eq!(err.get("code").unwrap().as_str(), Some("parse"));
        assert!(matches!(err.get("id"), Some(Json::Null)));

        let event = event_frame(
            "r1",
            7,
            &RunEvent::PhaseFinished {
                phase: hanoi::RunPhase::Synthesis,
                elapsed: Duration::from_millis(3),
            },
        );
        assert_eq!(event.get("reply").unwrap().as_str(), Some("event"));
        assert_eq!(event.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(event.get("kind").unwrap().as_str(), Some("phase"));
        assert_eq!(event.get("seq").unwrap().as_usize(), Some(7));

        let result = result_frame(
            "r1",
            8,
            &RunResult::new(Outcome::Cancelled, hanoi::RunStats::default()),
            12,
            34,
        );
        assert_eq!(result.get("status").unwrap().as_str(), Some("cancelled"));
        assert_eq!(result.get("queue_ms").unwrap().as_usize(), Some(12));
        assert_eq!(result.get("seq").unwrap().as_usize(), Some(8));
        assert!(result.get("stats").is_some());

        let accepted = accepted_frame("r1", 2, "run-1-feed");
        assert_eq!(accepted.get("token").unwrap().as_str(), Some("run-1-feed"));

        let resumed = resumed_frame("r1", "run-1-feed", 5, true);
        assert_eq!(resumed.get("reply").unwrap().as_str(), Some("resumed"));
        assert_eq!(resumed.get("replayed").unwrap().as_usize(), Some(5));
        assert_eq!(resumed.get("finished").unwrap().as_bool(), Some(true));

        let gap = gap_frame("r1", 3, 9);
        assert_eq!(gap.get("reply").unwrap().as_str(), Some("gap"));
        assert_eq!(gap.get("from").unwrap().as_usize(), Some(3));
        assert_eq!(gap.get("to").unwrap().as_usize(), Some(9));

        assert_eq!(ShedReason::RateLimited.label(), "rate-limited");
    }
}
