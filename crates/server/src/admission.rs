//! Bounded admission: the load-shedding queue between connections and the
//! worker pool.
//!
//! Admission is where the server turns *overload* into *backpressure*
//! instead of latency collapse.  The queue is strictly bounded
//! ([`crate::ServerConfig::max_queue_depth`]); a submit beyond the bound (or
//! beyond the submitting client's fair share,
//! [`crate::ServerConfig::per_client_quota`]) is rejected immediately with a
//! [`ShedReason`] and a `retry_after_ms` hint that scales with the current
//! backlog per worker — clients learn to back off harder the more overloaded
//! the server is.  The hint carries ±25% of deterministic jitter: identical
//! hints to a burst of shed clients would synchronize their retries into a
//! thundering herd that re-overloads the queue at the same instant.
//!
//! The fairness key is the client's *address* (like the rate limiter's
//! buckets), not its connection id: runs outlive connections now, so a
//! connection-keyed quota could be laundered away — submit a full quota,
//! disconnect (the runs keep executing under the disconnect grace),
//! reconnect with a fresh id and a fresh quota, repeat.  An address-keyed
//! slot stays charged until the run itself finishes, whatever happened to
//! the socket it arrived on.  Behind a reverse proxy every client shares
//! the proxy's address — enable PROXY protocol support
//! ([`crate::ServerConfig::proxy_protocol`]) to recover real client
//! addresses there.
//!
//! The bounds themselves are read from the server's [`HotTunables`] on
//! every submit, so a hot config reload resizes the queue and quotas for
//! the very next request without restarting workers.
//!
//! The queue is also the drain gate: [`Admission::begin_drain`] atomically
//! stops admission (everything new sheds with [`ShedReason::Draining`])
//! while letting queued and running work finish, and
//! [`Admission::wait_idle`] lets the drain coordinator wait for the backlog
//! to clear.  All waiting is condvar-based; locks are poison-tolerant so a
//! panicking worker cannot wedge admission for everyone else.

use std::collections::{HashMap, VecDeque};
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::config::HotTunables;
use crate::protocol::ShedReason;
use crate::registry::splitmix64;

/// Ceiling on the backoff hint handed to shed clients.
const MAX_RETRY_AFTER_MS: u64 = 30_000;

/// The bounded admission queue.  `J` is the job payload; the queue itself
/// only interprets the submitting client's address (for fairness
/// accounting).
#[derive(Debug)]
pub struct Admission<J> {
    state: Mutex<State<J>>,
    wake: Condvar,
    workers: usize,
    tunables: Arc<HotTunables>,
    /// Stream state for the retry-hint jitter (SplitMix64 counter).
    jitter: AtomicU64,
}

#[derive(Debug)]
struct State<J> {
    queue: VecDeque<(IpAddr, J)>,
    /// Queued + running jobs per client address.
    in_flight: HashMap<IpAddr, usize>,
    /// Jobs currently running on workers.
    active: usize,
    draining: bool,
    shutdown: bool,
}

/// What a worker's [`Admission::next`] poll produced.
#[derive(Debug)]
pub enum Next<J> {
    /// A job to execute, with the address of the client that submitted it.
    Job(IpAddr, J),
    /// Nothing arrived within the patience window; poll again.
    Idle,
    /// The queue is shut down and empty; the worker should exit.
    Shutdown,
}

impl<J> Admission<J> {
    /// Creates a queue reading its depth, quota, and retry base from the
    /// server's hot tunables on every submit.
    pub fn new(workers: usize, tunables: Arc<HotTunables>) -> Self {
        Admission {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                in_flight: HashMap::new(),
                active: 0,
                draining: false,
                shutdown: false,
            }),
            wake: Condvar::new(),
            workers: workers.max(1),
            tunables,
            jitter: AtomicU64::new(0x005e_ed0f_ad15_5105),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<J>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The backoff hint: the base interval scaled by how many jobs are
    /// already waiting or running per worker, then spread by ±25% of
    /// bounded jitter so a burst of simultaneous sheds does not come back
    /// as a synchronized retry herd.
    fn retry_hint(&self, state: &State<J>, base_ms: u64) -> u64 {
        let backlog_per_worker = (state.queue.len() + state.active) as u64 / self.workers as u64;
        let hint = base_ms
            .saturating_mul(1 + backlog_per_worker)
            .min(MAX_RETRY_AFTER_MS);
        let spread = hint / 2;
        let rand = splitmix64(self.jitter.fetch_add(1, Ordering::Relaxed));
        (hint - hint / 4 + rand % (spread + 1)).clamp(1, MAX_RETRY_AFTER_MS)
    }

    /// Admits a job, or sheds it with a reason and a backoff hint.  Returns
    /// the queue depth the job joined at (including itself).
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, client: IpAddr, job: J) -> Result<usize, (ShedReason, u64)> {
        let tunables = self.tunables.get();
        let mut state = self.lock();
        if state.draining || state.shutdown {
            let hint = self.retry_hint(&state, tunables.retry_after_base_ms);
            return Err((ShedReason::Draining, hint));
        }
        if state.in_flight.get(&client).copied().unwrap_or(0) >= tunables.per_client_quota {
            let hint = self.retry_hint(&state, tunables.retry_after_base_ms);
            return Err((ShedReason::ClientQuota, hint));
        }
        if state.queue.len() >= tunables.max_queue_depth {
            let hint = self.retry_hint(&state, tunables.retry_after_base_ms);
            return Err((ShedReason::QueueFull, hint));
        }
        *state.in_flight.entry(client).or_insert(0) += 1;
        state.queue.push_back((client, job));
        self.wake.notify_one();
        Ok(state.queue.len())
    }

    /// Takes the next job, waiting up to `patience` for one to arrive.
    /// Workers call this in a loop; [`Next::Idle`] lets them interleave
    /// shutdown checks with waiting.
    pub fn next(&self, patience: Duration) -> Next<J> {
        let mut state = self.lock();
        if let Some((client, job)) = state.queue.pop_front() {
            state.active += 1;
            return Next::Job(client, job);
        }
        if state.shutdown {
            return Next::Shutdown;
        }
        let (mut state, _) = self
            .wake
            .wait_timeout(state, patience)
            .unwrap_or_else(|p| p.into_inner());
        if let Some((client, job)) = state.queue.pop_front() {
            state.active += 1;
            return Next::Job(client, job);
        }
        if state.shutdown {
            Next::Shutdown
        } else {
            Next::Idle
        }
    }

    /// Marks a job taken by [`Admission::next`] as finished, releasing its
    /// client-quota slot and waking idle waiters.
    pub fn finish(&self, client: IpAddr) {
        let mut state = self.lock();
        state.active = state.active.saturating_sub(1);
        release_quota(&mut state.in_flight, client);
        self.wake.notify_all();
    }

    /// Stops admission: every later submit sheds with
    /// [`ShedReason::Draining`].  Queued and running jobs are unaffected.
    /// Idempotent.
    pub fn begin_drain(&self) {
        self.lock().draining = true;
        self.wake.notify_all();
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Shuts the queue down: workers drain remaining jobs, then see
    /// [`Next::Shutdown`].
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.wake.notify_all();
    }

    /// Waits until no job is queued or running, up to `timeout`.  Returns
    /// whether the queue went idle in time.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if state.queue.is_empty() && state.active == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            state = self
                .wake
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Empties the queue, returning the jobs that never started (their
    /// quota slots are released).  The drain coordinator uses this to
    /// cancel queued work when the drain patience runs out.
    pub fn drain_queue(&self) -> Vec<(IpAddr, J)> {
        let mut state = self.lock();
        let jobs: Vec<(IpAddr, J)> = state.queue.drain(..).collect();
        for (client, _) in &jobs {
            release_quota(&mut state.in_flight, *client);
        }
        self.wake.notify_all();
        jobs
    }

    /// Current load: `(queued, active)`.
    pub fn load(&self) -> (usize, usize) {
        let state = self.lock();
        (state.queue.len(), state.active)
    }
}

fn release_quota(in_flight: &mut HashMap<IpAddr, usize>, client: IpAddr) {
    if let Some(count) = in_flight.get_mut(&client) {
        *count = count.saturating_sub(1);
        if *count == 0 {
            in_flight.remove(&client);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ServerConfig, Tunables};

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([10, 0, 0, last])
    }

    fn tunables(depth: usize, quota: usize, base_ms: u64) -> Arc<HotTunables> {
        let mut tunables = Tunables::from_config(&ServerConfig::new());
        tunables.max_queue_depth = depth;
        tunables.per_client_quota = quota;
        tunables.retry_after_base_ms = base_ms;
        Arc::new(HotTunables::new(tunables))
    }

    #[test]
    fn bounds_quota_and_shed_reasons() {
        // 1 worker, depth 2, quota 2.
        let queue: Admission<&'static str> = Admission::new(1, tunables(2, 2, 100));
        assert_eq!(queue.submit(ip(1), "a"), Ok(1));
        assert_eq!(queue.submit(ip(1), "b"), Ok(2));
        // Client 1 is at quota; client 2 hits the depth bound instead.
        let (reason, hint) = queue.submit(ip(1), "c").unwrap_err();
        assert_eq!(reason, ShedReason::ClientQuota);
        assert!(hint >= 100, "jitter floor is -25% of the base hint: {hint}");
        let (reason, _) = queue.submit(ip(2), "d").unwrap_err();
        assert_eq!(reason, ShedReason::QueueFull);

        // A worker takes one; the freed depth admits client 2, but client 1
        // stays at quota until `finish` (quota covers queued + running).
        assert!(matches!(
            queue.next(Duration::from_millis(1)),
            Next::Job(client, "a") if client == ip(1)
        ));
        assert!(matches!(
            queue.submit(ip(1), "e"),
            Err((ShedReason::ClientQuota, _))
        ));
        assert_eq!(queue.submit(ip(2), "f"), Ok(2));
        queue.finish(ip(1));
        // Client 1's quota slot is freed, but the depth bound (2) is full
        // again ("b" and "f"): the shed reason switches.
        let (reason, _) = queue.submit(ip(1), "g").unwrap_err();
        assert_eq!(reason, ShedReason::QueueFull);
        assert_eq!(queue.load(), (2, 0));
    }

    #[test]
    fn quota_is_keyed_by_address_and_survives_reconnects() {
        // The connection-laundering attack: submit a full quota, "drop the
        // connection" (runs keep executing), come back as a fresh
        // connection, submit again.  The address-keyed quota must not care
        // which socket the submits arrived on.
        let queue: Admission<&'static str> = Admission::new(1, tunables(64, 2, 100));
        assert_eq!(queue.submit(ip(1), "a"), Ok(1));
        assert_eq!(queue.submit(ip(1), "b"), Ok(2));
        // The "reconnect": same address, notionally a brand-new connection.
        let (reason, _) = queue.submit(ip(1), "laundered").unwrap_err();
        assert_eq!(reason, ShedReason::ClientQuota);
        // Only finishing a run frees the slot — not any connection event.
        assert!(matches!(
            queue.next(Duration::from_millis(1)),
            Next::Job(..)
        ));
        queue.finish(ip(1));
        assert_eq!(queue.submit(ip(1), "c"), Ok(2));
    }

    #[test]
    fn retry_hint_scales_with_backlog_and_jitter_spreads_the_herd() {
        let queue: Admission<usize> = Admission::new(1, tunables(4, 64, 100));
        for job in 0..4 {
            queue.submit(ip(9), job).unwrap();
        }
        // 4 queued jobs on 1 worker: the deterministic hint is
        // base * (1 + 4) = 500 ms; jitter keeps it within ±25%.
        let hints: Vec<u64> = (0..32)
            .map(|_| queue.submit(ip(9), 99).unwrap_err().1)
            .collect();
        for &hint in &hints {
            assert!((375..=625).contains(&hint), "hint {hint} out of band");
        }
        // The herd is actually spread: a burst of sheds does not hand every
        // client the same retry instant.
        let distinct: std::collections::HashSet<u64> = hints.iter().copied().collect();
        assert!(distinct.len() > 8, "only {} distinct hints", distinct.len());
    }

    #[test]
    fn reloaded_tunables_govern_the_next_submit() {
        let hot = tunables(1, 8, 100);
        let queue: Admission<usize> = Admission::new(1, hot.clone());
        queue.submit(ip(1), 0).unwrap();
        assert!(matches!(
            queue.submit(ip(1), 1),
            Err((ShedReason::QueueFull, _))
        ));
        // A hot reload deepens the queue: the very next submit is admitted.
        let mut wider = (*hot.get()).clone();
        wider.max_queue_depth = 4;
        hot.swap(wider);
        assert_eq!(queue.submit(ip(1), 1), Ok(2));
    }

    #[test]
    fn drain_stops_admission_and_idles() {
        let queue: Admission<usize> = Admission::new(1, tunables(8, 8, 10));
        queue.submit(ip(1), 7).unwrap();
        queue.begin_drain();
        assert!(queue.is_draining());
        assert!(matches!(
            queue.submit(ip(1), 8),
            Err((ShedReason::Draining, _))
        ));
        // Still one queued job: not idle yet.
        assert!(!queue.wait_idle(Duration::from_millis(10)));
        let leftover = queue.drain_queue();
        assert_eq!(leftover, vec![(ip(1), 7)]);
        assert!(queue.wait_idle(Duration::from_millis(10)));
        // Quota slot was released with the queue entry.
        assert!(queue.load() == (0, 0));
        queue.shutdown();
        assert!(matches!(
            queue.next(Duration::from_millis(1)),
            Next::Shutdown
        ));
    }
}
