//! Server configuration: every robustness knob in one place.

use std::time::Duration;

use hanoi::EngineConfig;

/// Configuration of a [`crate::Server`].
///
/// The defaults are sized for the single-machine service shape: a small
/// worker pool over one shared [`hanoi::Engine`], a queue a few times deeper
/// than the pool, and timeouts that favour shedding over waiting.  Every
/// limit exists to bound a resource a hostile or unlucky client could
/// otherwise grow without bound — connections, queued work, line bytes,
/// frame nesting, per-run wall clock.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing inference runs.  The *admission budget* —
    /// with [`ServerConfig::max_queue_depth`], the number of runs the server
    /// holds before it sheds.
    pub workers: usize,
    /// Maximum queued (admitted, not yet running) runs.  A submit beyond
    /// this is shed with a `retry_after_ms` hint instead of queued.
    pub max_queue_depth: usize,
    /// Maximum runs one client connection may have in flight
    /// (queued + running) before its submits are shed — per-client fairness
    /// over the worker budget: one greedy client cannot occupy the whole
    /// queue.
    pub per_client_quota: usize,
    /// Hard per-run wall-clock ceiling.  Client-requested timeouts are
    /// clamped to it, and a watchdog thread cancels (via the run's
    /// `CancelToken`) any run still alive past the ceiling plus
    /// [`ServerConfig::watchdog_grace`].
    pub watchdog: Duration,
    /// Extra slack the watchdog grants beyond the clamped timeout before it
    /// force-cancels — covers runs wedged somewhere that polls the deadline
    /// rarely.
    pub watchdog_grace: Duration,
    /// How long a drain waits for in-flight runs to finish before
    /// cancelling them.
    pub drain_timeout: Duration,
    /// Connections idle (no bytes at all) longer than this are closed.
    pub idle_timeout: Duration,
    /// A frame that stays incomplete longer than this is a slow-loris
    /// writer: the connection is closed.
    pub frame_timeout: Duration,
    /// Per-frame byte ceiling (longer lines are discarded and reported as a
    /// structured `oversized` error).
    pub max_frame_bytes: usize,
    /// JSON nesting ceiling for incoming frames.
    pub max_frame_depth: usize,
    /// Maximum concurrent client connections; further accepts are turned
    /// away with a `busy` error frame.
    pub max_connections: usize,
    /// Base of the `retry_after_ms` backpressure hint; the hint scales with
    /// how overloaded the queue is.
    pub retry_after_base_ms: u64,
    /// Distinct problem sources the server keeps elaborated (an elaborated
    /// problem pins the `Env` identity the engine's cache registry is keyed
    /// by, so re-submissions of the same source share warm caches).
    pub max_cached_sources: usize,
    /// Enables the chaos directives (`"chaos": …` on submit) used by the
    /// fault-injection harness.  Never enable in production.
    pub enable_chaos: bool,
    /// Configuration of the engine the server owns.  Set
    /// [`EngineConfig::warm_start_dir`] to make drain checkpoint warm state
    /// to disk (and boot restore it).
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_queue_depth: 64,
            per_client_quota: 8,
            watchdog: Duration::from_secs(120),
            watchdog_grace: Duration::from_millis(500),
            drain_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(300),
            frame_timeout: Duration::from_secs(10),
            max_frame_bytes: hanoi_lang::json::DEFAULT_MAX_FRAME_BYTES,
            max_frame_depth: 128,
            max_connections: 512,
            retry_after_base_ms: 100,
            max_cached_sources: 64,
            enable_chaos: false,
            engine: EngineConfig::default(),
        }
    }
}

impl ServerConfig {
    /// The default configuration.
    pub fn new() -> Self {
        ServerConfig::default()
    }

    /// Sets the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the admission-queue depth.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Sets the per-client in-flight quota.
    pub fn with_per_client_quota(mut self, quota: usize) -> Self {
        self.per_client_quota = quota;
        self
    }

    /// Sets the per-run watchdog ceiling.
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets the drain patience before in-flight runs are cancelled.
    pub fn with_drain_timeout(mut self, drain_timeout: Duration) -> Self {
        self.drain_timeout = drain_timeout;
        self
    }

    /// Sets the slow-loris frame-completion deadline.
    pub fn with_frame_timeout(mut self, frame_timeout: Duration) -> Self {
        self.frame_timeout = frame_timeout;
        self
    }

    /// Sets the idle-connection deadline.
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// Sets the per-frame byte ceiling.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Sets the connection ceiling.
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        self.max_connections = max_connections;
        self
    }

    /// Enables the chaos fault-injection directives.
    pub fn with_chaos(mut self, enable: bool) -> Self {
        self.enable_chaos = enable;
        self
    }

    /// Sets the engine configuration (warm-start dir, parallelism, cache
    /// budget).
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Checks the configuration is executable.
    pub fn validate(&self) -> Result<(), String> {
        for (name, value) in [
            ("workers", self.workers),
            ("max_queue_depth", self.max_queue_depth),
            ("per_client_quota", self.per_client_quota),
            ("max_frame_bytes", self.max_frame_bytes),
            ("max_frame_depth", self.max_frame_depth),
            ("max_connections", self.max_connections),
            ("max_cached_sources", self.max_cached_sources),
        ] {
            if value == 0 {
                return Err(format!("`{name}` must be at least 1"));
            }
        }
        if self.watchdog.is_zero() {
            return Err("`watchdog` must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_zero_knobs_do_not() {
        assert!(ServerConfig::default().validate().is_ok());
        assert!(ServerConfig::default().with_workers(0).validate().is_err());
        assert!(ServerConfig::default()
            .with_max_queue_depth(0)
            .validate()
            .is_err());
        assert!(ServerConfig::default()
            .with_watchdog(Duration::ZERO)
            .validate()
            .is_err());
    }
}
