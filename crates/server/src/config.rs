//! Server configuration: every robustness knob in one place.
//!
//! Knobs come in two flavours.  *Structural* settings (worker count, frame
//! limits, buffer budgets) are fixed at [`crate::Server::bind`] time — they
//! size threads and allocations.  *Operational* settings (queue depth,
//! quotas, rate limits, watchdog clamps, grace deadlines) are [`Tunables`]:
//! they live behind a [`HotTunables`] swap cell and can be replaced
//! atomically at runtime — by the `reload` protocol op or a SIGHUP to
//! `hanoi_serve` — without dropping a single in-flight run.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hanoi::EngineConfig;
use hanoi_lang::json::Json;

/// Configuration of a [`crate::Server`].
///
/// The defaults are sized for the single-machine service shape: a small
/// worker pool over one shared [`hanoi::Engine`], a queue a few times deeper
/// than the pool, and timeouts that favour shedding over waiting.  Every
/// limit exists to bound a resource a hostile or unlucky client could
/// otherwise grow without bound — connections, queued work, line bytes,
/// frame nesting, per-run wall clock, per-run replay bytes, tracked runs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing inference runs.  The *admission budget* —
    /// with [`ServerConfig::max_queue_depth`], the number of runs the server
    /// holds before it sheds.
    pub workers: usize,
    /// Maximum queued (admitted, not yet running) runs.  A submit beyond
    /// this is shed with a `retry_after_ms` hint instead of queued.
    /// Hot-reloadable.
    pub max_queue_depth: usize,
    /// Maximum runs one client *address* may have in flight
    /// (queued + running) before its submits are shed — per-client fairness
    /// over the worker budget: one greedy client cannot occupy the whole
    /// queue.  Keyed by address (not connection) because runs outlive
    /// connections: a connection-keyed quota would reset every time the
    /// offender reconnects.  Behind a reverse proxy, enable
    /// [`ServerConfig::proxy_protocol`] so this keys on real client
    /// addresses rather than the proxy's.  Hot-reloadable.
    pub per_client_quota: usize,
    /// Sustained submits per second one client address may make before its
    /// submits are shed with `rate-limited` (a token bucket refilled at this
    /// rate).  `0.0` disables rate limiting — the shipped default, sized for
    /// trusted private-network deployments; enable it (`--rate` or a hot
    /// reload) wherever clients are not all well-behaved.  The concurrency
    /// quota bounds how much a client *holds*; this bounds how fast it
    /// *asks*.  Hot-reloadable.
    pub rate_per_sec: f64,
    /// Burst capacity of the per-client token bucket: this many submits may
    /// arrive back to back before the refill rate becomes the bound.
    /// Hot-reloadable.
    pub rate_burst: f64,
    /// Hard per-run wall-clock ceiling.  Client-requested timeouts are
    /// clamped to it, and a watchdog cancels (via the run's `CancelToken`)
    /// any run still alive past the ceiling plus
    /// [`ServerConfig::watchdog_grace`].  Hot-reloadable (applies to runs
    /// admitted after the reload).
    pub watchdog: Duration,
    /// Extra slack the watchdog grants beyond the clamped timeout before it
    /// force-cancels — covers runs wedged somewhere that polls the deadline
    /// rarely.  Hot-reloadable.
    pub watchdog_grace: Duration,
    /// How long a run keeps executing after its client disconnects before
    /// it is auto-cancelled.  Within the grace window the client may
    /// `resume` by run token and lose nothing; `0` restores the old
    /// cancel-on-disconnect behaviour.  Hot-reloadable.
    pub disconnect_grace: Duration,
    /// Byte budget of each run's event replay buffer.  When journaled
    /// events outgrow it, the oldest are evicted and a resuming client gets
    /// an explicit gap marker instead of a silent hole.
    pub replay_buffer_bytes: usize,
    /// How long a finished run's registry entry (terminal result + replay
    /// buffer) is retained for late resumers before it is reaped.
    pub result_retention: Duration,
    /// Ceiling on registry entries (in-flight + retained).  Past it, the
    /// oldest *finished* entries are evicted early; in-flight runs are never
    /// evicted (they are already bounded by the admission budget).
    pub max_tracked_runs: usize,
    /// How long a drain waits for in-flight runs to finish before
    /// cancelling them.
    pub drain_timeout: Duration,
    /// Connections idle (no bytes at all) longer than this are closed.
    pub idle_timeout: Duration,
    /// A frame that stays incomplete longer than this is a slow-loris
    /// writer: the connection is closed.
    pub frame_timeout: Duration,
    /// Per-frame byte ceiling (longer lines are discarded and reported as a
    /// structured `oversized` error).
    pub max_frame_bytes: usize,
    /// JSON nesting ceiling for incoming frames.
    pub max_frame_depth: usize,
    /// Maximum concurrent client connections; further accepts are turned
    /// away with a `busy` error frame.
    pub max_connections: usize,
    /// Base of the `retry_after_ms` backpressure hint; the hint scales with
    /// how overloaded the queue is (and carries bounded jitter so shed
    /// clients do not retry in lockstep).  Hot-reloadable.
    pub retry_after_base_ms: u64,
    /// Distinct problem sources the server keeps elaborated (an elaborated
    /// problem pins the `Env` identity the engine's cache registry is keyed
    /// by, so re-submissions of the same source share warm caches).
    pub max_cached_sources: usize,
    /// Expects every accepted connection to begin with a PROXY protocol v1
    /// header (`PROXY TCP4 <src> <dst> <sport> <dport>\r\n`) and uses the
    /// advertised *source* address as the client identity for rate limiting
    /// and the in-flight quota.  Required behind a reverse proxy: without
    /// it every proxied client arrives from the proxy's address and shares
    /// one rate bucket and one quota — one noisy client starves all of
    /// them.  Connections that do not present a well-formed header are
    /// closed.  Only enable when the listener is reachable *exclusively*
    /// through a proxy that sends the header; a direct client could
    /// otherwise spoof any address it likes.
    pub proxy_protocol: bool,
    /// Enables the chaos directives (`"chaos": …` on submit) used by the
    /// fault-injection harness.  Never enable in production.
    pub enable_chaos: bool,
    /// Path of the JSON tunables file re-read by the `reload` protocol op
    /// (and by SIGHUP in `hanoi_serve`).  `None` makes `reload` report
    /// `reload-unavailable`.
    pub config_path: Option<PathBuf>,
    /// Configuration of the engine the server owns.  Set
    /// [`EngineConfig::warm_start_dir`] to make drain checkpoint warm state
    /// to disk (and boot restore it).
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_queue_depth: 64,
            per_client_quota: 8,
            rate_per_sec: 0.0,
            rate_burst: 16.0,
            watchdog: Duration::from_secs(120),
            watchdog_grace: Duration::from_millis(500),
            disconnect_grace: Duration::from_secs(15),
            replay_buffer_bytes: 256 * 1024,
            result_retention: Duration::from_secs(120),
            max_tracked_runs: 1024,
            drain_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(300),
            frame_timeout: Duration::from_secs(10),
            max_frame_bytes: hanoi_lang::json::DEFAULT_MAX_FRAME_BYTES,
            max_frame_depth: 128,
            max_connections: 512,
            retry_after_base_ms: 100,
            max_cached_sources: 64,
            proxy_protocol: false,
            enable_chaos: false,
            config_path: None,
            engine: EngineConfig::default(),
        }
    }
}

impl ServerConfig {
    /// The default configuration.
    pub fn new() -> Self {
        ServerConfig::default()
    }

    /// Sets the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the admission-queue depth.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Sets the per-client in-flight quota.
    pub fn with_per_client_quota(mut self, quota: usize) -> Self {
        self.per_client_quota = quota;
        self
    }

    /// Sets the per-client submit rate limit (`0.0` disables) and burst.
    pub fn with_rate_limit(mut self, per_sec: f64, burst: f64) -> Self {
        self.rate_per_sec = per_sec;
        self.rate_burst = burst;
        self
    }

    /// Sets the per-run watchdog ceiling.
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets how long a disconnected client's runs keep executing before
    /// auto-cancel.
    pub fn with_disconnect_grace(mut self, grace: Duration) -> Self {
        self.disconnect_grace = grace;
        self
    }

    /// Sets the per-run replay-buffer byte budget.
    pub fn with_replay_buffer_bytes(mut self, bytes: usize) -> Self {
        self.replay_buffer_bytes = bytes;
        self
    }

    /// Sets how long finished runs stay resumable.
    pub fn with_result_retention(mut self, retention: Duration) -> Self {
        self.result_retention = retention;
        self
    }

    /// Sets the registry-entry ceiling.
    pub fn with_max_tracked_runs(mut self, max: usize) -> Self {
        self.max_tracked_runs = max;
        self
    }

    /// Sets the drain patience before in-flight runs are cancelled.
    pub fn with_drain_timeout(mut self, drain_timeout: Duration) -> Self {
        self.drain_timeout = drain_timeout;
        self
    }

    /// Sets the slow-loris frame-completion deadline.
    pub fn with_frame_timeout(mut self, frame_timeout: Duration) -> Self {
        self.frame_timeout = frame_timeout;
        self
    }

    /// Sets the idle-connection deadline.
    pub fn with_idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// Sets the per-frame byte ceiling.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Sets the connection ceiling.
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        self.max_connections = max_connections;
        self
    }

    /// Expects PROXY protocol v1 headers and keys client identity on the
    /// advertised source address.
    pub fn with_proxy_protocol(mut self, enable: bool) -> Self {
        self.proxy_protocol = enable;
        self
    }

    /// Enables the chaos fault-injection directives.
    pub fn with_chaos(mut self, enable: bool) -> Self {
        self.enable_chaos = enable;
        self
    }

    /// Sets the tunables file the `reload` op (and SIGHUP) re-reads.
    pub fn with_config_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config_path = Some(path.into());
        self
    }

    /// Sets the engine configuration (warm-start dir, parallelism, cache
    /// budget).
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Checks the configuration is executable.
    pub fn validate(&self) -> Result<(), String> {
        for (name, value) in [
            ("workers", self.workers),
            ("max_queue_depth", self.max_queue_depth),
            ("per_client_quota", self.per_client_quota),
            ("max_frame_bytes", self.max_frame_bytes),
            ("max_frame_depth", self.max_frame_depth),
            ("max_connections", self.max_connections),
            ("max_cached_sources", self.max_cached_sources),
            ("replay_buffer_bytes", self.replay_buffer_bytes),
            ("max_tracked_runs", self.max_tracked_runs),
        ] {
            if value == 0 {
                return Err(format!("`{name}` must be at least 1"));
            }
        }
        if self.watchdog.is_zero() {
            return Err("`watchdog` must be positive".to_string());
        }
        Tunables::from_config(self).validate()
    }
}

/// The hot-reloadable subset of [`ServerConfig`]: the operational knobs an
/// operator retunes on a live fleet.
///
/// A [`Tunables`] value is immutable once published; a reload builds a new
/// one (current values overlaid with the config file's keys) and swaps it in
/// whole through [`HotTunables`], so every reader sees either the old set or
/// the new set, never a mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tunables {
    /// See [`ServerConfig::max_queue_depth`].
    pub max_queue_depth: usize,
    /// See [`ServerConfig::per_client_quota`].
    pub per_client_quota: usize,
    /// See [`ServerConfig::rate_per_sec`].
    pub rate_per_sec: f64,
    /// See [`ServerConfig::rate_burst`].
    pub rate_burst: f64,
    /// See [`ServerConfig::retry_after_base_ms`].
    pub retry_after_base_ms: u64,
    /// See [`ServerConfig::watchdog`].
    pub watchdog: Duration,
    /// See [`ServerConfig::watchdog_grace`].
    pub watchdog_grace: Duration,
    /// See [`ServerConfig::disconnect_grace`].
    pub disconnect_grace: Duration,
}

impl Tunables {
    /// The tunable subset of `config`.
    pub fn from_config(config: &ServerConfig) -> Tunables {
        Tunables {
            max_queue_depth: config.max_queue_depth,
            per_client_quota: config.per_client_quota,
            rate_per_sec: config.rate_per_sec,
            rate_burst: config.rate_burst,
            retry_after_base_ms: config.retry_after_base_ms,
            watchdog: config.watchdog,
            watchdog_grace: config.watchdog_grace,
            disconnect_grace: config.disconnect_grace,
        }
    }

    /// A copy of `self` with every key present in `json` (a flat object)
    /// replaced.  Unknown keys are rejected — a typoed knob in a reload file
    /// must fail loudly, not silently keep the old value.
    ///
    /// Recognized keys: `max_queue_depth`, `per_client_quota`,
    /// `rate_per_sec`, `rate_burst`, `retry_after_base_ms`, `watchdog_ms`,
    /// `watchdog_grace_ms`, `disconnect_grace_ms`.
    pub fn overlaid(&self, json: &Json) -> Result<Tunables, String> {
        let Json::Obj(map) = json else {
            return Err("tunables must be a JSON object".to_string());
        };
        let mut next = self.clone();
        for (key, value) in map {
            let num = value
                .as_f64()
                .ok_or_else(|| format!("`{key}` must be a number"))?;
            if !num.is_finite() || num < 0.0 {
                return Err(format!("`{key}` must be finite and non-negative"));
            }
            match key.as_str() {
                "max_queue_depth" => next.max_queue_depth = num as usize,
                "per_client_quota" => next.per_client_quota = num as usize,
                "rate_per_sec" => next.rate_per_sec = num,
                "rate_burst" => next.rate_burst = num,
                "retry_after_base_ms" => next.retry_after_base_ms = num as u64,
                "watchdog_ms" => next.watchdog = Duration::from_millis(num as u64),
                "watchdog_grace_ms" => next.watchdog_grace = Duration::from_millis(num as u64),
                "disconnect_grace_ms" => next.disconnect_grace = Duration::from_millis(num as u64),
                other => return Err(format!("unknown tunable `{other}`")),
            }
        }
        next.validate()?;
        Ok(next)
    }

    /// Checks the tunables are executable.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_queue_depth == 0 {
            return Err("`max_queue_depth` must be at least 1".to_string());
        }
        if self.per_client_quota == 0 {
            return Err("`per_client_quota` must be at least 1".to_string());
        }
        if self.watchdog.is_zero() {
            return Err("`watchdog` must be positive".to_string());
        }
        if !self.rate_per_sec.is_finite() || self.rate_per_sec < 0.0 {
            return Err("`rate_per_sec` must be finite and non-negative".to_string());
        }
        if self.rate_per_sec > 0.0 && self.rate_burst < 1.0 {
            return Err("`rate_burst` must be at least 1 when rate limiting is on".to_string());
        }
        Ok(())
    }

    /// Serializes the set (reported by `stats` and `reloaded` frames).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("max_queue_depth", Json::Num(self.max_queue_depth as f64)),
            ("per_client_quota", Json::Num(self.per_client_quota as f64)),
            ("rate_per_sec", Json::Num(self.rate_per_sec)),
            ("rate_burst", Json::Num(self.rate_burst)),
            (
                "retry_after_base_ms",
                Json::Num(self.retry_after_base_ms as f64),
            ),
            ("watchdog_ms", Json::Num(self.watchdog.as_millis() as f64)),
            (
                "watchdog_grace_ms",
                Json::Num(self.watchdog_grace.as_millis() as f64),
            ),
            (
                "disconnect_grace_ms",
                Json::Num(self.disconnect_grace.as_millis() as f64),
            ),
        ])
    }
}

/// The swap cell the live [`Tunables`] set is published through.
///
/// Readers take a cheap `Arc` clone of the current set and use it for the
/// whole request, so one request never mixes two generations; a reload
/// replaces the `Arc` atomically.  This is the whole reload-atomicity
/// argument: tunables are data, not state — nothing references them across
/// requests, so swapping the pointer is a complete, consistent reload.
#[derive(Debug)]
pub struct HotTunables {
    current: Mutex<Arc<Tunables>>,
}

impl HotTunables {
    /// Publishes an initial set.
    pub fn new(tunables: Tunables) -> HotTunables {
        HotTunables {
            current: Mutex::new(Arc::new(tunables)),
        }
    }

    /// The current set.  Hold the returned `Arc` for the duration of one
    /// request; re-read for the next.
    pub fn get(&self) -> Arc<Tunables> {
        Arc::clone(&self.current.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Atomically replaces the whole set.
    pub fn swap(&self, tunables: Tunables) {
        *self.current.lock().unwrap_or_else(|p| p.into_inner()) = Arc::new(tunables);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::json::parse;

    #[test]
    fn defaults_validate_and_zero_knobs_do_not() {
        assert!(ServerConfig::default().validate().is_ok());
        assert!(ServerConfig::default().with_workers(0).validate().is_err());
        assert!(ServerConfig::default()
            .with_max_queue_depth(0)
            .validate()
            .is_err());
        assert!(ServerConfig::default()
            .with_watchdog(Duration::ZERO)
            .validate()
            .is_err());
        assert!(ServerConfig::default()
            .with_replay_buffer_bytes(0)
            .validate()
            .is_err());
        // Rate limiting needs a usable burst.
        assert!(ServerConfig::default()
            .with_rate_limit(5.0, 0.5)
            .validate()
            .is_err());
        assert!(ServerConfig::default()
            .with_rate_limit(5.0, 2.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn overlay_replaces_named_keys_and_rejects_unknown_ones() {
        let base = Tunables::from_config(&ServerConfig::default());
        let next = base
            .overlaid(
                &parse(r#"{"rate_per_sec": 7.5, "per_client_quota": 3, "watchdog_ms": 1000}"#)
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(next.rate_per_sec, 7.5);
        assert_eq!(next.per_client_quota, 3);
        assert_eq!(next.watchdog, Duration::from_secs(1));
        // Untouched keys keep their old values.
        assert_eq!(next.max_queue_depth, base.max_queue_depth);
        assert_eq!(next.retry_after_base_ms, base.retry_after_base_ms);

        assert!(base
            .overlaid(&parse(r#"{"typoed_knob": 1}"#).unwrap())
            .is_err());
        assert!(base
            .overlaid(&parse(r#"{"rate_per_sec": "x"}"#).unwrap())
            .is_err());
        assert!(base.overlaid(&parse(r#"[1]"#).unwrap()).is_err());
        // An overlay that validates to nonsense is rejected whole.
        assert!(base
            .overlaid(&parse(r#"{"watchdog_ms": 0}"#).unwrap())
            .is_err());
    }

    #[test]
    fn hot_swap_publishes_whole_sets() {
        let hot = HotTunables::new(Tunables::from_config(&ServerConfig::default()));
        let before = hot.get();
        let mut next = (*before).clone();
        next.rate_per_sec = 42.0;
        next.max_queue_depth = 3;
        hot.swap(next);
        let after = hot.get();
        assert_eq!(after.rate_per_sec, 42.0);
        assert_eq!(after.max_queue_depth, 3);
        // The old Arc still reads the old generation: requests in flight at
        // swap time keep a consistent view.
        assert_eq!(before.max_queue_depth, 64);
    }
}
