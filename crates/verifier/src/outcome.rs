//! Verification outcomes, counterexamples and errors.

use std::fmt;

use hanoi_lang::error::EvalError;
use hanoi_lang::symbol::Symbol;
use hanoi_lang::value::Value;

/// A failure of the verifier itself (as opposed to a counterexample).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifierError {
    /// The shared wall-clock deadline expired mid-check.
    Timeout,
    /// A module operation or the specification failed to evaluate (this
    /// indicates a broken benchmark, not a broken candidate).
    Eval(EvalError),
    /// Anything else.
    Other(String),
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifierError::Timeout => f.write_str("verification timed out"),
            VerifierError::Eval(e) => write!(f, "evaluation failed during verification: {e}"),
            VerifierError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for VerifierError {}

impl From<EvalError> for VerifierError {
    fn from(e: EvalError) -> Self {
        VerifierError::Eval(e)
    }
}

/// A sufficiency counterexample: a full specification argument tuple on which
/// the candidate invariant holds (for every abstract-type argument) but the
/// specification does not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SufficiencyCex {
    /// The full argument tuple, in specification parameter order.
    pub args: Vec<Value>,
    /// The values at the abstract-type positions (the ones the driver feeds
    /// back as negative examples).
    pub abstract_args: Vec<Value>,
}

/// The result of a sufficiency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SufficiencyOutcome {
    /// Every tested tuple satisfied the specification.
    Valid,
    /// A violating tuple was found.
    Cex(SufficiencyCex),
}

impl SufficiencyOutcome {
    /// `true` for [`SufficiencyOutcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, SufficiencyOutcome::Valid)
    }
}

/// An inductiveness counterexample `⟨S, V⟩` (Figure 3): the module operation
/// `op`, applied to `args`, produced values violating the candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InductivenessCex {
    /// The operation that witnessed the violation.
    pub op: Symbol,
    /// The full (first-order part of the) argument tuple.
    pub args: Vec<Value>,
    /// `S`: abstract-type values supplied to the module (arguments and, for
    /// higher-order operations, values returned by functional arguments).
    /// They satisfy the conditioning predicate `P` by construction.
    pub s: Vec<Value>,
    /// `V`: abstract-type values produced by the module that falsify the
    /// candidate `Q`.  Non-empty.
    pub v: Vec<Value>,
}

/// The result of a conditional-inductiveness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InductivenessOutcome {
    /// No violation was found within bounds.
    Valid,
    /// A violation was found.
    Cex(InductivenessCex),
}

impl InductivenessOutcome {
    /// `true` for [`InductivenessOutcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, InductivenessOutcome::Valid)
    }
}

impl fmt::Display for InductivenessCex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "operation `{}` applied to [", self.op)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str("] produced [")?;
        for (i, v) in self.v.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("] violating the candidate")
    }
}

impl fmt::Display for SufficiencyCex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("specification violated at [")?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(SufficiencyOutcome::Valid.is_valid());
        assert!(InductivenessOutcome::Valid.is_valid());
        let cex = InductivenessOutcome::Cex(InductivenessCex {
            op: Symbol::new("insert"),
            args: vec![Value::nat_list(&[0]), Value::nat(1)],
            s: vec![Value::nat_list(&[0])],
            v: vec![Value::nat_list(&[1, 0])],
        });
        assert!(!cex.is_valid());
    }

    #[test]
    fn display_mentions_the_operation_and_values() {
        let cex = InductivenessCex {
            op: Symbol::new("insert"),
            args: vec![Value::nat_list(&[0]), Value::nat(1)],
            s: vec![Value::nat_list(&[0])],
            v: vec![Value::nat_list(&[1, 0])],
        };
        let shown = cex.to_string();
        assert!(shown.contains("insert"));
        assert!(shown.contains("[1; 0]"));
        let scex = SufficiencyCex {
            args: vec![Value::nat_list(&[1, 1])],
            abstract_args: vec![],
        };
        assert!(scex.to_string().contains("[1; 1]"));
    }

    #[test]
    fn errors_display() {
        assert!(VerifierError::Timeout.to_string().contains("timed out"));
        let e: VerifierError = EvalError::OutOfFuel.into();
        assert!(e.to_string().contains("fuel"));
    }
}
