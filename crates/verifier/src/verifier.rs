//! The [`Verifier`] façade: one object bundling a problem, bounds and a
//! deadline, exposing the three checks the inference driver needs.

use std::sync::Arc;

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::digest::Digest;
use hanoi_lang::types::Type;
use hanoi_lang::value::Value;

use crate::bounds::{Deadline, VerifierBounds};
use crate::checkcache::{CheckCache, CheckCacheStats};
use crate::inductive::{
    check_conditional_inductiveness, check_conditional_inductiveness_filtered, PoolSpec,
};
use crate::outcome::{InductivenessOutcome, SufficiencyOutcome, VerifierError};
use crate::poolcache::{PoolCache, PoolCacheStats};
use crate::pools::CompiledPredicate;
use crate::tester::check_sufficiency;

/// The bounded enumerative verifier.
///
/// A `Verifier` is one *verification session*: it owns a shared
/// [`PoolCache`], so across all the checks made through it (a whole CEGIS
/// run, typically) each `(type, count, size)` pool is enumerated at most
/// once.  Cloning the verifier shares the cache.  An optional
/// [`CheckCache`] ([`Verifier::with_check_cache`]) additionally memoizes
/// whole check *outcomes* — the long-lived engine shares one per problem so
/// re-runs skip entire sweeps.
#[derive(Debug, Clone)]
pub struct Verifier<'p> {
    problem: &'p Problem,
    bounds: VerifierBounds,
    deadline: Deadline,
    parallelism: usize,
    pools: Arc<PoolCache>,
    checks: Option<Arc<CheckCache>>,
}

impl<'p> Verifier<'p> {
    /// A verifier with the paper's default bounds, no deadline, serial
    /// execution, and a fresh pool cache.
    pub fn new(problem: &'p Problem) -> Self {
        Verifier {
            problem,
            bounds: VerifierBounds::default(),
            deadline: Deadline::none(),
            parallelism: 1,
            pools: PoolCache::for_problem(problem),
            checks: None,
        }
    }

    /// Overrides the enumeration bounds.
    pub fn with_bounds(mut self, bounds: VerifierBounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Sets a wall-clock deadline shared by all checks.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the number of worker threads used by every check: `1` (the
    /// default) runs serially, `0` uses one worker per available core, any
    /// other value is taken literally.  Parallel runs produce outcomes
    /// identical to serial ones — counterexample selection is deterministic
    /// (least tuple under the enumeration order), see [`crate::parallel`].
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Shares an existing pool cache (e.g. to keep pools warm across several
    /// `Verifier` values over the same problem).
    pub fn with_pool_cache(mut self, pools: Arc<PoolCache>) -> Self {
        self.pools = pools;
        self
    }

    /// Shares a check-outcome cache: completed checks are memoized under
    /// structural digests of their full inputs (check kind, candidate, `V+`,
    /// bounds) and served without re-sweeping.  The cache must only ever be
    /// shared between verifiers over the *same* problem — outcomes are not
    /// keyed by module semantics (the engine's warm-start store keys the
    /// snapshot *files* by a problem fingerprint for exactly that reason).
    pub fn with_check_cache(mut self, checks: Arc<CheckCache>) -> Self {
        self.checks = Some(checks);
        self
    }

    /// Counter snapshot of the shared check-outcome cache (zeros when none
    /// is installed).
    pub fn check_cache_stats(&self) -> CheckCacheStats {
        self.checks.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// The pool cache backing this verification session.
    pub fn pool_cache(&self) -> &Arc<PoolCache> {
        &self.pools
    }

    /// Counter snapshot of this session's pool activity (hits, builds,
    /// predicate evaluations).
    pub fn pool_stats(&self) -> PoolCacheStats {
        self.pools.stats()
    }

    /// The effective worker count of this verifier (with `0` resolved to the
    /// available core count).
    pub fn workers(&self) -> usize {
        crate::parallel::effective_workers(self.parallelism)
    }

    /// The problem being verified.
    pub fn problem(&self) -> &'p Problem {
        self.problem
    }

    /// The bounds in effect.
    pub fn bounds(&self) -> &VerifierBounds {
        &self.bounds
    }

    /// `Verify Suf φ M [I]`: is the candidate sufficient for the spec?
    pub fn check_sufficiency(&self, invariant: &Expr) -> Result<SufficiencyOutcome, VerifierError> {
        let compute = || {
            check_sufficiency(
                self.problem,
                &self.pools,
                &self.bounds,
                &self.deadline,
                invariant,
                self.workers(),
            )
        };
        match &self.checks {
            Some(cache) => cache.sufficiency(Digest::of_expr(invariant), self.bounds, compute),
            None => compute(),
        }
    }

    /// `CondInductive V+ I`: is the candidate visibly inductive relative to
    /// the known-constructible set `v_plus`?
    pub fn check_visible_inductiveness(
        &self,
        v_plus: &[Value],
        invariant: &Expr,
    ) -> Result<InductivenessOutcome, VerifierError> {
        let compute = || {
            check_conditional_inductiveness(
                self.problem,
                &self.pools,
                &self.bounds,
                &self.deadline,
                PoolSpec::Known(v_plus),
                invariant,
                self.workers(),
            )
        };
        match &self.checks {
            Some(cache) => cache.visible(
                Digest::of_expr(invariant),
                Digest::of_values(v_plus),
                self.bounds,
                compute,
            ),
            None => compute(),
        }
    }

    /// `CondInductive I I`: is the candidate fully inductive?
    pub fn check_full_inductiveness(
        &self,
        invariant: &Expr,
    ) -> Result<InductivenessOutcome, VerifierError> {
        let compute = || {
            check_conditional_inductiveness(
                self.problem,
                &self.pools,
                &self.bounds,
                &self.deadline,
                PoolSpec::Satisfying(invariant),
                invariant,
                self.workers(),
            )
        };
        match &self.checks {
            Some(cache) => cache.full(Digest::of_expr(invariant), self.bounds, compute),
            None => compute(),
        }
    }

    /// `CondInductive I I` restricted to a single module operation — the
    /// LinearArbitrary baseline checks operations one at a time (§5.5).
    pub fn check_op_inductiveness(
        &self,
        op: &str,
        invariant: &Expr,
    ) -> Result<InductivenessOutcome, VerifierError> {
        let compute = || {
            check_conditional_inductiveness_filtered(
                self.problem,
                &self.pools,
                &self.bounds,
                &self.deadline,
                PoolSpec::Satisfying(invariant),
                invariant,
                Some(op),
                self.workers(),
            )
        };
        match &self.checks {
            Some(cache) => cache.op(op, Digest::of_expr(invariant), self.bounds, compute),
            None => compute(),
        }
    }

    /// `CondInductive P Q` with an arbitrary conditioning predicate — used by
    /// the ∧Str baseline, which strengthens relative to a previously accepted
    /// conjunct.
    pub fn check_conditional(
        &self,
        p: &Expr,
        q: &Expr,
    ) -> Result<InductivenessOutcome, VerifierError> {
        check_conditional_inductiveness(
            self.problem,
            &self.pools,
            &self.bounds,
            &self.deadline,
            PoolSpec::Satisfying(p),
            q,
            self.workers(),
        )
    }

    /// Tests whether `predicate` holds on every enumerated value of `ty`
    /// (up to single-quantifier bounds); returns the first violating value.
    /// This is the plain `Verify P` of §3.3, exposed for tests and baselines.
    pub fn find_violation(
        &self,
        ty: &Type,
        predicate: &Expr,
    ) -> Result<Option<Value>, VerifierError> {
        let compiled = CompiledPredicate::compile(self.problem, predicate, self.bounds.fuel)?
            .with_eval_counter(self.pools.eval_counter());
        let values = self.pools.pool(
            ty,
            self.bounds.single_count,
            self.bounds.single_size,
            self.workers(),
        );
        crate::parallel::find_first(values.len(), self.workers(), 64, |index| {
            if index % 256 == 0 && self.deadline.expired() {
                return Err(VerifierError::Timeout);
            }
            let value = &values[index];
            if compiled.test(value) {
                Ok(None)
            } else {
                Ok(Some(value.clone()))
            }
        })
    }

    /// The smallest `count` values of the concrete representation type — the
    /// sample the OneShot baseline labels with the specification.
    pub fn smallest_concrete_values(&self, count: usize) -> Vec<Value> {
        self.pools
            .pool(
                self.problem.concrete_type(),
                count,
                self.bounds.single_size,
                self.workers(),
            )
            .as_ref()
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::parser::parse_expr;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn end_to_end_checks_on_the_running_example() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let verifier = Verifier::new(&problem).with_bounds(VerifierBounds::quick());

        let no_dup = parse_expr(
            "fix inv (l : list) : bool = \
               match l with \
               | Nil -> True \
               | Cons (hd, tl) -> not (lookup tl hd) && inv tl \
               end",
        )
        .unwrap();

        // The paper's invariant passes all three checks.
        assert!(verifier.check_sufficiency(&no_dup).unwrap().is_valid());
        assert!(verifier
            .check_full_inductiveness(&no_dup)
            .unwrap()
            .is_valid());
        let v_plus = vec![Value::nat_list(&[]), Value::nat_list(&[1])];
        assert!(verifier
            .check_visible_inductiveness(&v_plus, &no_dup)
            .unwrap()
            .is_valid());

        // `true` is inductive but not sufficient; `sorted-heads-not-1` is
        // neither.
        let trivial = parse_expr("fun (l : list) -> True").unwrap();
        assert!(!verifier.check_sufficiency(&trivial).unwrap().is_valid());
        assert!(verifier
            .check_full_inductiveness(&trivial)
            .unwrap()
            .is_valid());
    }

    #[test]
    fn find_violation_locates_small_witnesses() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let verifier = Verifier::new(&problem).with_bounds(VerifierBounds::quick());
        let pred = parse_expr("fun (n : nat) -> not (n == 2)").unwrap();
        let violation = verifier.find_violation(&Type::named("nat"), &pred).unwrap();
        assert_eq!(violation, Some(Value::nat(2)));
        let tautology = parse_expr("fun (n : nat) -> n == n").unwrap();
        assert_eq!(
            verifier
                .find_violation(&Type::named("nat"), &tautology)
                .unwrap(),
            None
        );
    }

    #[test]
    fn smallest_concrete_values_start_with_nil() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let verifier = Verifier::new(&problem).with_bounds(VerifierBounds::quick());
        let values = verifier.smallest_concrete_values(5);
        assert_eq!(values.len(), 5);
        assert_eq!(values[0], Value::nat_list(&[]));
    }

    #[test]
    fn conditional_check_with_distinct_p_and_q() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let verifier = Verifier::new(&problem).with_bounds(VerifierBounds::quick());
        // P: lists of length <= 1 (a constructible-ish under-approximation);
        // Q: no duplicates.  Operations on P-values cannot create duplicates,
        // so CondInductive P Q holds.
        let p = parse_expr(
            "fun (l : list) -> match l with | Nil -> True | Cons (hd, tl) -> \
               match tl with | Nil -> True | Cons (h2, t2) -> False end end",
        )
        .unwrap();
        let q = parse_expr(
            "fix inv (l : list) : bool = \
               match l with | Nil -> True | Cons (hd, tl) -> not (lookup tl hd) && inv tl end",
        )
        .unwrap();
        assert!(verifier.check_conditional(&p, &q).unwrap().is_valid());
    }
}
