//! The shared, memoized value-pool subsystem.
//!
//! Every verifier check instantiates its quantifiers from *pools*: the
//! smallest `count` first-order values of a type, none larger than `size`
//! nodes (§4.3).  Historically each check re-enumerated its pools from
//! scratch, so a CEGIS run — dozens of candidates, three checks per
//! candidate, several quantifier positions per check — paid the same
//! enumeration cost over and over.  [`PoolCache`] makes enumeration a
//! once-per-session cost:
//!
//! * **per-size slabs** (`(Type, size) → Arc<[Value]>`) are the unit of
//!   construction and sharing.  A pool request only builds the slabs it is
//!   missing, so pools grow monotonically: asking for a larger `count` or
//!   `size` later extends the cached state instead of re-enumerating;
//! * **assembled pools** (`(Type, count, size) → Arc<Vec<Value>>`) are the
//!   size-ordered prefixes checks actually consume, shared by `Arc` so
//!   repeated checks pay zero clone cost;
//! * **function pools** memoize the enumerated higher-order argument
//!   candidates of §4.2, which are even more expensive to build (term
//!   generation plus evaluation) than value pools;
//! * slab construction is **parallelized** over the configured worker count
//!   using the same scoped-thread layer as the parallel verifier
//!   ([`crate::parallel`]): workers claim sizes from a shared cursor,
//!   largest first, each with a private [`ValueEnumerator`]; since
//!   [`ValueEnumerator::values_of_size`] is a deterministic function of
//!   `(type, size)`, the merged size-ordered result is byte-identical to a
//!   serial build regardless of scheduling.
//!
//! The cache is also the verification session's instrumentation hub: it
//! counts pool hits, slab/pool builds and predicate evaluations (the eval
//! counter is shared with [`crate::pools::CompiledPredicate`]), which the
//! inference driver surfaces through `RunStats`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use hanoi_abstraction::Problem;
use hanoi_lang::enumerate::ValueEnumerator;
use hanoi_lang::types::{Type, TypeEnv};
use hanoi_lang::value::Value;

use crate::bounds::VerifierBounds;
use crate::hof::{enumerate_function_candidates, FunctionCandidate};

/// Counter snapshot of one verification session's pool activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCacheStats {
    /// Pool requests answered from the cache.
    pub hits: u64,
    /// Pools assembled (value pools and function pools; at most one per
    /// distinct `(type, count, size)` / `(signature, bounds)` key).
    pub builds: u64,
    /// Per-size slabs enumerated (at most one per `(type, size)` key).
    pub slab_builds: u64,
    /// Slabs rebuilt from recorded warm-start shapes (see
    /// [`PoolCache::set_pending_shapes`]); a subset of `slab_builds`, `0`
    /// when no snapshot was restored or no pool was ever requested.
    pub slab_restores: u64,
    /// Predicate evaluations performed by compiled predicates wired to this
    /// cache (see [`PoolCache::eval_counter`]).
    pub predicate_evals: u64,
}

impl PoolCacheStats {
    /// Total pool requests (hits + builds).
    pub fn requests(&self) -> u64 {
        self.hits + self.builds
    }
}

/// Per-size slab store: all values of a type with exactly `size` nodes.
type SlabMap = HashMap<(Type, usize), Arc<Vec<Value>>>;
/// Assembled pool store, keyed by `(type, count, size)`.
type PoolMap = HashMap<(Type, usize, usize), Arc<Vec<Value>>>;
/// Function-candidate store, keyed by `(globals identity, signature, body
/// size, max count, fuel)`.  The problem's globals identity
/// ([`hanoi_lang::value::Env::identity`]) is part of the key because the
/// cached closures capture those globals — a cache shared across problems
/// must not serve one module's operations to another.  Fuel is part of the
/// key because enumeration *evaluates* each candidate and drops the ones
/// that run out of budget.
type FunctionMap = HashMap<(usize, Type, usize, usize, u64), Arc<Vec<FunctionCandidate>>>;

/// A shared, memoized store of enumeration pools for one verification
/// session.  Cheap to share (`Arc`), safe to use from the parallel
/// verifier's worker threads.
#[derive(Debug)]
pub struct PoolCache {
    tyenv: TypeEnv,
    /// Per-size slabs: all values of a type with exactly `size` nodes.
    slabs: Mutex<SlabMap>,
    /// Assembled pools: the first `count` values up to `size` nodes.
    pools: Mutex<PoolMap>,
    /// Enumerated higher-order argument candidates, keyed by interface
    /// signature and the HOF bounds that shaped the enumeration.
    functions: Mutex<FunctionMap>,
    /// Serializes cache *misses*: held across build-and-insert so that
    /// concurrent requests for the same key enumerate exactly once (hits
    /// never take it).
    build_lock: Mutex<()>,
    /// Slab shape keys recorded by a warm-start snapshot, awaiting their
    /// one-time lazy rebuild on the first pool request (values are
    /// deterministically re-derivable, so only the keys are persisted).
    pending_shapes: Mutex<Option<Vec<(Type, usize)>>>,
    hits: AtomicU64,
    builds: AtomicU64,
    slab_builds: AtomicU64,
    slab_restores: AtomicU64,
    evals: Arc<AtomicU64>,
}

impl PoolCache {
    /// An empty cache over the given data type environment.
    pub fn new(tyenv: TypeEnv) -> PoolCache {
        PoolCache {
            tyenv,
            slabs: Mutex::new(HashMap::new()),
            pools: Mutex::new(HashMap::new()),
            functions: Mutex::new(HashMap::new()),
            build_lock: Mutex::new(()),
            pending_shapes: Mutex::new(None),
            hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            slab_builds: AtomicU64::new(0),
            slab_restores: AtomicU64::new(0),
            evals: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A shareable cache for one problem's verification session.
    pub fn for_problem(problem: &Problem) -> Arc<PoolCache> {
        Arc::new(PoolCache::new(problem.tyenv.clone()))
    }

    /// The smallest `count` values of `ty` no larger than `size` nodes, in
    /// the enumeration order of
    /// [`ValueEnumerator::first_values`] — assembled once per
    /// `(ty, count, size)` and shared thereafter.  Missing per-size slabs
    /// are built over `workers` threads (`<= 1` = serially).
    pub fn pool(&self, ty: &Type, count: usize, size: usize, workers: usize) -> Arc<Vec<Value>> {
        self.restore_pending(workers);
        let key = (ty.clone(), count, size);
        if let Some(cached) = self.pools.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(cached);
        }

        // Serialize misses so concurrent requests for the same key enumerate
        // once; re-check under the lock (the race loser takes the hit path).
        let _building = self.build_lock.lock().unwrap();
        if let Some(cached) = self.pools.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(cached);
        }

        // Assemble incrementally, smallest sizes first, and stop enumerating
        // as soon as `count` values are collected — exactly like the
        // `first_values` sweep this cache replaces.  This matters for
        // tree-shaped types, whose per-size slabs grow exponentially: the
        // count bound is typically reached long before the size bound, and
        // building every slab up to `size` would materialize millions of
        // values nobody reads.  With several workers, slabs are built in
        // batches of `workers` sizes (slight speculative overshoot past the
        // cutoff, kept and reused by later, larger requests).
        let batch = crate::parallel::effective_workers(workers).max(1);
        let mut out = Vec::new();
        let mut next_size = 1usize;
        while next_size <= size && out.len() < count {
            let batch_end = (next_size + batch - 1).min(size);
            self.ensure_slab_range(ty, next_size, batch_end, workers);
            let slabs = self.slabs.lock().unwrap();
            'fill: for s in next_size..=batch_end {
                let slab = slabs
                    .get(&(ty.clone(), s))
                    .expect("ensure_slab_range built every size in the batch");
                for value in slab.iter() {
                    if out.len() >= count {
                        break 'fill;
                    }
                    out.push(value.clone());
                }
            }
            next_size = batch_end + 1;
        }
        let pool = Arc::new(out);
        self.builds.fetch_add(1, Ordering::Relaxed);
        self.pools.lock().unwrap().insert(key, Arc::clone(&pool));
        pool
    }

    /// The enumerated higher-order argument candidates for an interface
    /// signature `sig`, built once per `(sig, hof bounds)` key.
    pub fn function_pool(
        &self,
        problem: &Problem,
        sig: &Type,
        bounds: &VerifierBounds,
    ) -> Arc<Vec<FunctionCandidate>> {
        let key = (
            problem.globals.identity(),
            sig.clone(),
            bounds.hof_body_size,
            bounds.hof_max_functions,
            bounds.fuel,
        );
        if let Some(cached) = self.functions.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(cached);
        }
        let _building = self.build_lock.lock().unwrap();
        if let Some(cached) = self.functions.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(cached);
        }
        let pool = Arc::new(enumerate_function_candidates(problem, sig, bounds));
        self.builds.fetch_add(1, Ordering::Relaxed);
        self.functions
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&pool));
        pool
    }

    /// Builds every missing per-size slab of `ty` for sizes in
    /// `min_size..=max_size`.
    ///
    /// With more than one worker the missing sizes are claimed from a shared
    /// cursor, largest first (the cost of a size is heavily skewed towards
    /// the largest ones), each worker enumerating with a private
    /// [`ValueEnumerator`].  Slab contents are a deterministic function of
    /// `(ty, size)`, so the cache state after this call is identical for
    /// every worker count.
    fn ensure_slab_range(&self, ty: &Type, min_size: usize, max_size: usize, workers: usize) {
        // Snapshot what is already cached for this type: the missing sizes
        // are the work list, the present ones (any size, including below the
        // requested range) seed every enumerator so monotonic-growth
        // requests never recompute known slabs.
        type Seeds = Vec<(usize, Arc<Vec<Value>>)>;
        let (missing, seeds): (Vec<usize>, Seeds) = {
            let slabs = self.slabs.lock().unwrap();
            let mut missing = Vec::new();
            let mut seeds = Seeds::new();
            for s in (1..=max_size).rev() {
                match slabs.get(&(ty.clone(), s)) {
                    Some(slab) => seeds.push((s, Arc::clone(slab))),
                    None if s >= min_size => missing.push(s),
                    None => {}
                }
            }
            (missing, seeds)
        };
        if missing.is_empty() {
            return;
        }
        self.slab_builds
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        let seeded_enumerator = || {
            let mut enumerator = ValueEnumerator::new(&self.tyenv);
            for (s, slab) in &seeds {
                enumerator.seed(ty, *s, Arc::clone(slab));
            }
            enumerator
        };

        let workers = crate::parallel::effective_workers(workers).min(missing.len());
        if workers <= 1 {
            let mut enumerator = seeded_enumerator();
            let mut slabs = self.slabs.lock().unwrap();
            for &s in &missing {
                slabs.insert((ty.clone(), s), enumerator.values_of_size(ty, s));
            }
            return;
        }

        // Workers claim sizes largest-first (cost is heavily skewed towards
        // the largest sizes).  Each worker enumerates with a private,
        // pre-seeded enumerator; sub-slabs a worker derives for sizes
        // another worker owns are recomputed privately — acceptable because
        // the largest one or two sizes dominate the total cost.
        let cursor = AtomicUsize::new(0);
        let built: Mutex<Vec<(usize, Arc<Vec<Value>>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut enumerator = seeded_enumerator();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&s) = missing.get(index) else { return };
                        let slab = enumerator.values_of_size(ty, s);
                        built.lock().unwrap().push((s, slab));
                    }
                });
            }
        });
        let mut slabs = self.slabs.lock().unwrap();
        for (s, slab) in built.into_inner().unwrap() {
            slabs.insert((ty.clone(), s), slab);
        }
    }

    /// The `(type, size)` keys of every slab currently cached, sorted for
    /// deterministic snapshots.  Persisting the keys (not the values — those
    /// are deterministically re-derivable) lets a restored process rebuild
    /// its slabs once instead of re-deriving them piecemeal per request; see
    /// [`PoolCache::set_pending_shapes`].
    pub fn slab_shapes(&self) -> Vec<(Type, usize)> {
        let mut shapes: Vec<(Type, usize)> = {
            let slabs = self.slabs.lock().unwrap();
            let pending = self.pending_shapes.lock().unwrap();
            // A cache that never served a pool still owes its snapshot the
            // shapes it was restored with.
            slabs
                .keys()
                .cloned()
                .chain(pending.iter().flatten().cloned())
                .collect()
        };
        shapes.sort_by(|(a, sa), (b, sb)| (a.to_string(), sa).cmp(&(b.to_string(), sb)));
        shapes.dedup();
        shapes
    }

    /// Installs slab shape keys recorded by a warm-start snapshot.  The
    /// slabs themselves are rebuilt **lazily, once**, on the first pool
    /// request (a fully warm run that answers every check from the check
    /// cache never requests a pool and never pays for the rebuild); rebuilt
    /// slabs are counted in [`PoolCacheStats::slab_restores`].
    pub fn set_pending_shapes(&self, shapes: Vec<(Type, usize)>) {
        if !shapes.is_empty() {
            *self.pending_shapes.lock().unwrap() = Some(shapes);
        }
    }

    /// One-time lazy rebuild of restored slab shapes (no-op thereafter).
    fn restore_pending(&self, workers: usize) {
        let Some(shapes) = self.pending_shapes.lock().unwrap().take() else {
            return;
        };
        let before = self.slab_builds.load(Ordering::Relaxed);
        let mut by_type: HashMap<Type, Vec<usize>> = HashMap::new();
        for (ty, size) in shapes {
            by_type.entry(ty).or_default().push(size);
        }
        for (ty, mut sizes) in by_type {
            sizes.sort_unstable();
            sizes.dedup();
            // Contiguous runs rebuild in one parallel range each; gaps stay
            // unbuilt so the rebuild matches the recorded shapes exactly.
            let mut run = 0;
            while run < sizes.len() {
                let start = sizes[run];
                let mut end = start;
                while run + 1 < sizes.len() && sizes[run + 1] == end + 1 {
                    run += 1;
                    end = sizes[run];
                }
                self.ensure_slab_range(&ty, start, end, workers);
                run += 1;
            }
        }
        let built = self.slab_builds.load(Ordering::Relaxed) - before;
        self.slab_restores.fetch_add(built, Ordering::Relaxed);
    }

    /// The shared predicate-evaluation counter; hand it to
    /// [`crate::pools::CompiledPredicate::with_eval_counter`] so evaluations
    /// show up in this session's [`PoolCacheStats`].
    pub fn eval_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.evals)
    }

    /// A snapshot of the session counters.
    pub fn stats(&self) -> PoolCacheStats {
        PoolCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            slab_builds: self.slab_builds.load(Ordering::Relaxed),
            slab_restores: self.slab_restores.load(Ordering::Relaxed),
            predicate_evals: self.evals.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pools::enumerate_values;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list
        interface SET = sig
          type t
          val empty : t
          val lookup : t -> nat -> bool
        end
        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
        end
        spec (s : t) (i : nat) = not (lookup empty i)
    "#;

    fn problem() -> Problem {
        Problem::from_source(LIST_SET).unwrap()
    }

    #[test]
    fn pools_match_fresh_enumeration() {
        let problem = problem();
        let cache = PoolCache::for_problem(&problem);
        for workers in [1usize, 2, 0] {
            for (count, size) in [(10, 8), (50, 12), (400, 14)] {
                let cached = cache.pool(&Type::named("list"), count, size, workers);
                let fresh = enumerate_values(&problem, &Type::named("list"), count, size);
                assert_eq!(
                    *cached, fresh,
                    "count={count} size={size} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let problem = problem();
        let cache = PoolCache::for_problem(&problem);
        let first = cache.pool(&Type::named("list"), 100, 12, 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.builds, 1);
        let slabs_after_first = stats.slab_builds;
        assert!(slabs_after_first > 0);
        let second = cache.pool(&Type::named("list"), 100, 12, 1);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the slab");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.slab_builds, slabs_after_first, "a hit builds nothing");
    }

    #[test]
    fn pools_grow_monotonically() {
        let problem = problem();
        let cache = PoolCache::for_problem(&problem);
        cache.pool(&Type::named("list"), 50, 10, 1);
        let after_small = cache.stats().slab_builds;
        assert!(after_small > 0);
        // A larger request reuses the existing slabs and only enumerates the
        // missing sizes.
        cache.pool(&Type::named("list"), 5000, 12, 1);
        let after_large = cache.stats().slab_builds;
        assert!(after_large > after_small);
        assert!(
            after_large <= 12,
            "slab builds are bounded by the distinct sizes, got {after_large}"
        );
        // A *smaller* request builds nothing at all.
        cache.pool(&Type::named("list"), 10, 8, 1);
        assert_eq!(cache.stats().slab_builds, after_large);
        // Re-requesting an already-built size range builds nothing either.
        cache.pool(&Type::named("list"), 5000, 12, 1);
        assert_eq!(cache.stats().slab_builds, after_large);
    }

    #[test]
    fn slab_building_stops_once_count_is_reached() {
        // Tree-shaped types grow exponentially per size: reaching the count
        // bound must stop enumeration long before the size bound, exactly
        // like the `first_values` sweep the cache replaces.
        use hanoi_lang::types::{CtorDecl, DataDecl, TypeEnv};
        let mut tyenv = TypeEnv::new();
        tyenv
            .declare(DataDecl::new(
                "nat",
                vec![
                    CtorDecl::new("O", vec![]),
                    CtorDecl::new("S", vec![Type::named("nat")]),
                ],
            ))
            .unwrap();
        tyenv
            .declare(DataDecl::new(
                "tree",
                vec![
                    CtorDecl::new("Leaf", vec![]),
                    CtorDecl::new(
                        "Node",
                        vec![Type::named("tree"), Type::named("nat"), Type::named("tree")],
                    ),
                ],
            ))
            .unwrap();
        let cache = PoolCache::new(tyenv.clone());
        let pool = cache.pool(&Type::named("tree"), 100, 30, 1);
        assert_eq!(pool.len(), 100);
        let stats = cache.stats();
        assert!(
            stats.slab_builds < 15,
            "the count cutoff must stop slab enumeration early, \
             built {} slabs",
            stats.slab_builds
        );
        // And the prefix matches a fresh first_values sweep.
        let fresh = hanoi_lang::enumerate::ValueEnumerator::new(&tyenv).first_values(
            &Type::named("tree"),
            100,
            30,
        );
        assert_eq!(*pool, fresh);
    }

    #[test]
    fn parallel_slab_builds_are_deterministic() {
        let problem = problem();
        let serial = PoolCache::for_problem(&problem);
        let expected = serial.pool(&Type::named("list"), 3000, 14, 1);
        for workers in [2usize, 3, 8, 0] {
            let parallel = PoolCache::for_problem(&problem);
            let got = parallel.pool(&Type::named("list"), 3000, 14, workers);
            assert_eq!(*got, *expected, "workers={workers}");
        }
    }

    #[test]
    fn function_pools_are_cached() {
        let problem = problem();
        let cache = PoolCache::for_problem(&problem);
        let sig = Type::arrow(Type::named("nat"), Type::named("nat"));
        let bounds = VerifierBounds::quick();
        let first = cache.function_pool(&problem, &sig, &bounds);
        let second = cache.function_pool(&problem, &sig, &bounds);
        assert!(Arc::ptr_eq(&first, &second));
        assert!(!first.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }
}
