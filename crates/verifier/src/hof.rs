//! Enumeration of higher-order (functional) arguments.
//!
//! "There are many ways to build a function, so enumeratively verifying a
//! higher-order function requires searching through many possible functions"
//! (§5.4).  This module enumerates small lambda terms of the required
//! (concretised) function type, built from the module's operations, the
//! prelude and data constructors, and evaluates them to closures the
//! inductiveness checker can pass to module operations.

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::eval::Fuel;
use hanoi_lang::termgen::{Component, TermGenConfig, TermGenerator};
use hanoi_lang::types::Type;
use hanoi_lang::value::Value;

use crate::bounds::VerifierBounds;

/// One enumerated functional argument.
#[derive(Debug, Clone)]
pub struct FunctionCandidate {
    /// The lambda term (for diagnostics and reproducibility).
    pub expr: Expr,
    /// Its evaluated closure.
    pub value: Value,
    /// The interface-level signature of the position it fills (may mention
    /// the abstract type).
    pub sig: Type,
}

/// Enumerates candidate functional arguments for an argument position with
/// interface signature `sig` (e.g. `nat -> t -> t`).
///
/// The candidates are ordered by body size and capped at
/// `bounds.hof_max_functions`.
pub fn enumerate_function_candidates(
    problem: &Problem,
    sig: &Type,
    bounds: &VerifierBounds,
) -> Vec<FunctionCandidate> {
    let concrete_sig = sig.subst_abstract(problem.concrete_type());
    let components: Vec<Component> = problem
        .synthesis_components()
        .into_iter()
        .filter(|(_, ty)| ty.is_first_order())
        .map(|(name, ty)| Component::new(name, ty))
        .collect();
    let config = TermGenConfig {
        allow_eq: false,
        ..TermGenConfig::default()
    };
    let mut generator = TermGenerator::new(&problem.tyenv, components, config);
    let evaluator = problem.evaluator();
    let mut out = Vec::new();
    for expr in generator.lambdas_up_to(&concrete_sig, bounds.hof_body_size) {
        if out.len() >= bounds.hof_max_functions {
            break;
        }
        let mut fuel = Fuel::new(bounds.fuel);
        if let Ok(value) = evaluator.eval(&problem.globals, &expr, &mut fuel) {
            // Candidates are applied over thousands of tuples each; put the
            // closure body on the slot-resolved fast path once up front.
            let value = hanoi_lang::resolve::resolve_closure_value(&value);
            out.push(FunctionCandidate {
                expr,
                value,
                sig: sig.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOF_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface HOSET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val lookup : t -> nat -> bool
          val map : (nat -> nat) -> t -> t
          val fold : (nat -> t -> t) -> t -> t -> t
        end

        module ListSet : HOSET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec map (f : nat -> nat) (l : t) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> Cons (f hd, map f tl)
            end
          let rec fold (f : nat -> t -> t) (a : t) (s : t) : t =
            match s with
            | Nil -> a
            | Cons (hd, tl) -> f hd (fold f a tl)
            end
        end

        spec (s : t) (i : nat) = lookup (insert s i) i
    "#;

    #[test]
    fn enumerates_first_order_function_arguments() {
        let problem = Problem::from_source(HOF_SET).unwrap();
        let bounds = VerifierBounds::quick();
        let sig = Type::arrow(Type::named("nat"), Type::named("nat"));
        let candidates = enumerate_function_candidates(&problem, &sig, &bounds);
        assert!(!candidates.is_empty());
        assert!(candidates.len() <= bounds.hof_max_functions);
        // Every candidate must actually be applicable to a nat.
        let evaluator = problem.evaluator();
        for c in &candidates {
            let out = evaluator
                .apply(c.value.clone(), Value::nat(1), &mut Fuel::standard())
                .unwrap();
            assert!(
                out.as_nat().is_some(),
                "candidate {} returned {out}",
                c.expr
            );
        }
    }

    #[test]
    fn enumerates_abstract_mentioning_function_arguments() {
        let problem = Problem::from_source(HOF_SET).unwrap();
        let bounds = VerifierBounds::quick();
        let sig = Type::arrows(vec![Type::named("nat"), Type::Abstract], Type::Abstract);
        let candidates = enumerate_function_candidates(&problem, &sig, &bounds);
        assert!(!candidates.is_empty());
        // Candidates should include something that uses a module operation,
        // e.g. a function equivalent to `fun x acc -> insert acc x` or one
        // that just returns the accumulator.
        let evaluator = problem.evaluator();
        let mut produced_lists = 0usize;
        for c in &candidates {
            let mut fuel = Fuel::standard();
            if let Ok(out) = evaluator.apply_many(
                c.value.clone(),
                &[Value::nat(1), Value::nat_list(&[2])],
                &mut fuel,
            ) {
                if out.as_list().is_some() {
                    produced_lists += 1;
                }
            }
        }
        assert!(produced_lists > 0);
    }

    #[test]
    fn candidate_count_respects_the_bound() {
        let problem = Problem::from_source(HOF_SET).unwrap();
        let mut bounds = VerifierBounds::quick();
        bounds.hof_max_functions = 3;
        let sig = Type::arrow(Type::named("nat"), Type::named("nat"));
        let candidates = enumerate_function_candidates(&problem, &sig, &bounds);
        assert!(candidates.len() <= 3);
    }
}
