//! The verifier: size-bounded enumerative testing (§4.3) and the
//! conditional-inductiveness checker of Figure 3, with counterexample
//! extraction.
//!
//! The paper's `Verify` component is deliberately *unsound*: it tests
//! predicates on all data structures from smallest to largest up to fixed
//! bounds (3000 structures of at most 30 AST nodes for single-quantifier
//! properties; 3000 structures of at most 15 nodes per quantifier and 30000
//! tuples in total for multi-quantifier properties), short-circuiting as soon
//! as a counterexample is found.  Despite the unsoundness, the paper reports
//! that every invariant inferred on the benchmark suite is correct; our
//! reproduction keeps the same design and the same defaults.
//!
//! Three checks are provided by [`Verifier`]:
//!
//! * **sufficiency** (`Suf φ M [I]`, Definition 3.4) — every tuple of spec
//!   arguments whose abstract-type components satisfy the candidate invariant
//!   must satisfy the specification;
//! * **visible inductiveness** (`CondInductive V+ I`) — module operations
//!   applied to known-constructible values from `V+` must produce values
//!   satisfying the candidate;
//! * **full inductiveness** (`CondInductive I I`) — module operations applied
//!   to *any* enumerated value satisfying the candidate must produce values
//!   satisfying the candidate.
//!
//! Higher-order operations are handled per §4.2: functional arguments are
//! enumerated as small lambda terms and wrapped in logging contracts so that
//! abstract-type values crossing the module boundary contribute to the
//! counterexample sets.

//! All three checks accept a `parallelism` knob (see
//! [`Verifier::with_parallelism`]): candidate×value work is chunked over a
//! scoped thread pool, short-circuiting on the first counterexample while
//! keeping counterexample selection deterministic — the reported
//! counterexample is always the least tuple under the enumeration order,
//! regardless of which worker finds one first, so parallel runs are
//! outcome-identical to serial runs.

#![warn(missing_docs)]

pub mod bounds;
pub mod checkcache;
pub mod hof;
pub mod inductive;
pub mod outcome;
pub mod parallel;
pub mod poolcache;
pub mod pools;
pub mod tester;
pub mod verifier;

pub use bounds::{Deadline, VerifierBounds};
pub use checkcache::{CheckCache, CheckCacheStats};
pub use outcome::{
    InductivenessCex, InductivenessOutcome, SufficiencyCex, SufficiencyOutcome, VerifierError,
};
pub use parallel::effective_workers;
pub use poolcache::{PoolCache, PoolCacheStats};
pub use verifier::Verifier;
