//! The cross-run, disk-persistable check-outcome cache.
//!
//! Bounded enumerative checks are *deterministic*: the outcome of
//! `Verify Suf`/`CondInductive` is a pure function of the problem, the
//! candidate, the bounds and (for visible inductiveness) the known-positive
//! set — parallelism never changes it (see [`crate::parallel`]), and the
//! deadline can only abort a check, not change its verdict.  A CEGIS re-run
//! of the same problem therefore re-computes byte-identical sweeps: dozens of
//! candidates × three checks × thousands of tuples, all previously answered.
//!
//! [`CheckCache`] memoizes completed check outcomes under exactly that
//! function's arguments.  A long-lived engine keeps one per problem, so
//! re-running a problem (experiment-harness reruns, figure8 ablations,
//! repeated service requests) skips entire verification sweeps instead of
//! merely re-reading warm value pools.  Only *completed* outcomes are stored:
//! a check aborted by a deadline or cancellation is never cached, and errors
//! are never persisted.
//!
//! # Keys
//!
//! Check inputs participate as **structural digests**
//! ([`hanoi_lang::digest::Digest`]): the candidate as the α-invariant
//! 128-bit fingerprint of its resolved AST, the `V+` set as the fingerprint
//! of its ordered value sequence, plus the full [`VerifierBounds`] and (for
//! per-operation checks) the operation name.  Digest keys replaced the
//! previous pretty-printed candidate strings for two reasons: they are
//! small and constant-size (a sweep-size candidate used to pretty-print to
//! kilobytes, and `V+` values were stored wholesale), and they are
//! *interner-independent* — valid across processes, which is what makes the
//! cache snapshotable to disk ([`CheckCache::to_json`] /
//! [`CheckCache::from_json`]).  The price is a 2⁻¹²⁸ per-pair collision
//! probability instead of exact keys; see the "cache soundness" section of
//! `docs/ARCHITECTURE.md`.
//!
//! # Eviction
//!
//! The cache is bounded by a true LRU: when an insert would exceed
//! `capacity`, the least-recently-*used* entry (hits refresh recency) is
//! evicted and counted ([`CheckCacheStats::evictions`], surfaced as
//! `RunStats::check_cache_evictions`).  This replaced the previous
//! stop-admitting-at-capacity policy, under which a long-lived service
//! session could permanently pin a stale working set while every new
//! candidate missed.
//!
//! # Snapshots
//!
//! [`CheckCache::to_json`] serializes the entries (keys, outcomes,
//! counterexample values) in recency order; [`CheckCache::from_json`]
//! rebuilds a cache from a snapshot, rejecting version mismatches, corrupt
//! structure and oversized entry lists.  Counterexample values serialize
//! through [`hanoi_lang::json::value_to_json`]; entries whose values cannot
//! be serialized structurally (they never arise — counterexample values are
//! first-order — but the code does not assume it) are skipped rather than
//! guessed at.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hanoi_lang::digest::Digest;
use hanoi_lang::json::{value_from_json, value_to_json, Json, JsonError};
use hanoi_lang::symbol::Symbol;
use hanoi_lang::value::Value;

use crate::bounds::VerifierBounds;
use crate::outcome::{InductivenessCex, InductivenessOutcome, SufficiencyCex, SufficiencyOutcome};

/// Which of the verifier's checks an entry memoizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CheckKind {
    /// `Verify Suf φ M [I]`.
    Sufficiency,
    /// `CondInductive V+ I` (visible inductiveness).
    Visible,
    /// `CondInductive I I` (full inductiveness).
    Full,
    /// `CondInductive I I` restricted to one operation (the LA baseline).
    Op,
}

impl CheckKind {
    fn as_str(self) -> &'static str {
        match self {
            CheckKind::Sufficiency => "sufficiency",
            CheckKind::Visible => "visible",
            CheckKind::Full => "full",
            CheckKind::Op => "op",
        }
    }

    fn from_str(s: &str) -> Option<CheckKind> {
        match s {
            "sufficiency" => Some(CheckKind::Sufficiency),
            "visible" => Some(CheckKind::Visible),
            "full" => Some(CheckKind::Full),
            "op" => Some(CheckKind::Op),
            _ => None,
        }
    }
}

/// One memoized check, keyed by the complete argument tuple of the check
/// function in digest form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CheckKey {
    kind: CheckKind,
    /// α-invariant structural digest of the (resolved) candidate.
    candidate: Digest,
    /// Digest of the ordered `V+` sequence ([`CheckKind::Visible`] only;
    /// `Digest(0)` otherwise).
    v_plus: Digest,
    /// The restricted operation ([`CheckKind::Op`] only; empty otherwise).
    op: String,
    /// The bounds the sweep ran under — part of the check function's
    /// arguments, so part of the key.
    bounds: VerifierBounds,
}

/// A memoized outcome (checks have two result shapes).
#[derive(Debug, Clone, PartialEq, Eq)]
enum CachedOutcome {
    Inductiveness(InductivenessOutcome),
    Sufficiency(SufficiencyOutcome),
}

/// Counter snapshot of a check cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCacheStats {
    /// Checks answered from the cache (no sweep executed).
    pub hits: u64,
    /// Checks that ran their sweep (and, if completed, were recorded).
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Entries evicted because an insert exceeded the capacity (LRU order).
    pub evictions: u64,
}

/// The LRU store: entries carry a recency stamp, and a stamp-ordered index
/// finds the least recently used entry in `O(log n)`.
#[derive(Debug, Default)]
struct LruState {
    entries: HashMap<CheckKey, (u64, CachedOutcome)>,
    recency: BTreeMap<u64, CheckKey>,
    clock: u64,
}

impl LruState {
    fn touch(&mut self, key: &CheckKey) -> Option<CachedOutcome> {
        self.clock += 1;
        let stamp = self.clock;
        let (old, outcome) = match self.entries.get_mut(key) {
            Some((old_stamp, outcome)) => {
                let old = *old_stamp;
                *old_stamp = stamp;
                (old, outcome.clone())
            }
            None => return None,
        };
        self.recency.remove(&old);
        self.recency.insert(stamp, key.clone());
        Some(outcome)
    }

    /// Inserts (or refreshes) an entry; returns how many entries were
    /// evicted to stay within `capacity`.
    fn insert(&mut self, key: CheckKey, outcome: CachedOutcome, capacity: usize) -> u64 {
        self.clock += 1;
        let stamp = self.clock;
        if let Some((old, _)) = self.entries.insert(key.clone(), (stamp, outcome)) {
            self.recency.remove(&old);
        }
        self.recency.insert(stamp, key);
        let mut evicted = 0;
        while self.entries.len() > capacity {
            let (_, oldest) = self
                .recency
                .pop_first()
                .expect("recency index tracks every entry");
            self.entries.remove(&oldest);
            evicted += 1;
        }
        evicted
    }
}

/// A shared, LRU-bounded memo of completed verifier check outcomes for one
/// problem.  Cheap to share (`Arc`), safe to use concurrently, and
/// snapshotable to disk for cross-process reuse.
#[derive(Debug)]
pub struct CheckCache {
    state: Mutex<LruState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for CheckCache {
    fn default() -> Self {
        CheckCache::new(Self::DEFAULT_CAPACITY)
    }
}

impl CheckCache {
    /// Default entry budget: generous for any realistic CEGIS working set.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Hard ceiling on how many entries a snapshot may carry — a corrupt or
    /// hostile snapshot cannot make [`CheckCache::from_json`] allocate
    /// unboundedly.
    pub const MAX_SNAPSHOT_ENTRIES: usize = 65_536;

    /// The snapshot format version written by [`CheckCache::to_json`].  Bump
    /// it whenever the key digests ([`hanoi_lang::digest`]) or the entry
    /// encoding change shape; loaders reject mismatching versions cleanly.
    pub const SNAPSHOT_VERSION: u64 = 1;

    /// An empty cache holding at most `capacity` outcomes.
    pub fn new(capacity: usize) -> Self {
        CheckCache {
            state: Mutex::new(LruState::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CheckCacheStats {
        CheckCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.state.lock().unwrap().entries.len() as u64,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn lookup(&self, key: &CheckKey) -> Option<CachedOutcome> {
        let found = self.state.lock().unwrap().touch(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn store(&self, key: CheckKey, outcome: CachedOutcome) {
        let evicted = self
            .state
            .lock()
            .unwrap()
            .insert(key, outcome, self.capacity);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Memoizes an inductiveness-shaped check: returns the cached outcome or
    /// runs `compute`, recording its result when it completed.
    fn inductiveness(
        &self,
        key: CheckKey,
        compute: impl FnOnce() -> Result<InductivenessOutcome, crate::VerifierError>,
    ) -> Result<InductivenessOutcome, crate::VerifierError> {
        if let Some(CachedOutcome::Inductiveness(outcome)) = self.lookup(&key) {
            return Ok(outcome);
        }
        let outcome = compute()?;
        self.store(key, CachedOutcome::Inductiveness(outcome.clone()));
        Ok(outcome)
    }

    /// Memoized sufficiency check (see [`CheckCache::inductiveness`]).
    pub(crate) fn sufficiency(
        &self,
        candidate: Digest,
        bounds: VerifierBounds,
        compute: impl FnOnce() -> Result<SufficiencyOutcome, crate::VerifierError>,
    ) -> Result<SufficiencyOutcome, crate::VerifierError> {
        let key = CheckKey {
            kind: CheckKind::Sufficiency,
            candidate,
            v_plus: Digest(0),
            op: String::new(),
            bounds,
        };
        if let Some(CachedOutcome::Sufficiency(outcome)) = self.lookup(&key) {
            return Ok(outcome);
        }
        let outcome = compute()?;
        self.store(key, CachedOutcome::Sufficiency(outcome.clone()));
        Ok(outcome)
    }

    /// Memoized visible-inductiveness check: `v_plus` is the digest of the
    /// ordered known-positive sequence ([`Digest::of_values`]).
    pub(crate) fn visible(
        &self,
        candidate: Digest,
        v_plus: Digest,
        bounds: VerifierBounds,
        compute: impl FnOnce() -> Result<InductivenessOutcome, crate::VerifierError>,
    ) -> Result<InductivenessOutcome, crate::VerifierError> {
        self.inductiveness(
            CheckKey {
                kind: CheckKind::Visible,
                candidate,
                v_plus,
                op: String::new(),
                bounds,
            },
            compute,
        )
    }

    /// Memoized full-inductiveness check.
    pub(crate) fn full(
        &self,
        candidate: Digest,
        bounds: VerifierBounds,
        compute: impl FnOnce() -> Result<InductivenessOutcome, crate::VerifierError>,
    ) -> Result<InductivenessOutcome, crate::VerifierError> {
        self.inductiveness(
            CheckKey {
                kind: CheckKind::Full,
                candidate,
                v_plus: Digest(0),
                op: String::new(),
                bounds,
            },
            compute,
        )
    }

    /// Memoized single-operation inductiveness check.
    pub(crate) fn op(
        &self,
        op: &str,
        candidate: Digest,
        bounds: VerifierBounds,
        compute: impl FnOnce() -> Result<InductivenessOutcome, crate::VerifierError>,
    ) -> Result<InductivenessOutcome, crate::VerifierError> {
        self.inductiveness(
            CheckKey {
                kind: CheckKind::Op,
                candidate,
                v_plus: Digest(0),
                op: op.to_string(),
                bounds,
            },
            compute,
        )
    }

    /// Serializes the cache to a versioned snapshot.  Entries are written in
    /// recency order (least recently used first), so a restored cache evicts
    /// in the same order the live one would have.  Completed outcomes only
    /// ever reach the cache, so nothing error-shaped can be persisted.
    pub fn to_json(&self) -> Json {
        // Copy the entries out under the lock (cheap `Arc`/value clones),
        // then encode outside it: concurrent checks on the same problem must
        // not stall behind JSON construction.
        let snapshot: Vec<(CheckKey, CachedOutcome)> = {
            let state = self.state.lock().unwrap();
            state
                .recency
                .values()
                .filter_map(|key| Some((key.clone(), state.entries.get(key)?.1.clone())))
                .collect()
        };
        let entries: Vec<Json> = snapshot
            .iter()
            .filter_map(|(key, outcome)| {
                let outcome = outcome_to_json(outcome)?;
                Some(Json::obj([("key", key_to_json(key)), ("outcome", outcome)]))
            })
            .collect();
        Json::obj([
            ("version", Json::Num(Self::SNAPSHOT_VERSION as f64)),
            ("kind", Json::Str("check-cache".to_string())),
            ("entries", Json::Arr(entries)),
        ])
    }

    /// Rebuilds a cache (with entry budget `capacity`) from the output of
    /// [`CheckCache::to_json`].  Rejects version mismatches, structural
    /// corruption and snapshots carrying more than
    /// [`CheckCache::MAX_SNAPSHOT_ENTRIES`] entries; when a snapshot holds
    /// more entries than `capacity`, only the most recently used `capacity`
    /// of them are kept.  Counters start at zero — a restored cache reports
    /// only the activity of its own process.
    pub fn from_json(json: &Json, capacity: usize) -> Result<CheckCache, JsonError> {
        let corrupt = |message: &str| JsonError {
            message: format!("check-cache snapshot: {message}"),
            offset: 0,
        };
        let version = json
            .get("version")
            .and_then(Json::as_usize)
            .ok_or_else(|| corrupt("missing version"))?;
        if version as u64 != Self::SNAPSHOT_VERSION {
            return Err(corrupt(&format!(
                "version {version} does not match supported version {}",
                Self::SNAPSHOT_VERSION
            )));
        }
        if json.get("kind").and_then(Json::as_str) != Some("check-cache") {
            return Err(corrupt("wrong snapshot kind"));
        }
        let entries = json
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| corrupt("missing entries"))?;
        if entries.len() > Self::MAX_SNAPSHOT_ENTRIES {
            return Err(corrupt("snapshot exceeds the entry ceiling"));
        }
        let cache = CheckCache::new(capacity);
        {
            let mut state = cache.state.lock().unwrap();
            // Oldest first: inserting in written order reproduces recency.
            for entry in entries {
                let key = key_from_json(
                    entry
                        .get("key")
                        .ok_or_else(|| corrupt("entry without key"))?,
                )
                .ok_or_else(|| corrupt("malformed key"))?;
                let outcome = outcome_from_json(
                    entry
                        .get("outcome")
                        .ok_or_else(|| corrupt("entry without outcome"))?,
                )
                .ok_or_else(|| corrupt("malformed outcome"))?;
                state.insert(key, outcome, capacity);
            }
        }
        Ok(cache)
    }

    /// The `kind` tag of one recency stripe produced by
    /// [`CheckCache::split_snapshot`].
    pub const STRIPE_KIND: &'static str = "check-cache-stripe";

    /// Splits the output of [`CheckCache::to_json`] into *recency stripes*:
    /// consecutive runs of at most `stripe_len` entries, oldest first, each a
    /// self-describing JSON object (`kind = "check-cache-stripe"`).  Stripes
    /// are the chunk granularity of the content-addressed warm-start store
    /// (`hanoi_store`): the chunk digest of a stripe is a pure function of
    /// its entries, so two saves whose older entries did not move produce
    /// byte-identical old stripes — a fleet sync re-transfers only the
    /// stripes that actually changed.  Returns `None` when `snapshot` is not
    /// a valid check-cache snapshot (wrong kind/version/shape).
    pub fn split_snapshot(snapshot: &Json, stripe_len: usize) -> Option<Vec<Json>> {
        if snapshot.get("version").and_then(Json::as_usize)? as u64 != Self::SNAPSHOT_VERSION
            || snapshot.get("kind").and_then(Json::as_str)? != "check-cache"
        {
            return None;
        }
        let entries = snapshot.get("entries").and_then(Json::as_arr)?;
        let stripe_len = stripe_len.max(1);
        Some(
            entries
                .chunks(stripe_len)
                .map(|stripe| {
                    Json::obj([
                        ("version", Json::Num(Self::SNAPSHOT_VERSION as f64)),
                        ("kind", Json::Str(Self::STRIPE_KIND.to_string())),
                        ("entries", Json::Arr(stripe.to_vec())),
                    ])
                })
                .collect(),
        )
    }

    /// Reassembles stripes (in the order [`CheckCache::split_snapshot`]
    /// produced them — oldest first) into one snapshot consumable by
    /// [`CheckCache::from_json`].  Stripes that are not well-formed stripe
    /// objects are *skipped* rather than failing the whole join — chunk-level
    /// corruption isolation: a quarantined stripe costs its own entries,
    /// never the rest of the cache.  Returns the joined snapshot and how many
    /// stripes were skipped.
    pub fn join_stripes<'a>(stripes: impl IntoIterator<Item = &'a Json>) -> (Json, usize) {
        let mut entries: Vec<Json> = Vec::new();
        let mut skipped = 0;
        for stripe in stripes {
            let valid = stripe
                .get("version")
                .and_then(Json::as_usize)
                .map(|v| v as u64)
                == Some(Self::SNAPSHOT_VERSION)
                && stripe.get("kind").and_then(Json::as_str) == Some(Self::STRIPE_KIND);
            match stripe.get("entries").and_then(Json::as_arr) {
                Some(stripe_entries) if valid => entries.extend(stripe_entries.iter().cloned()),
                _ => skipped += 1,
            }
        }
        let joined = Json::obj([
            ("version", Json::Num(Self::SNAPSHOT_VERSION as f64)),
            ("kind", Json::Str("check-cache".to_string())),
            ("entries", Json::Arr(entries)),
        ]);
        (joined, skipped)
    }
}

fn bounds_to_json(bounds: &VerifierBounds) -> Json {
    Json::Arr(
        [
            bounds.single_count as f64,
            bounds.single_size as f64,
            bounds.multi_count as f64,
            bounds.multi_size as f64,
            bounds.total_cap as f64,
            bounds.hof_body_size as f64,
            bounds.hof_max_functions as f64,
            bounds.fuel as f64,
        ]
        .into_iter()
        .map(Json::Num)
        .collect(),
    )
}

fn bounds_from_json(json: &Json) -> Option<VerifierBounds> {
    let fields = json.as_arr()?;
    if fields.len() != 8 {
        return None;
    }
    let at = |i: usize| fields[i].as_usize();
    Some(VerifierBounds {
        single_count: at(0)?,
        single_size: at(1)?,
        multi_count: at(2)?,
        multi_size: at(3)?,
        total_cap: at(4)?,
        hof_body_size: at(5)?,
        hof_max_functions: at(6)?,
        fuel: at(7)? as u64,
    })
}

fn key_to_json(key: &CheckKey) -> Json {
    Json::obj([
        ("kind", Json::Str(key.kind.as_str().to_string())),
        ("candidate", Json::Str(key.candidate.to_hex())),
        ("v_plus", Json::Str(key.v_plus.to_hex())),
        ("op", Json::Str(key.op.clone())),
        ("bounds", bounds_to_json(&key.bounds)),
    ])
}

fn key_from_json(json: &Json) -> Option<CheckKey> {
    Some(CheckKey {
        kind: CheckKind::from_str(json.get("kind")?.as_str()?)?,
        candidate: Digest::from_hex(json.get("candidate")?.as_str()?)?,
        v_plus: Digest::from_hex(json.get("v_plus")?.as_str()?)?,
        op: json.get("op")?.as_str()?.to_string(),
        bounds: bounds_from_json(json.get("bounds")?)?,
    })
}

fn values_to_json(values: &[Value]) -> Option<Json> {
    let items: Option<Vec<Json>> = values.iter().map(value_to_json).collect();
    Some(Json::Arr(items?))
}

fn values_from_json(json: &Json) -> Option<Vec<Value>> {
    json.as_arr()?.iter().map(value_from_json).collect()
}

fn outcome_to_json(outcome: &CachedOutcome) -> Option<Json> {
    Some(match outcome {
        CachedOutcome::Inductiveness(InductivenessOutcome::Valid) => {
            Json::obj([("inductiveness", Json::Str("valid".to_string()))])
        }
        CachedOutcome::Inductiveness(InductivenessOutcome::Cex(cex)) => Json::obj([(
            "inductiveness",
            Json::obj([
                ("op", Json::Str(cex.op.as_str().to_string())),
                ("args", values_to_json(&cex.args)?),
                ("s", values_to_json(&cex.s)?),
                ("v", values_to_json(&cex.v)?),
            ]),
        )]),
        CachedOutcome::Sufficiency(SufficiencyOutcome::Valid) => {
            Json::obj([("sufficiency", Json::Str("valid".to_string()))])
        }
        CachedOutcome::Sufficiency(SufficiencyOutcome::Cex(cex)) => Json::obj([(
            "sufficiency",
            Json::obj([
                ("args", values_to_json(&cex.args)?),
                ("abstract_args", values_to_json(&cex.abstract_args)?),
            ]),
        )]),
    })
}

fn outcome_from_json(json: &Json) -> Option<CachedOutcome> {
    if let Some(body) = json.get("inductiveness") {
        if body.as_str() == Some("valid") {
            return Some(CachedOutcome::Inductiveness(InductivenessOutcome::Valid));
        }
        return Some(CachedOutcome::Inductiveness(InductivenessOutcome::Cex(
            InductivenessCex {
                op: Symbol::new(body.get("op")?.as_str()?),
                args: values_from_json(body.get("args")?)?,
                s: values_from_json(body.get("s")?)?,
                v: values_from_json(body.get("v")?)?,
            },
        )));
    }
    if let Some(body) = json.get("sufficiency") {
        if body.as_str() == Some("valid") {
            return Some(CachedOutcome::Sufficiency(SufficiencyOutcome::Valid));
        }
        return Some(CachedOutcome::Sufficiency(SufficiencyOutcome::Cex(
            SufficiencyCex {
                args: values_from_json(body.get("args")?)?,
                abstract_args: values_from_json(body.get("abstract_args")?)?,
            },
        )));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(name: &str) -> Digest {
        Digest::of_str(name)
    }

    fn cex() -> InductivenessOutcome {
        InductivenessOutcome::Cex(InductivenessCex {
            op: Symbol::new("insert"),
            args: vec![Value::nat(1)],
            s: vec![],
            v: vec![Value::nat_list(&[1, 1])],
        })
    }

    #[test]
    fn completed_outcomes_are_served_from_the_cache() {
        let cache = CheckCache::default();
        let bounds = VerifierBounds::quick();
        let mut computed = 0;
        for _ in 0..3 {
            let outcome = cache
                .full(digest_of("inv"), bounds, || {
                    computed += 1;
                    Ok(cex())
                })
                .unwrap();
            assert_eq!(outcome, cex());
        }
        assert_eq!(computed, 1, "the sweep must run exactly once");
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn errors_are_never_cached() {
        let cache = CheckCache::default();
        let bounds = VerifierBounds::quick();
        let timeout: Result<InductivenessOutcome, crate::VerifierError> =
            cache.full(digest_of("inv"), bounds, || {
                Err(crate::VerifierError::Timeout)
            });
        assert!(timeout.is_err());
        // The next call computes for real.
        let ok = cache.full(digest_of("inv"), bounds, || Ok(InductivenessOutcome::Valid));
        assert_eq!(ok.unwrap(), InductivenessOutcome::Valid);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn keys_distinguish_kind_bounds_and_v_plus() {
        let cache = CheckCache::default();
        let quick = VerifierBounds::quick();
        let paper = VerifierBounds::paper();
        let valid = || Ok(InductivenessOutcome::Valid);
        cache.full(digest_of("inv"), quick, valid).unwrap();
        // Same candidate, different bounds: a distinct entry.
        cache.full(digest_of("inv"), paper, valid).unwrap();
        // Same candidate, visible with two different V+ sets: distinct.
        cache
            .visible(
                digest_of("inv"),
                Digest::of_values(&[Value::nat(0)]),
                quick,
                valid,
            )
            .unwrap();
        cache
            .visible(
                digest_of("inv"),
                Digest::of_values(&[Value::nat(1)]),
                quick,
                valid,
            )
            .unwrap();
        cache.op("insert", digest_of("inv"), quick, valid).unwrap();
        assert_eq!(cache.stats().entries, 5);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        let cache = CheckCache::new(2);
        let bounds = VerifierBounds::quick();
        let valid = || Ok(InductivenessOutcome::Valid);
        cache.full(digest_of("a"), bounds, valid).unwrap();
        cache.full(digest_of("b"), bounds, valid).unwrap();
        // Touch `a` so `b` becomes the least recently used entry…
        let mut recomputed = false;
        cache
            .full(digest_of("a"), bounds, || {
                recomputed = true;
                Ok(InductivenessOutcome::Valid)
            })
            .unwrap();
        assert!(!recomputed, "`a` must still be cached");
        // …then exceed the capacity: `b` is evicted, `a` survives.
        cache.full(digest_of("c"), bounds, valid).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        let mut b_recomputed = false;
        cache
            .full(digest_of("b"), bounds, || {
                b_recomputed = true;
                Ok(InductivenessOutcome::Valid)
            })
            .unwrap();
        assert!(b_recomputed, "`b` was the LRU entry and must be gone");
        // Re-inserting `b` evicted `a` (the LRU among {a, c}); `c`, the most
        // recently inserted entry, survives.
        assert_eq!(cache.stats().evictions, 2);
        let mut c_recomputed = false;
        cache
            .full(digest_of("c"), bounds, || {
                c_recomputed = true;
                Ok(InductivenessOutcome::Valid)
            })
            .unwrap();
        assert!(!c_recomputed, "`c` must have survived the second eviction");
    }

    #[test]
    fn admission_never_stops_new_entries_keep_landing() {
        // The pre-LRU behaviour stopped admitting at capacity; now the
        // *newest* entry always lands and the oldest leaves.
        let cache = CheckCache::new(2);
        let bounds = VerifierBounds::quick();
        for i in 0..5 {
            cache
                .full(digest_of(&format!("inv{i}")), bounds, || {
                    Ok(InductivenessOutcome::Valid)
                })
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 3);
        // The most recent entry is resident.
        let mut recomputed = false;
        cache
            .full(digest_of("inv4"), bounds, || {
                recomputed = true;
                Ok(InductivenessOutcome::Valid)
            })
            .unwrap();
        assert!(!recomputed);
    }

    #[test]
    fn snapshots_round_trip_entries_and_recency() {
        let cache = CheckCache::new(8);
        let bounds = VerifierBounds::quick();
        cache.full(digest_of("a"), bounds, || Ok(cex())).unwrap();
        cache
            .sufficiency(digest_of("b"), bounds, || Ok(SufficiencyOutcome::Valid))
            .unwrap();
        cache
            .sufficiency(digest_of("s"), bounds, || {
                Ok(SufficiencyOutcome::Cex(SufficiencyCex {
                    args: vec![Value::nat_list(&[1, 1]), Value::nat(1)],
                    abstract_args: vec![Value::nat_list(&[1, 1])],
                }))
            })
            .unwrap();
        cache
            .visible(
                digest_of("a"),
                Digest::of_values(&[Value::nat(0)]),
                bounds,
                || Ok(InductivenessOutcome::Valid),
            )
            .unwrap();
        cache
            .op("insert", digest_of("a"), bounds, || {
                Ok(InductivenessOutcome::Valid)
            })
            .unwrap();

        let snapshot = cache.to_json().render_pretty();
        let parsed = hanoi_lang::json::parse(&snapshot).unwrap();
        let restored = CheckCache::from_json(&parsed, 8).unwrap();
        assert_eq!(restored.stats().entries, 5);
        assert_eq!(restored.stats().hits, 0, "restored counters start at zero");

        // Every entry answers from the restored cache without recomputing.
        let mut recomputed = false;
        let outcome = restored
            .full(digest_of("a"), bounds, || {
                recomputed = true;
                Ok(InductivenessOutcome::Valid)
            })
            .unwrap();
        assert!(!recomputed);
        assert_eq!(outcome, cex(), "counterexample values survived the disk");
        let suf = restored
            .sufficiency(digest_of("s"), bounds, || {
                recomputed = true;
                Ok(SufficiencyOutcome::Valid)
            })
            .unwrap();
        assert!(!recomputed);
        assert!(matches!(suf, SufficiencyOutcome::Cex(_)));
    }

    #[test]
    fn snapshot_restore_respects_a_smaller_capacity() {
        let cache = CheckCache::new(8);
        let bounds = VerifierBounds::quick();
        for i in 0..6 {
            cache
                .full(digest_of(&format!("inv{i}")), bounds, || {
                    Ok(InductivenessOutcome::Valid)
                })
                .unwrap();
        }
        let restored = CheckCache::from_json(&cache.to_json(), 3).unwrap();
        assert_eq!(restored.stats().entries, 3);
        // The *most recently used* entries survive the shrink.
        let mut recomputed = false;
        restored
            .full(digest_of("inv5"), bounds, || {
                recomputed = true;
                Ok(InductivenessOutcome::Valid)
            })
            .unwrap();
        assert!(!recomputed);
    }

    #[test]
    fn stripes_round_trip_and_respect_recency_order() {
        let cache = CheckCache::new(32);
        let bounds = VerifierBounds::quick();
        for i in 0..7 {
            cache
                .full(digest_of(&format!("inv{i}")), bounds, || {
                    Ok(InductivenessOutcome::Valid)
                })
                .unwrap();
        }
        let snapshot = cache.to_json();
        let stripes = CheckCache::split_snapshot(&snapshot, 3).unwrap();
        assert_eq!(stripes.len(), 3, "7 entries at stripe length 3");
        for stripe in &stripes {
            assert_eq!(
                stripe.get("kind").and_then(Json::as_str),
                Some(CheckCache::STRIPE_KIND)
            );
        }
        let (joined, skipped) = CheckCache::join_stripes(&stripes);
        assert_eq!(skipped, 0);
        assert_eq!(
            joined.render_pretty(),
            snapshot.render_pretty(),
            "split ∘ join must be the identity on snapshots"
        );
        let restored = CheckCache::from_json(&joined, 32).unwrap();
        assert_eq!(restored.stats().entries, 7);
        // Only entries that did not change stripes produce identical chunks:
        // appending one entry leaves the full older stripes byte-stable.
        cache
            .full(digest_of("inv7"), bounds, || {
                Ok(InductivenessOutcome::Valid)
            })
            .unwrap();
        let stripes_after = CheckCache::split_snapshot(&cache.to_json(), 3).unwrap();
        assert_eq!(stripes_after.len(), 3, "8 entries at stripe length 3");
        assert_eq!(
            stripes_after[0].render_pretty(),
            stripes[0].render_pretty(),
            "untouched old stripes must be byte-identical across saves"
        );
        assert_eq!(stripes_after[1].render_pretty(), stripes[1].render_pretty());
    }

    #[test]
    fn corrupt_stripes_are_skipped_not_fatal() {
        let cache = CheckCache::new(32);
        let bounds = VerifierBounds::quick();
        for i in 0..4 {
            cache
                .full(digest_of(&format!("inv{i}")), bounds, || {
                    Ok(InductivenessOutcome::Valid)
                })
                .unwrap();
        }
        let mut stripes = CheckCache::split_snapshot(&cache.to_json(), 2).unwrap();
        assert_eq!(stripes.len(), 2);
        // One stripe is garbage: the join proceeds with the other.
        stripes[0] = Json::Str("not a stripe".to_string());
        let (joined, skipped) = CheckCache::join_stripes(&stripes);
        assert_eq!(skipped, 1);
        let restored = CheckCache::from_json(&joined, 32).unwrap();
        assert_eq!(
            restored.stats().entries,
            2,
            "the surviving stripe's entries must all restore"
        );
        // A wrong-kind object is also a skip, not a join of foreign data.
        let foreign = Json::obj([
            ("version", Json::Num(1.0)),
            ("kind", Json::Str("term-bank-part".to_string())),
            ("entries", Json::Arr(vec![])),
        ]);
        let (_, skipped) = CheckCache::join_stripes([&foreign]);
        assert_eq!(skipped, 1);
        // Splitting something that is not a check-cache snapshot is refused.
        assert!(CheckCache::split_snapshot(&foreign, 2).is_none());
    }

    #[test]
    fn corrupt_and_mismatched_snapshots_are_rejected() {
        let cache = CheckCache::default();
        let bounds = VerifierBounds::quick();
        cache
            .full(digest_of("inv"), bounds, || Ok(InductivenessOutcome::Valid))
            .unwrap();
        let good = cache.to_json();

        // Version mismatch.
        let mut wrong_version = good.clone();
        if let Json::Obj(map) = &mut wrong_version {
            map.insert("version".to_string(), Json::Num(99.0));
        }
        assert!(CheckCache::from_json(&wrong_version, 8).is_err());

        // Wrong kind.
        let mut wrong_kind = good.clone();
        if let Json::Obj(map) = &mut wrong_kind {
            map.insert("kind".to_string(), Json::Str("term-bank".to_string()));
        }
        assert!(CheckCache::from_json(&wrong_kind, 8).is_err());

        // Structural corruption inside an entry.
        let mut bad_entry = good.clone();
        if let Json::Obj(map) = &mut bad_entry {
            map.insert(
                "entries".to_string(),
                Json::Arr(vec![Json::obj([("key", Json::Num(1.0))])]),
            );
        }
        assert!(CheckCache::from_json(&bad_entry, 8).is_err());

        // Not an object at all.
        assert!(CheckCache::from_json(&Json::Num(3.0), 8).is_err());
    }
}
