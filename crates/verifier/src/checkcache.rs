//! The cross-run check-outcome cache.
//!
//! Bounded enumerative checks are *deterministic*: the outcome of
//! `Verify Suf`/`CondInductive` is a pure function of the problem, the
//! candidate, the bounds and (for visible inductiveness) the known-positive
//! set — parallelism never changes it (see [`crate::parallel`]), and the
//! deadline can only abort a check, not change its verdict.  A CEGIS re-run
//! of the same problem therefore re-computes byte-identical sweeps: dozens of
//! candidates × three checks × thousands of tuples, all previously answered.
//!
//! [`CheckCache`] memoizes completed check outcomes under exactly that
//! function's arguments.  A long-lived engine keeps one per problem, so
//! re-running a problem (experiment-harness reruns, figure8 ablations,
//! repeated service requests) skips entire verification sweeps instead of
//! merely re-reading warm value pools.  Keys hold the full inputs (the
//! pretty-printed candidate, the `V+` values, the bounds) — no fingerprint
//! collisions — and only *completed* outcomes are stored: a check aborted by
//! a deadline or cancellation is never cached.
//!
//! The cache is bounded: when it reaches `capacity` entries it stops
//! admitting new ones (the working set of one CEGIS problem is small; a
//! pathological candidate stream cannot grow it without bound).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hanoi_lang::value::Value;

use crate::bounds::VerifierBounds;
use crate::outcome::{InductivenessOutcome, SufficiencyOutcome};

/// One memoized check, keyed by the complete argument tuple of the check
/// function.  The candidate participates as its pretty-printed form (exprs
/// print deterministically and the printer is total).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CheckKey {
    /// `Verify Suf φ M [I]`.
    Sufficiency { candidate: String },
    /// `CondInductive V+ I` (visible inductiveness): the pool is the known
    /// set itself, so it is part of the key, in order (the sweep enumerates
    /// it in order).
    Visible {
        candidate: String,
        v_plus: Vec<Value>,
    },
    /// `CondInductive I I` (full inductiveness).
    Full { candidate: String },
    /// `CondInductive I I` restricted to one operation (the LA baseline).
    Op { op: String, candidate: String },
}

/// A memoized outcome (checks have two result shapes).
#[derive(Debug, Clone)]
enum CachedOutcome {
    Inductiveness(InductivenessOutcome),
    Sufficiency(SufficiencyOutcome),
}

/// Counter snapshot of a check cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCacheStats {
    /// Checks answered from the cache (no sweep executed).
    pub hits: u64,
    /// Checks that ran their sweep (and, if completed, were recorded).
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
}

/// A shared, bounded memo of completed verifier check outcomes for one
/// problem.  Cheap to share (`Arc`), safe to use concurrently.
#[derive(Debug)]
pub struct CheckCache {
    entries: Mutex<HashMap<(CheckKey, VerifierBounds), CachedOutcome>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for CheckCache {
    fn default() -> Self {
        CheckCache::new(Self::DEFAULT_CAPACITY)
    }
}

impl CheckCache {
    /// Default entry budget: generous for any realistic CEGIS working set.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An empty cache holding at most `capacity` outcomes.
    pub fn new(capacity: usize) -> Self {
        CheckCache {
            entries: Mutex::new(HashMap::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CheckCacheStats {
        CheckCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap().len() as u64,
        }
    }

    fn lookup(&self, key: &(CheckKey, VerifierBounds)) -> Option<CachedOutcome> {
        let found = self.entries.lock().unwrap().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn store(&self, key: (CheckKey, VerifierBounds), outcome: CachedOutcome) {
        let mut entries = self.entries.lock().unwrap();
        if entries.len() < self.capacity || entries.contains_key(&key) {
            entries.insert(key, outcome);
        }
    }

    /// Memoizes an inductiveness-shaped check: returns the cached outcome or
    /// runs `compute`, recording its result when it completed.
    fn inductiveness(
        &self,
        key: CheckKey,
        bounds: VerifierBounds,
        compute: impl FnOnce() -> Result<InductivenessOutcome, crate::VerifierError>,
    ) -> Result<InductivenessOutcome, crate::VerifierError> {
        let key = (key, bounds);
        if let Some(CachedOutcome::Inductiveness(outcome)) = self.lookup(&key) {
            return Ok(outcome);
        }
        let outcome = compute()?;
        self.store(key, CachedOutcome::Inductiveness(outcome.clone()));
        Ok(outcome)
    }

    /// Memoized sufficiency check (see [`CheckCache::inductiveness`]).
    pub(crate) fn sufficiency(
        &self,
        candidate: String,
        bounds: VerifierBounds,
        compute: impl FnOnce() -> Result<SufficiencyOutcome, crate::VerifierError>,
    ) -> Result<SufficiencyOutcome, crate::VerifierError> {
        let key = (CheckKey::Sufficiency { candidate }, bounds);
        if let Some(CachedOutcome::Sufficiency(outcome)) = self.lookup(&key) {
            return Ok(outcome);
        }
        let outcome = compute()?;
        self.store(key, CachedOutcome::Sufficiency(outcome.clone()));
        Ok(outcome)
    }

    /// Memoized visible-inductiveness check.
    pub(crate) fn visible(
        &self,
        candidate: String,
        v_plus: &[Value],
        bounds: VerifierBounds,
        compute: impl FnOnce() -> Result<InductivenessOutcome, crate::VerifierError>,
    ) -> Result<InductivenessOutcome, crate::VerifierError> {
        self.inductiveness(
            CheckKey::Visible {
                candidate,
                v_plus: v_plus.to_vec(),
            },
            bounds,
            compute,
        )
    }

    /// Memoized full-inductiveness check.
    pub(crate) fn full(
        &self,
        candidate: String,
        bounds: VerifierBounds,
        compute: impl FnOnce() -> Result<InductivenessOutcome, crate::VerifierError>,
    ) -> Result<InductivenessOutcome, crate::VerifierError> {
        self.inductiveness(CheckKey::Full { candidate }, bounds, compute)
    }

    /// Memoized single-operation inductiveness check.
    pub(crate) fn op(
        &self,
        op: &str,
        candidate: String,
        bounds: VerifierBounds,
        compute: impl FnOnce() -> Result<InductivenessOutcome, crate::VerifierError>,
    ) -> Result<InductivenessOutcome, crate::VerifierError> {
        self.inductiveness(
            CheckKey::Op {
                op: op.to_string(),
                candidate,
            },
            bounds,
            compute,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::InductivenessCex;
    use hanoi_lang::symbol::Symbol;

    fn cex() -> InductivenessOutcome {
        InductivenessOutcome::Cex(InductivenessCex {
            op: Symbol::new("insert"),
            args: vec![Value::nat(1)],
            s: vec![],
            v: vec![Value::nat_list(&[1, 1])],
        })
    }

    #[test]
    fn completed_outcomes_are_served_from_the_cache() {
        let cache = CheckCache::default();
        let bounds = VerifierBounds::quick();
        let mut computed = 0;
        for _ in 0..3 {
            let outcome = cache
                .full("inv".to_string(), bounds, || {
                    computed += 1;
                    Ok(cex())
                })
                .unwrap();
            assert_eq!(outcome, cex());
        }
        assert_eq!(computed, 1, "the sweep must run exactly once");
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn errors_are_never_cached() {
        let cache = CheckCache::default();
        let bounds = VerifierBounds::quick();
        let timeout: Result<InductivenessOutcome, crate::VerifierError> =
            cache.full("inv".into(), bounds, || Err(crate::VerifierError::Timeout));
        assert!(timeout.is_err());
        // The next call computes for real.
        let ok = cache.full("inv".into(), bounds, || Ok(InductivenessOutcome::Valid));
        assert_eq!(ok.unwrap(), InductivenessOutcome::Valid);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn keys_distinguish_kind_bounds_and_v_plus() {
        let cache = CheckCache::default();
        let quick = VerifierBounds::quick();
        let paper = VerifierBounds::paper();
        let valid = || Ok(InductivenessOutcome::Valid);
        cache.full("inv".into(), quick, valid).unwrap();
        // Same candidate, different bounds: a distinct entry.
        cache.full("inv".into(), paper, valid).unwrap();
        // Same candidate, visible with two different V+ sets: distinct.
        cache
            .visible("inv".into(), &[Value::nat(0)], quick, valid)
            .unwrap();
        cache
            .visible("inv".into(), &[Value::nat(1)], quick, valid)
            .unwrap();
        cache.op("insert", "inv".into(), quick, valid).unwrap();
        assert_eq!(cache.stats().entries, 5);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn the_capacity_bounds_admission() {
        let cache = CheckCache::new(2);
        let bounds = VerifierBounds::quick();
        for i in 0..5 {
            cache
                .full(format!("inv{i}"), bounds, || {
                    Ok(InductivenessOutcome::Valid)
                })
                .unwrap();
        }
        assert_eq!(cache.stats().entries, 2);
        // Entries admitted before the cap still hit.
        let mut computed = false;
        cache
            .full("inv0".into(), bounds, || {
                computed = true;
                Ok(InductivenessOutcome::Valid)
            })
            .unwrap();
        assert!(!computed);
    }
}
