//! Shared helpers for the verifier's quantifier instantiation: compiled
//! predicates, value pools and capped cartesian products.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::enumerate::ValueEnumerator;
use hanoi_lang::eval::Fuel;
use hanoi_lang::resolve::resolve;
use hanoi_lang::types::Type;
use hanoi_lang::value::Value;

use crate::outcome::VerifierError;

/// A candidate predicate (`τc -> bool`) evaluated once to a closure so that
/// repeated tests only pay for one application each.
///
/// Compilation runs the slot-resolution pass
/// ([`hanoi_lang::resolve::resolve`]) over the predicate first, so every
/// subsequent test evaluates the body on the interpreter's indexed fast path
/// instead of the name-based environment walk.
#[derive(Debug, Clone)]
pub struct CompiledPredicate<'p> {
    problem: &'p Problem,
    closure: Value,
    fuel: u64,
    evals: Option<Arc<AtomicU64>>,
}

impl<'p> CompiledPredicate<'p> {
    /// Evaluates `predicate` (an expression closed over the problem's
    /// globals) to a function value, slot-resolving it first.
    pub fn compile(
        problem: &'p Problem,
        predicate: &Expr,
        fuel: u64,
    ) -> Result<Self, VerifierError> {
        let resolved = resolve(predicate);
        let closure = problem
            .evaluator()
            .eval_resolved(&problem.globals, &resolved, &mut Fuel::new(fuel))
            .map_err(VerifierError::Eval)?;
        Ok(CompiledPredicate {
            problem,
            closure,
            fuel,
            evals: None,
        })
    }

    /// Wires the predicate to a shared evaluation counter (typically
    /// [`crate::poolcache::PoolCache::eval_counter`]); every subsequent
    /// [`CompiledPredicate::test`] increments it.
    pub fn with_eval_counter(mut self, counter: Arc<AtomicU64>) -> Self {
        self.evals = Some(counter);
        self
    }

    /// Tests the predicate on one value.  Any evaluation failure (divergence
    /// of a synthesized candidate, a match failure, …) counts as `false`,
    /// matching the paper's treatment of misbehaving candidates.
    pub fn test(&self, value: &Value) -> bool {
        if let Some(counter) = &self.evals {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        let mut fuel = Fuel::new(self.fuel);
        self.problem
            .evaluator()
            .apply_pred(&self.closure, value, &mut fuel)
            .unwrap_or(false)
    }
}

/// The smallest `count` values of `ty`, no larger than `size` nodes.
pub fn enumerate_values(problem: &Problem, ty: &Type, count: usize, size: usize) -> Vec<Value> {
    let mut enumerator = ValueEnumerator::new(&problem.tyenv);
    enumerator.first_values(ty, count, size)
}

/// Visits the cartesian product of `pools`, at most `cap` tuples, in
/// lexicographic order.  The visitor may stop early by returning
/// [`ControlFlow::Break`]; the break value is returned.
///
/// Returns `Ok(None)` when the product was exhausted (or capped) without a
/// break, and propagates visitor errors.
pub fn bounded_product<'a, T, R, E>(
    pools: &'a [Vec<T>],
    cap: usize,
    mut visit: impl FnMut(&[&'a T]) -> Result<ControlFlow<R>, E>,
) -> Result<Option<R>, E> {
    if pools.iter().any(|p| p.is_empty()) {
        return Ok(None);
    }
    let mut indices = vec![0usize; pools.len()];
    let mut visited = 0usize;
    loop {
        if visited >= cap {
            return Ok(None);
        }
        let current: Vec<&T> = indices
            .iter()
            .zip(pools)
            .map(|(&i, pool)| &pool[i])
            .collect();
        match visit(&current)? {
            ControlFlow::Break(result) => return Ok(Some(result)),
            ControlFlow::Continue(()) => {}
        }
        visited += 1;
        // Advance the odometer.
        let mut position = pools.len();
        loop {
            if position == 0 {
                return Ok(None);
            }
            position -= 1;
            indices[position] += 1;
            if indices[position] < pools[position].len() {
                break;
            }
            indices[position] = 0;
        }
    }
}

/// Number of tuples [`search_product`] will visit: the size of the cartesian
/// product of `pools`, capped at `cap`.
pub fn product_len<T>(pools: &[Vec<T>], cap: usize) -> usize {
    let mut total = 1usize;
    for pool in pools {
        total = total.saturating_mul(pool.len());
    }
    total.min(cap)
}

/// Decodes a flat lexicographic index into one tuple of the cartesian
/// product of `pools` (the last pool varies fastest, matching
/// [`bounded_product`]'s visit order).
pub fn decode_tuple<T>(pools: &[Vec<T>], mut flat: usize) -> Vec<&T> {
    let mut tuple = vec![None; pools.len()];
    for (slot, pool) in tuple.iter_mut().zip(pools).rev() {
        *slot = Some(&pool[flat % pool.len()]);
        flat /= pool.len();
    }
    tuple
        .into_iter()
        .map(|slot| slot.expect("every slot is filled"))
        .collect()
}

/// Searches the (capped) cartesian product of `pools` for the first tuple on
/// which `visit` breaks, distributing tuples over `workers` threads.
///
/// Serial-equivalent by construction: whatever thread breaks first, the
/// reported break is always the one at the least lexicographic tuple index
/// (see [`crate::parallel::find_first`]), so callers observe exactly the
/// counterexample a `workers = 1` run would report.  `visit` must therefore
/// be a pure function of the tuple.
pub fn search_product<'a, T, R, E>(
    pools: &'a [Vec<T>],
    cap: usize,
    workers: usize,
    visit: impl Fn(&[&'a T]) -> Result<ControlFlow<R>, E> + Sync,
) -> Result<Option<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
{
    if pools.iter().any(|p| p.is_empty()) {
        return Ok(None);
    }
    if workers <= 1 {
        return bounded_product(pools, cap, visit);
    }
    let len = product_len(pools, cap);
    crate::parallel::find_first(len, workers, PRODUCT_CHUNK, |flat| {
        match visit(&decode_tuple(pools, flat))? {
            ControlFlow::Break(result) => Ok(Some(result)),
            ControlFlow::Continue(()) => Ok(None),
        }
    })
}

/// Chunk size for parallel product search: large enough to amortize the
/// claim, small enough that the short-circuit cutoff stays tight (a tuple
/// evaluation runs the interpreter, so chunks are already milliseconds).
const PRODUCT_CHUNK: usize = 64;

/// Collects the abstract-type components of a first-order value, guided by
/// its interface-level type — the `{|v|}σ` function of Figure 3.
pub fn collect_abstract(value: &Value, sig: &Type) -> Vec<Value> {
    match sig {
        Type::Abstract => vec![value.clone()],
        Type::Tuple(sigs) => match value {
            Value::Tuple(items) if items.len() == sigs.len() => sigs
                .iter()
                .zip(items.iter())
                .flat_map(|(s, v)| collect_abstract(v, s))
                .collect(),
            _ => Vec::new(),
        },
        Type::Named(_) | Type::Arrow(_, _) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::parser::parse_expr;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list
        interface SET = sig
          type t
          val empty : t
          val lookup : t -> nat -> bool
        end
        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
        end
        spec (s : t) (i : nat) = not (lookup empty i)
    "#;

    #[test]
    fn compiled_predicates_test_values() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let pred = parse_expr("fun (l : list) -> not (lookup l 0)").unwrap();
        let compiled = CompiledPredicate::compile(&problem, &pred, 100_000).unwrap();
        assert!(compiled.test(&Value::nat_list(&[1, 2])));
        assert!(!compiled.test(&Value::nat_list(&[0])));
    }

    #[test]
    fn predicate_evaluation_errors_count_as_false() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        // A predicate that diverges on every input.
        let pred = parse_expr("fix loop (l : list) : bool = loop l").unwrap();
        let compiled = CompiledPredicate::compile(&problem, &pred, 10_000).unwrap();
        assert!(!compiled.test(&Value::nat_list(&[])));
    }

    #[test]
    fn enumerate_values_orders_by_size() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let values = enumerate_values(&problem, &Type::named("list"), 20, 30);
        assert_eq!(values.len(), 20);
        assert!(values.windows(2).all(|w| w[0].size() <= w[1].size()));
    }

    #[test]
    fn bounded_product_visits_in_order_and_respects_cap() {
        let pools = vec![vec![1, 2, 3], vec![10, 20]];
        let mut seen = Vec::new();
        let result: Result<Option<()>, ()> = bounded_product(&pools, 100, |tuple| {
            seen.push((*tuple[0], *tuple[1]));
            Ok(ControlFlow::Continue(()))
        });
        assert_eq!(result, Ok(None));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], (1, 10));
        assert_eq!(seen[5], (3, 20));

        let mut count = 0usize;
        let _: Result<Option<()>, ()> = bounded_product(&pools, 4, |_| {
            count += 1;
            Ok(ControlFlow::Continue(()))
        });
        assert_eq!(count, 4);
    }

    #[test]
    fn bounded_product_breaks_early() {
        let pools = vec![vec![1, 2, 3]];
        let result: Result<Option<i32>, ()> = bounded_product(&pools, 100, |tuple| {
            if *tuple[0] == 2 {
                Ok(ControlFlow::Break(*tuple[0]))
            } else {
                Ok(ControlFlow::Continue(()))
            }
        });
        assert_eq!(result, Ok(Some(2)));
    }

    #[test]
    fn bounded_product_with_empty_pool_visits_nothing() {
        let pools: Vec<Vec<i32>> = vec![vec![1, 2], vec![]];
        let result: Result<Option<()>, ()> = bounded_product(&pools, 10, |_| {
            panic!("should not be called");
        });
        assert_eq!(result, Ok(None));
    }

    #[test]
    fn decode_tuple_matches_bounded_product_order() {
        let pools = vec![vec![1, 2, 3], vec![10, 20], vec![100, 200]];
        let mut visited: Vec<Vec<i32>> = Vec::new();
        let _: Result<Option<()>, ()> = bounded_product(&pools, 1000, |tuple| {
            visited.push(tuple.iter().map(|&&x| x).collect());
            Ok(ControlFlow::Continue(()))
        });
        assert_eq!(visited.len(), product_len(&pools, 1000));
        for (flat, expected) in visited.iter().enumerate() {
            let decoded: Vec<i32> = decode_tuple(&pools, flat).into_iter().copied().collect();
            assert_eq!(&decoded, expected, "flat index {flat}");
        }
    }

    #[test]
    fn search_product_is_serial_equivalent() {
        // The first tuple whose components sum above a threshold; parallel
        // search must find the same (lexicographically least) one as serial.
        let pools = vec![
            (0..7).collect::<Vec<i64>>(),
            (0..9).collect(),
            (0..5).collect(),
        ];
        for threshold in [3i64, 9, 14, 100] {
            let serial: Option<Vec<i64>> = search_product(&pools, 10_000, 1, |tuple| {
                let sum: i64 = tuple.iter().copied().sum();
                Ok::<_, ()>(if sum >= threshold {
                    ControlFlow::Break(tuple.iter().map(|&&x| x).collect())
                } else {
                    ControlFlow::Continue(())
                })
            })
            .unwrap();
            for workers in [2, 4, 8] {
                let parallel: Option<Vec<i64>> = search_product(&pools, 10_000, workers, |tuple| {
                    let sum: i64 = tuple.iter().copied().sum();
                    Ok::<_, ()>(if sum >= threshold {
                        ControlFlow::Break(tuple.iter().map(|&&x| x).collect())
                    } else {
                        ControlFlow::Continue(())
                    })
                })
                .unwrap();
                assert_eq!(parallel, serial, "threshold={threshold} workers={workers}");
            }
        }
    }

    #[test]
    fn search_product_respects_the_cap() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pools = vec![(0..100).collect::<Vec<i32>>(), (0..100).collect()];
        for workers in [1, 4] {
            let visited = AtomicUsize::new(0);
            let found: Option<()> = search_product(&pools, 37, workers, |_| {
                visited.fetch_add(1, Ordering::Relaxed);
                Ok::<_, ()>(ControlFlow::Continue(()))
            })
            .unwrap();
            assert_eq!(found, None);
            assert_eq!(visited.load(Ordering::Relaxed), 37, "workers={workers}");
        }
    }

    #[test]
    fn collect_abstract_follows_the_signature() {
        let v = Value::pair(Value::nat_list(&[1]), Value::nat(3));
        let sig = Type::pair(Type::Abstract, Type::named("nat"));
        assert_eq!(collect_abstract(&v, &sig), vec![Value::nat_list(&[1])]);
        assert_eq!(
            collect_abstract(&v, &Type::named("nat")),
            Vec::<Value>::new()
        );
        assert_eq!(
            collect_abstract(&Value::nat_list(&[2]), &Type::Abstract),
            vec![Value::nat_list(&[2])]
        );
    }
}
