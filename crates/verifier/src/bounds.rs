//! Enumeration bounds for the testing verifier.

pub use hanoi_lang::util::Deadline;

/// Size and count bounds for bounded enumerative verification (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifierBounds {
    /// Maximum number of structures tried for a single-quantifier property.
    pub single_count: usize,
    /// Maximum AST-node size of structures for a single-quantifier property.
    pub single_size: usize,
    /// Maximum number of structures tried *per quantifier* for properties
    /// with two or more quantifiers.
    pub multi_count: usize,
    /// Maximum AST-node size of structures for multi-quantifier properties.
    pub multi_size: usize,
    /// Maximum total number of argument tuples processed per check.
    pub total_cap: usize,
    /// Maximum body size of enumerated higher-order (functional) arguments.
    pub hof_body_size: usize,
    /// Maximum number of functional arguments tried per higher-order
    /// position.
    pub hof_max_functions: usize,
    /// Fuel budget per object-level evaluation.
    pub fuel: u64,
}

impl Default for VerifierBounds {
    /// The paper's bounds: 3000 structures / 30 nodes (single quantifier),
    /// 3000 structures / 15 nodes per quantifier and 30000 tuples in total
    /// (multiple quantifiers).
    fn default() -> Self {
        VerifierBounds {
            single_count: 3000,
            single_size: 30,
            multi_count: 3000,
            multi_size: 15,
            total_cap: 30_000,
            hof_body_size: 6,
            hof_max_functions: 40,
            fuel: 200_000,
        }
    }
}

impl VerifierBounds {
    /// The paper's bounds (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Reduced bounds for fast unit/integration tests and quick experiment
    /// runs: the same shape, two orders of magnitude fewer tests.
    pub fn quick() -> Self {
        VerifierBounds {
            single_count: 400,
            single_size: 14,
            multi_count: 150,
            multi_size: 9,
            total_cap: 4_000,
            hof_body_size: 5,
            hof_max_functions: 12,
            fuel: 100_000,
        }
    }

    /// Per-quantifier count bound for a property with `quantifiers`
    /// universally quantified variables.
    pub fn count_for(&self, quantifiers: usize) -> usize {
        if quantifiers <= 1 {
            self.single_count
        } else {
            self.multi_count
        }
    }

    /// Per-quantifier size bound for a property with `quantifiers`
    /// universally quantified variables.
    pub fn size_for(&self, quantifiers: usize) -> usize {
        if quantifiers <= 1 {
            self.single_size
        } else {
            self.multi_size
        }
    }

    /// Total tuple cap for a property with `quantifiers` quantified
    /// variables.
    pub fn cap_for(&self, quantifiers: usize) -> usize {
        if quantifiers <= 1 {
            self.single_count
        } else {
            self.total_cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4_3() {
        let b = VerifierBounds::paper();
        assert_eq!(b.single_count, 3000);
        assert_eq!(b.single_size, 30);
        assert_eq!(b.multi_count, 3000);
        assert_eq!(b.multi_size, 15);
        assert_eq!(b.total_cap, 30_000);
    }

    #[test]
    fn per_quantifier_selection() {
        let b = VerifierBounds::paper();
        assert_eq!(b.count_for(1), 3000);
        assert_eq!(b.size_for(1), 30);
        assert_eq!(b.count_for(2), 3000);
        assert_eq!(b.size_for(2), 15);
        assert_eq!(b.cap_for(1), 3000);
        assert_eq!(b.cap_for(3), 30_000);
    }

    #[test]
    fn quick_bounds_are_smaller() {
        let q = VerifierBounds::quick();
        let p = VerifierBounds::paper();
        assert!(q.single_count < p.single_count);
        assert!(q.total_cap < p.total_cap);
    }

    #[test]
    fn deadlines_are_reexported() {
        assert!(!Deadline::none().expired());
    }
}
