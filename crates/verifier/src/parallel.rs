//! Deterministic work-stealing parallel search primitives.
//!
//! The verifier's hot path is embarrassingly parallel — evaluate a pure
//! predicate over an indexed space of candidate×value tuples, short-circuit
//! on the first counterexample — but *which* counterexample is reported
//! matters: the whole CEGIS loop, the counterexample-list cache and the
//! experiment tables all assume the verifier is a deterministic function of
//! its inputs.  The primitives here therefore guarantee **serial-equivalent
//! results**: the reported match is always the one with the least index under
//! the enumeration order, regardless of which worker finds a match first.
//!
//! The build environment is offline, so instead of `rayon` these are built
//! directly on [`std::thread::scope`]:
//!
//! * [`find_first`] — parallel short-circuiting search over `0..len`;
//! * [`par_map`] — order-preserving parallel map over a slice;
//! * [`effective_workers`] — resolves the user-facing `parallelism` knob
//!   (`0` = one worker per available core).
//!
//! Both primitives hand out *contiguous chunks* of the index space through a
//! monotonically increasing atomic cursor, so workers sweep the space in
//! roughly enumeration order and the short-circuit cutoff stays tight.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves the user-facing `parallelism` knob to a worker count:
/// `0` means "one worker per available core", any other value is taken
/// literally. The result is always at least 1.
pub fn effective_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// One decided index: either a match or an error produced by `test`.
enum Decision<T, E> {
    Match(T),
    Fail(E),
}

/// Searches `0..len` for the least index at which `test` decides the
/// outcome — by returning `Ok(Some(_))` (a match) or `Err(_)` (an error) —
/// and returns that outcome.  `Ok(None)` means no index decided.
///
/// With `workers <= 1` this is a plain sequential loop. With more workers the
/// index space is handed out in contiguous chunks of `chunk_size`; a decided
/// index becomes a *cutoff* above which chunks are skipped, so the search
/// still short-circuits, while indices below the cutoff are always fully
/// tested — which is exactly what makes the result serial-equivalent.
///
/// `test` must be a pure function of the index (calls may happen on any
/// worker thread, and indices above a decided one may or may not be tested).
pub fn find_first<T, E>(
    len: usize,
    workers: usize,
    chunk_size: usize,
    test: impl Fn(usize) -> Result<Option<T>, E> + Sync,
) -> Result<Option<T>, E>
where
    T: Send,
    E: Send,
{
    let workers = workers.min(len.max(1));
    if workers <= 1 {
        for index in 0..len {
            match test(index) {
                Ok(None) => {}
                Ok(Some(found)) => return Ok(Some(found)),
                Err(e) => return Err(e),
            }
        }
        return Ok(None);
    }

    let chunk_size = chunk_size.max(1);
    let cursor = AtomicUsize::new(0);
    // Least index that decided an outcome so far; indices at or above it can
    // no longer influence the result.
    let cutoff = AtomicUsize::new(usize::MAX);
    let best: Mutex<Option<(usize, Decision<T, E>)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk_size, Ordering::Relaxed);
                if start >= len || start >= cutoff.load(Ordering::Acquire) {
                    return;
                }
                let end = (start + chunk_size).min(len);
                for index in start..end {
                    if index >= cutoff.load(Ordering::Acquire) {
                        break;
                    }
                    let decision = match test(index) {
                        Ok(None) => continue,
                        Ok(Some(found)) => Decision::Match(found),
                        Err(e) => Decision::Fail(e),
                    };
                    let mut guard = best.lock().unwrap();
                    if guard.as_ref().is_none_or(|(held, _)| index < *held) {
                        *guard = Some((index, decision));
                        cutoff.fetch_min(index, Ordering::Release);
                    }
                    // Every chunk this worker could claim from here on starts
                    // above `index`, hence above the cutoff: stop entirely.
                    return;
                }
            });
        }
    });

    match best.into_inner().unwrap() {
        None => Ok(None),
        Some((_, Decision::Match(found))) => Ok(Some(found)),
        Some((_, Decision::Fail(e))) => Err(e),
    }
}

/// Maps `f` over `items` on `workers` threads, preserving order.
///
/// With `workers <= 1` this is a plain sequential map.
pub fn par_map<T, U>(items: &[T], workers: usize, f: impl Fn(&T) -> U + Sync) -> Vec<U>
where
    T: Sync,
    U: Send,
{
    let workers = workers.min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    // Small chunks keep the load balanced when per-item cost is skewed
    // (predicate evaluation time grows with value size).
    let chunk_size = (items.len() / (workers * 8)).clamp(1, 256);
    let cursor = AtomicUsize::new(0);
    let chunks: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk_size, Ordering::Relaxed);
                if start >= items.len() {
                    return;
                }
                let end = (start + chunk_size).min(items.len());
                let mapped: Vec<U> = items[start..end].iter().map(&f).collect();
                chunks.lock().unwrap().push((start, mapped));
            });
        }
    });

    let mut chunks = chunks.into_inner().unwrap();
    chunks.sort_by_key(|(start, _)| *start);
    let out: Vec<U> = chunks.into_iter().flat_map(|(_, mapped)| mapped).collect();
    debug_assert_eq!(out.len(), items.len());
    out
}

/// Retains, in order, the items for which `keep` returns true, evaluating
/// `keep` in parallel. Serial-equivalent to `items.retain(keep)`.
pub fn par_retain<T>(items: &mut Vec<T>, workers: usize, keep: impl Fn(&T) -> bool + Sync)
where
    T: Send + Sync,
{
    if workers <= 1 {
        items.retain(|item| keep(item));
        return;
    }
    let flags = par_map(items, workers, keep);
    let mut flags = flags.into_iter();
    items.retain(|_| flags.next().expect("one flag per item"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_workers_resolves_auto() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
    }

    #[test]
    fn find_first_matches_serial_on_every_target() {
        // For every target index, parallel search must report exactly that
        // index even when later indices also match.
        for len in [0usize, 1, 7, 100] {
            for target in 0..len.min(10) {
                for workers in [1usize, 2, 4, 7] {
                    let result: Result<Option<usize>, ()> =
                        find_first(len, workers, 3, |i| Ok((i >= target).then_some(i)));
                    assert_eq!(
                        result,
                        Ok(Some(target)),
                        "len={len} target={target} workers={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn find_first_returns_none_when_nothing_matches() {
        for workers in [1usize, 2, 8] {
            let result: Result<Option<usize>, ()> = find_first(1000, workers, 16, |_| Ok(None));
            assert_eq!(result, Ok(None));
        }
    }

    #[test]
    fn errors_behave_like_matches_for_ordering() {
        // An error at index 10, a match at index 5: the match wins because it
        // is earlier in enumeration order — exactly what a serial loop does.
        for workers in [1usize, 4] {
            let result: Result<Option<&str>, &str> = find_first(100, workers, 4, |i| match i {
                5 => Ok(Some("match")),
                10 => Err("boom"),
                _ => Ok(None),
            });
            assert_eq!(result, Ok(Some("match")));
            // And the reverse: an earlier error wins over a later match.
            let result: Result<Option<&str>, &str> = find_first(100, workers, 4, |i| match i {
                5 => Err("boom"),
                10 => Ok(Some("match")),
                _ => Ok(None),
            });
            assert_eq!(result, Err("boom"));
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        for workers in [1usize, 2, 5] {
            let doubled = par_map(&items, workers, |&x| x * 2);
            assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_retain_is_serial_equivalent() {
        for workers in [1usize, 3, 8] {
            let mut items: Vec<usize> = (0..500).collect();
            par_retain(&mut items, workers, |&x| x % 3 == 0);
            let expected: Vec<usize> = (0..500).filter(|&x| x % 3 == 0).collect();
            assert_eq!(items, expected);
        }
    }
}
