//! The conditional-inductiveness checker (`CondInductive P Q`, Figure 3).
//!
//! The relation `vm : τm ▶P_Q` is checked one module operation at a time
//! (the operations are the components of the product `τm`, so rule I-Prod
//! reduces the check to its per-operation form).  For an operation of type
//! `σ1 -> … -> σk -> ρ`:
//!
//! * argument positions of abstract type draw their values from the
//!   *conditioning pool* `P` — the set `V+` of known-constructible values for
//!   visible inductiveness, or the enumerated values satisfying the candidate
//!   for full inductiveness (rule I-Fun's contravariant premise);
//! * argument positions of base type are enumerated from smallest to largest;
//! * argument positions of function type are filled with enumerated lambda
//!   terms; if their type mentions the abstract type they are wrapped in a
//!   logging contract (§4.2) so boundary crossings are observed;
//! * the result (and any module-supplied value logged by a contract) is
//!   checked against `Q` (rule I-A); a violation yields the counterexample
//!   `⟨S, V⟩` where `S` collects the abstract-type inputs (`{|·|}σ`, plus
//!   client-supplied contract values) and `V` the violating outputs.

use std::collections::HashSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hanoi_abstraction::contract::{instrument_function, BoundaryLog};
use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::eval::Fuel;
use hanoi_lang::types::Type;
use hanoi_lang::value::Value;

use crate::bounds::{Deadline, VerifierBounds};
use crate::hof::FunctionCandidate;
use crate::outcome::{InductivenessCex, InductivenessOutcome, VerifierError};
use crate::parallel::par_retain;
use crate::poolcache::PoolCache;
use crate::pools::{collect_abstract, search_product, CompiledPredicate};

/// How often (in tuples) the deadline is polled.
const DEADLINE_POLL: usize = 256;

/// The conditioning predicate `P` of a conditional-inductiveness check.
#[derive(Debug, Clone, Copy)]
pub enum PoolSpec<'a> {
    /// `P` is membership in an explicit, known-constructible set (`V+`) —
    /// this is the *visible inductiveness* check.
    Known(&'a [Value]),
    /// `P` is a predicate; abstract argument positions are filled with every
    /// enumerated value satisfying it.  With the candidate itself as `P`
    /// this is the *full inductiveness* check (`CondInductive I I`).
    Satisfying(&'a Expr),
}

/// One choice for one argument position, borrowed from a cached pool (or
/// from the caller's `V+` slice).
enum Choice<'a> {
    Val(&'a Value),
    Fun(&'a FunctionCandidate),
}

/// Where one argument position draws its values from; holds the cached pool
/// `Arc`s alive while the per-candidate choice lists borrow from them.
enum Source<'a> {
    /// The caller's known-constructible set, used verbatim.
    Known(&'a [Value]),
    /// A cached value pool; `filter` says whether it must be narrowed to the
    /// values satisfying `P` for this candidate.
    Values(Arc<Vec<Value>>, bool),
    /// A cached pool of enumerated functional arguments.
    Functions(Arc<Vec<FunctionCandidate>>),
}

/// Checks `CondInductive P Q` where `P` is given by `pool` and `Q` is
/// `invariant`, spreading tuple evaluation over `workers` threads (`1` =
/// serial; parallel runs report the same counterexample as serial ones, see
/// [`crate::parallel`]).  Pools come from the shared `pools` cache.
pub fn check_conditional_inductiveness(
    problem: &Problem,
    pools: &PoolCache,
    bounds: &VerifierBounds,
    deadline: &Deadline,
    pool: PoolSpec<'_>,
    invariant: &Expr,
    workers: usize,
) -> Result<InductivenessOutcome, VerifierError> {
    check_conditional_inductiveness_filtered(
        problem, pools, bounds, deadline, pool, invariant, None, workers,
    )
}

/// Like [`check_conditional_inductiveness`], but restricted to the single
/// module operation named `only_op` when provided.  The LinearArbitrary
/// baseline (§5.5) checks inductiveness one operation at a time.
#[allow(clippy::too_many_arguments)]
pub fn check_conditional_inductiveness_filtered(
    problem: &Problem,
    pools: &PoolCache,
    bounds: &VerifierBounds,
    deadline: &Deadline,
    pool: PoolSpec<'_>,
    invariant: &Expr,
    only_op: Option<&str>,
    workers: usize,
) -> Result<InductivenessOutcome, VerifierError> {
    let q = CompiledPredicate::compile(problem, invariant, bounds.fuel)?
        .with_eval_counter(pools.eval_counter());
    // Full inductiveness conditions on the candidate itself (`CondInductive
    // I I`); reuse the compiled `Q` instead of compiling the same expression
    // twice.
    let p_predicate = match pool {
        PoolSpec::Satisfying(p) if p == invariant => Some(q.clone()),
        PoolSpec::Satisfying(p) => Some(
            CompiledPredicate::compile(problem, p, bounds.fuel)?
                .with_eval_counter(pools.eval_counter()),
        ),
        PoolSpec::Known(_) => None,
    };
    let known: Option<HashSet<&Value>> = match pool {
        PoolSpec::Known(values) => Some(values.iter().collect()),
        PoolSpec::Satisfying(_) => None,
    };
    let satisfies_p = |v: &Value| -> bool {
        match (&known, &p_predicate) {
            (Some(set), _) => set.contains(v),
            (None, Some(pred)) => pred.test(v),
            (None, None) => unreachable!("one of the two pool forms is always present"),
        }
    };

    for op in problem.inductive_ops() {
        if let Some(only) = only_op {
            if op.name.as_str() != only {
                continue;
            }
        }
        let (arg_sigs, result_sig) = op.sig.uncurry();
        let quantifiers = arg_sigs.len().max(1);
        let per_count = bounds.count_for(quantifiers);
        let per_size = bounds.size_for(quantifiers);
        let cap = bounds.cap_for(quantifiers);

        // Resolve each argument position to its (cached) source, then build
        // the per-candidate choice lists as borrows into those sources: the
        // only per-candidate cost left is the `P` filter itself.
        let sources: Vec<Source<'_>> = arg_sigs
            .iter()
            .map(|sig| {
                if let Type::Arrow(_, _) = sig {
                    Source::Functions(pools.function_pool(problem, sig, bounds))
                } else if sig.mentions_abstract() {
                    match (&pool, sig) {
                        (PoolSpec::Known(known_values), Type::Abstract) => {
                            Source::Known(known_values)
                        }
                        _ => {
                            let concrete = sig.subst_abstract(problem.concrete_type());
                            Source::Values(
                                pools.pool(&concrete, per_count, per_size, workers),
                                true,
                            )
                        }
                    }
                } else {
                    Source::Values(pools.pool(sig, per_count, per_size, workers), false)
                }
            })
            .collect();
        let mut choice_pools: Vec<Vec<Choice<'_>>> = Vec::with_capacity(arg_sigs.len());
        for (source, sig) in sources.iter().zip(&arg_sigs) {
            match source {
                Source::Known(values) => {
                    choice_pools.push(values.iter().map(Choice::Val).collect());
                }
                Source::Functions(candidates) => {
                    choice_pools.push(candidates.iter().map(Choice::Fun).collect());
                }
                Source::Values(values, filter) => {
                    let mut refs: Vec<&Value> = values.iter().collect();
                    if *filter {
                        par_retain(&mut refs, workers, |v| {
                            collect_abstract(v, sig).iter().all(&satisfies_p)
                        });
                    }
                    choice_pools.push(refs.into_iter().map(Choice::Val).collect());
                }
            }
        }

        let polls = AtomicUsize::new(0);
        let found = search_product(&choice_pools, cap, workers, |tuple| {
            if polls
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(DEADLINE_POLL)
                && deadline.expired()
            {
                return Err(VerifierError::Timeout);
            }

            // Materialize arguments, instrumenting abstract-mentioning
            // functional positions with boundary logs.
            let mut args: Vec<Value> = Vec::with_capacity(tuple.len());
            let mut display_args: Vec<Value> = Vec::with_capacity(tuple.len());
            let mut logs: Vec<Arc<BoundaryLog>> = Vec::new();
            for (choice, sig) in tuple.iter().zip(&arg_sigs) {
                match choice {
                    Choice::Val(v) => {
                        args.push((*v).clone());
                        display_args.push((*v).clone());
                    }
                    Choice::Fun(candidate) => {
                        display_args.push(candidate.value.clone());
                        if sig.mentions_abstract() {
                            let log = BoundaryLog::new();
                            args.push(instrument_function(
                                &problem.tyenv,
                                sig,
                                candidate.value.clone(),
                                Arc::clone(&log),
                            ));
                            logs.push(log);
                        } else {
                            args.push(candidate.value.clone());
                        }
                    }
                }
            }

            // Run the operation.
            let mut fuel = Fuel::new(bounds.fuel);
            let result = match problem
                .evaluator()
                .apply_many(op.value.clone(), &args, &mut fuel)
            {
                Ok(result) => result,
                // A failing module operation on enumerated inputs is not a
                // counterexample to inductiveness; skip the tuple.
                Err(_) => return Ok(ControlFlow::Continue(())),
            };

            // Rule I-Fun's premise: client-supplied values must satisfy P for
            // the run to witness anything.
            let client_supplied: Vec<Value> = logs
                .iter()
                .flat_map(|log| log.client_supplied_values())
                .collect();
            if !client_supplied.iter().all(&satisfies_p) {
                return Ok(ControlFlow::Continue(()));
            }

            // Check Q on every module-produced abstract value: the result's
            // abstract components plus anything the module passed into a
            // functional argument.
            let mut produced: Vec<Value> = collect_abstract(&result, result_sig);
            produced.extend(logs.iter().flat_map(|log| log.module_supplied_values()));
            let violations: Vec<Value> = produced.into_iter().filter(|v| !q.test(v)).collect();
            if violations.is_empty() {
                return Ok(ControlFlow::Continue(()));
            }

            // Build S = {|args|}σ ∪ client-supplied values.
            let mut s: Vec<Value> = Vec::new();
            for (value, sig) in display_args.iter().zip(&arg_sigs) {
                s.extend(collect_abstract(value, sig));
            }
            s.extend(client_supplied);

            Ok(ControlFlow::Break(InductivenessCex {
                op: op.name.clone(),
                args: display_args,
                s,
                v: violations,
            }))
        })?;

        if let Some(cex) = found {
            return Ok(InductivenessOutcome::Cex(cex));
        }
    }
    Ok(InductivenessOutcome::Valid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::parser::parse_expr;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    fn problem() -> Problem {
        Problem::from_source(LIST_SET).unwrap()
    }

    fn no_duplicates() -> Expr {
        parse_expr(
            "fix inv (l : list) : bool = \
               match l with \
               | Nil -> True \
               | Cons (hd, tl) -> not (lookup tl hd) && inv tl \
               end",
        )
        .unwrap()
    }

    #[test]
    fn trivially_true_candidate_is_fully_inductive() {
        let problem = problem();
        let candidate = parse_expr("fun (l : list) -> True").unwrap();
        let outcome = check_conditional_inductiveness(
            &problem,
            &PoolCache::for_problem(&problem),
            &VerifierBounds::quick(),
            &Deadline::none(),
            PoolSpec::Satisfying(&candidate),
            &candidate,
            1,
        )
        .unwrap();
        assert_eq!(outcome, InductivenessOutcome::Valid);
    }

    #[test]
    fn the_paper_invariant_is_fully_inductive() {
        let problem = problem();
        let inv = no_duplicates();
        let outcome = check_conditional_inductiveness(
            &problem,
            &PoolCache::for_problem(&problem),
            &VerifierBounds::quick(),
            &Deadline::none(),
            PoolSpec::Satisfying(&inv),
            &inv,
            1,
        )
        .unwrap();
        assert_eq!(outcome, InductivenessOutcome::Valid);
    }

    #[test]
    fn section_2_counterexample_is_found() {
        // The candidate from §2: heads must differ from 1.  It is not
        // inductive: insert [0] 1 = [1; 0] violates it while [0] satisfies it.
        let problem = problem();
        let candidate = parse_expr(
            "fun (l : list) : bool -> \
               match l with | Nil -> True | Cons (hd, tl) -> not (hd == 1) end",
        );
        // The surface syntax of `fun` carries no return annotation; re-parse
        // without it.
        let candidate = candidate.unwrap_or_else(|_| {
            parse_expr(
                "fun (l : list) -> match l with | Nil -> True | Cons (hd, tl) -> not (hd == 1) end",
            )
            .unwrap()
        });
        let outcome = check_conditional_inductiveness(
            &problem,
            &PoolCache::for_problem(&problem),
            &VerifierBounds::quick(),
            &Deadline::none(),
            PoolSpec::Satisfying(&candidate),
            &candidate,
            1,
        )
        .unwrap();
        match outcome {
            InductivenessOutcome::Cex(cex) => {
                assert!(!cex.v.is_empty());
                assert!(
                    !cex.s.is_empty(),
                    "a first-order cex always carries its inputs"
                );
                // Every violating value must indeed falsify the candidate.
                for v in &cex.v {
                    assert!(!problem.eval_predicate(&candidate, v).unwrap());
                }
                // Every S value must satisfy the candidate (they were drawn
                // from the pool).
                for s in &cex.s {
                    assert!(problem.eval_predicate(&candidate, s).unwrap());
                }
            }
            InductivenessOutcome::Valid => panic!("the §2 candidate must not be inductive"),
        }
    }

    #[test]
    fn visible_inductiveness_uses_only_the_known_set() {
        let problem = problem();
        let candidate = parse_expr(
            "fun (l : list) -> match l with | Nil -> True | Cons (hd, tl) -> not (hd == 1) end",
        )
        .unwrap();
        // With V+ = {[]}, the only reachable-in-one-step values are the
        // results of operations on [], e.g. insert [] 1 = [1], which violates
        // the candidate — a visible-inductiveness counterexample.
        let v_plus = vec![Value::nat_list(&[])];
        let outcome = check_conditional_inductiveness(
            &problem,
            &PoolCache::for_problem(&problem),
            &VerifierBounds::quick(),
            &Deadline::none(),
            PoolSpec::Known(&v_plus),
            &candidate,
            1,
        )
        .unwrap();
        match outcome {
            InductivenessOutcome::Cex(cex) => {
                assert!(cex.v.iter().all(|v| v.as_list().is_some()));
                // S values must come from V+ (or be client-supplied, which
                // cannot happen for this first-order module).
                for s in &cex.s {
                    assert!(v_plus.contains(s));
                }
            }
            InductivenessOutcome::Valid => {
                panic!("insert [] 1 = [1] must violate the head-is-not-1 candidate")
            }
        }
    }

    #[test]
    fn visible_inductiveness_with_empty_pool_checks_constants() {
        let problem = problem();
        // A candidate that rejects the empty list: `empty` itself is a
        // constructible constant, so visible inductiveness must fail even
        // with an empty V+.
        let candidate =
            parse_expr("fun (l : list) -> match l with | Nil -> False | Cons (hd, tl) -> True end")
                .unwrap();
        let outcome = check_conditional_inductiveness(
            &problem,
            &PoolCache::for_problem(&problem),
            &VerifierBounds::quick(),
            &Deadline::none(),
            PoolSpec::Known(&[]),
            &candidate,
            1,
        )
        .unwrap();
        match outcome {
            InductivenessOutcome::Cex(cex) => {
                assert_eq!(cex.op.as_str(), "empty");
                assert_eq!(cex.v, vec![Value::nat_list(&[])]);
                assert!(cex.s.is_empty());
            }
            InductivenessOutcome::Valid => panic!("`empty` violates the candidate"),
        }
    }
}
