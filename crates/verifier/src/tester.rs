//! The sufficiency check: `Verify Suf φ M [I]` (Definition 3.4).
//!
//! A candidate invariant `I` is sufficient when every tuple of specification
//! arguments whose abstract-type components satisfy `I` also satisfies the
//! specification body.  The check instantiates every quantifier with the
//! smallest values of its type (abstract-type quantifiers are filtered by
//! `I`), up to the configured bounds, and reports the first violating tuple.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::eval::Fuel;
use hanoi_lang::value::Value;

use crate::bounds::{Deadline, VerifierBounds};
use crate::outcome::{SufficiencyCex, SufficiencyOutcome, VerifierError};
use crate::parallel::par_retain;
use crate::poolcache::PoolCache;
use crate::pools::{search_product, CompiledPredicate};

/// How often (in tuples) the deadline is polled.
const DEADLINE_POLL: usize = 256;

/// Checks sufficiency of `invariant` for the problem's specification,
/// spreading tuple evaluation over `workers` threads (`1` = serial; parallel
/// runs report the same outcome as serial ones, see [`crate::parallel`]).
/// Quantifier pools are drawn from `pools`, so enumeration is paid at most
/// once per `(type, count, size)` per session.
pub fn check_sufficiency(
    problem: &Problem,
    pools: &PoolCache,
    bounds: &VerifierBounds,
    deadline: &Deadline,
    invariant: &Expr,
    workers: usize,
) -> Result<SufficiencyOutcome, VerifierError> {
    let spec = &problem.spec;
    let quantifiers = spec.arity();
    let per_count = bounds.count_for(quantifiers);
    let per_size = bounds.size_for(quantifiers);
    let cap = bounds.cap_for(quantifiers);

    let predicate = CompiledPredicate::compile(problem, invariant, bounds.fuel)?
        .with_eval_counter(pools.eval_counter());

    // One shared (cached) pool per quantified parameter; the per-candidate
    // work is only the filter, which borrows from the cached slab instead of
    // cloning it.  Filtering abstract-type pools by the candidate runs the
    // interpreter per value, so it is spread over the workers too.
    let shared: Vec<Arc<Vec<Value>>> = spec
        .params
        .iter()
        .map(|(_, param_ty)| {
            let concrete = param_ty.subst_abstract(problem.concrete_type());
            pools.pool(&concrete, per_count, per_size, workers)
        })
        .collect();
    let mut filtered: Vec<Vec<&Value>> = Vec::with_capacity(quantifiers);
    for (pool, (_, param_ty)) in shared.iter().zip(&spec.params) {
        let mut values: Vec<&Value> = pool.iter().collect();
        if param_ty.mentions_abstract() {
            par_retain(&mut values, workers, |v| predicate.test(v));
        }
        filtered.push(values);
    }

    let abstract_positions = spec.abstract_positions();
    let polls = AtomicUsize::new(0);
    let found = search_product(&filtered, cap, workers, |tuple| {
        if polls
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(DEADLINE_POLL)
            && deadline.expired()
        {
            return Err(VerifierError::Timeout);
        }
        let args: Vec<Value> = tuple.iter().map(|v| (**v).clone()).collect();
        let mut fuel = Fuel::new(bounds.fuel);
        let holds = problem
            .eval_spec_with_fuel(&args, &mut fuel)
            .unwrap_or(false);
        if holds {
            Ok(ControlFlow::Continue(()))
        } else {
            let abstract_args = abstract_positions
                .iter()
                .map(|&i| args[i].clone())
                .collect::<Vec<_>>();
            Ok(ControlFlow::Break(SufficiencyCex {
                args,
                abstract_args,
            }))
        }
    })?;

    Ok(match found {
        Some(cex) => SufficiencyOutcome::Cex(cex),
        None => SufficiencyOutcome::Valid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::parser::parse_expr;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    fn problem() -> Problem {
        Problem::from_source(LIST_SET).unwrap()
    }

    /// The no-duplicates invariant from §2.
    fn no_duplicates() -> Expr {
        parse_expr(
            "fix inv (l : list) : bool = \
               match l with \
               | Nil -> True \
               | Cons (hd, tl) -> not (lookup tl hd) && inv tl \
               end",
        )
        .unwrap()
    }

    #[test]
    fn trivial_candidate_is_not_sufficient() {
        let problem = problem();
        let candidate = parse_expr("fun (l : list) -> True").unwrap();
        let outcome = check_sufficiency(
            &problem,
            &PoolCache::for_problem(&problem),
            &VerifierBounds::quick(),
            &Deadline::none(),
            &candidate,
            1,
        )
        .unwrap();
        match outcome {
            SufficiencyOutcome::Cex(cex) => {
                // The counterexample must be a list with duplicates (that is
                // the only way the ListSet spec fails), e.g. [0; 0].
                assert_eq!(cex.abstract_args.len(), 1);
                let items: Vec<u64> = cex.abstract_args[0]
                    .as_list()
                    .unwrap()
                    .iter()
                    .map(|v| v.as_nat().unwrap())
                    .collect();
                let mut dedup = items.clone();
                dedup.dedup();
                assert!(
                    dedup.len() < items.len(),
                    "expected duplicates, got {items:?}"
                );
            }
            SufficiencyOutcome::Valid => panic!("fun _ -> True must not be sufficient"),
        }
    }

    #[test]
    fn the_paper_invariant_is_sufficient() {
        let problem = problem();
        let outcome = check_sufficiency(
            &problem,
            &PoolCache::for_problem(&problem),
            &VerifierBounds::quick(),
            &Deadline::none(),
            &no_duplicates(),
            1,
        )
        .unwrap();
        assert_eq!(outcome, SufficiencyOutcome::Valid);
    }

    #[test]
    fn too_strong_candidates_are_vacuously_sufficient() {
        let problem = problem();
        let candidate = parse_expr("fun (l : list) -> False").unwrap();
        let outcome = check_sufficiency(
            &problem,
            &PoolCache::for_problem(&problem),
            &VerifierBounds::quick(),
            &Deadline::none(),
            &candidate,
            1,
        )
        .unwrap();
        assert_eq!(outcome, SufficiencyOutcome::Valid);
    }

    #[test]
    fn parallel_runs_report_the_serial_counterexample() {
        let problem = problem();
        let candidate = parse_expr("fun (l : list) -> True").unwrap();
        let serial = check_sufficiency(
            &problem,
            &PoolCache::for_problem(&problem),
            &VerifierBounds::quick(),
            &Deadline::none(),
            &candidate,
            1,
        )
        .unwrap();
        for workers in [2, 4, 8] {
            let parallel = check_sufficiency(
                &problem,
                &PoolCache::for_problem(&problem),
                &VerifierBounds::quick(),
                &Deadline::none(),
                &candidate,
                workers,
            )
            .unwrap();
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn expired_deadlines_abort() {
        let problem = problem();
        let deadline = Deadline::at(std::time::Instant::now() - std::time::Duration::from_secs(1));
        let candidate = parse_expr("fun (l : list) -> True").unwrap();
        // With an already expired deadline the check either finds the (very
        // early) counterexample before the first poll or times out; both are
        // acceptable, but it must not loop.
        let result = check_sufficiency(
            &problem,
            &PoolCache::for_problem(&problem),
            &VerifierBounds::quick(),
            &deadline,
            &candidate,
            1,
        );
        match result {
            Ok(_) | Err(VerifierError::Timeout) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
