//! Run statistics — the columns of Figure 7.

use std::time::Duration;

use crate::json::{Json, JsonError};

/// Statistics collected during one inference run.
///
/// The field names follow the columns of Figure 7: `TVT` (total verification
/// time), `TVC` (verification call count), `MVT` (mean verification time),
/// `TST`/`TSC`/`MST` for synthesis, plus the overall wall-clock time and the
/// size of the inferred invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total wall-clock time of the run.
    pub total_time: Duration,
    /// Total time spent in the verifier (TVT).
    pub verification_time: Duration,
    /// Number of verifier calls (TVC).
    pub verification_calls: usize,
    /// Total time spent in the synthesizer (TST).
    pub synthesis_time: Duration,
    /// Number of synthesizer calls (TSC).
    pub synthesis_calls: usize,
    /// Number of CEGIS iterations (calls to the `Hanoi` recursion of
    /// Figure 4, or the analogous loop of a baseline).
    pub iterations: usize,
    /// Synthesis-result cache hits (candidates reused without a synth call).
    pub synthesis_cache_hits: usize,
    /// Negative examples restored by counterexample-list caching.
    pub clc_restored_negatives: usize,
    /// Verifier pool requests answered from the shared pool cache.
    pub pool_cache_hits: u64,
    /// Verifier pools actually enumerated (at most one per distinct
    /// `(type, count, size)` — or function-pool key — per run).
    pub pool_builds: u64,
    /// Per-size enumeration slabs built by the pool cache (at most one per
    /// `(type, size)` per run).
    pub pool_slab_builds: u64,
    /// Enumeration slabs rebuilt from recorded shapes when a warm-start
    /// snapshot was restored (`0` for cold starts; counted once, lazily, on
    /// the first pool request after a restore).
    pub pool_slab_restores: u64,
    /// Candidate-predicate evaluations performed by the verifier's compiled
    /// predicates (pool filtering plus `P`/`Q` tests).
    pub predicate_evals: u64,
    /// Verifier checks answered from the engine's cross-run check-outcome
    /// cache without re-running their sweep.
    pub verification_cache_hits: u64,
    /// Check-outcome cache entries evicted (LRU) during the run because an
    /// insert exceeded the cache capacity.
    pub check_cache_evictions: u64,
    /// Snapshot components (check cache + term banks) the problem's engine
    /// entry was restored from via the warm-start store
    /// (`EngineConfig::warm_start_dir`).  `0` for cold starts and for
    /// engines without a warm-start directory; identical for every run
    /// sharing the restored entry.
    pub warm_start_loads: u64,
    /// Warm-start artifacts that failed to restore and were quarantined
    /// (renamed `*.corrupt`) when the problem's engine entry was created:
    /// individual chunks whose bytes failed the content-address re-hash
    /// (the restore proceeded with the remaining chunks), a defective
    /// manifest, or a defective legacy monolithic snapshot file.  `0` when
    /// the snapshot was missing or restored cleanly; like
    /// `warm_start_loads`, identical for every run sharing the entry.
    pub warm_start_quarantined: u64,
    /// Candidate terms enumerated by the synthesis engine (pre-dedup) across
    /// all guesses of the run.
    pub synth_terms_enumerated: u64,
    /// Signature columns appended to the synthesizer's persistent term bank
    /// after the first synthesis call (one per new example world).
    pub synth_column_appends: u64,
    /// Observational-equivalence classes re-split because a freshly appended
    /// signature column distinguished previously-merged terms.
    pub synth_eq_class_splits: u64,
    /// Signature evaluations served from the term bank without touching the
    /// interpreter.
    pub synth_bank_hits: u64,
    /// `u64` bitset words processed by the packed signature matrix (dedup,
    /// target matching and boolean connectives over 64 worlds per op).
    pub synth_bitset_row_ops: u64,
    /// Whole guess outcomes replayed from the term bank's cross-iteration
    /// guess memo instead of re-enumerating.
    pub synth_guess_memo_hits: u64,
    /// Batched term-bank probe calls (one bank lock round per batch instead
    /// of one per candidate application).
    pub synth_probe_batches: u64,
    /// Arithmetic atoms enumerated by the numeric grammar (integer literals
    /// and linear-arithmetic component applications); zero unless the run
    /// enables the numeric search grammar.
    pub synth_arith_atoms: u64,
    /// Size in AST nodes of the inferred invariant, when one was found.
    pub invariant_size: Option<usize>,
    /// Final number of positive examples.
    pub final_positives: usize,
    /// Final number of negative examples.
    pub final_negatives: usize,
}

impl RunStats {
    /// Mean time per verification call (MVT), if any call was made.
    pub fn mean_verification_time(&self) -> Option<Duration> {
        (self.verification_calls > 0)
            .then(|| self.verification_time / self.verification_calls as u32)
    }

    /// Mean time per synthesis call (MST), if any call was made.
    pub fn mean_synthesis_time(&self) -> Option<Duration> {
        (self.synthesis_calls > 0).then(|| self.synthesis_time / self.synthesis_calls as u32)
    }

    /// Records one verifier call.
    pub fn record_verification(&mut self, elapsed: Duration) {
        self.verification_calls += 1;
        self.verification_time += elapsed;
    }

    /// Records one synthesizer call.
    pub fn record_synthesis(&mut self, elapsed: Duration) {
        self.synthesis_calls += 1;
        self.synthesis_time += elapsed;
    }

    /// Copies a verifier pool-cache snapshot into the run statistics.
    pub fn record_pool_cache(&mut self, pool: hanoi_verifier::PoolCacheStats) {
        self.pool_cache_hits = pool.hits;
        self.pool_builds = pool.builds;
        self.pool_slab_builds = pool.slab_builds;
        self.pool_slab_restores = pool.slab_restores;
        self.predicate_evals = pool.predicate_evals;
    }

    /// Copies a synthesizer term-bank snapshot into the run statistics.
    pub fn record_term_bank(&mut self, bank: hanoi_synth::TermBankStats) {
        self.synth_terms_enumerated = bank.terms_enumerated;
        self.synth_column_appends = bank.column_appends;
        self.synth_eq_class_splits = bank.eq_class_splits;
        self.synth_bank_hits = bank.bank_hits;
        self.synth_bitset_row_ops = bank.bitset_row_ops;
        self.synth_guess_memo_hits = bank.guess_memo_hits;
        self.synth_probe_batches = bank.probe_batches;
        self.synth_arith_atoms = bank.arith_atoms;
    }

    /// Serializes every counter to a JSON object (durations in seconds),
    /// round-tripped by [`RunStats::from_json_value`].  This is the one
    /// serial form of run statistics; the experiment harness embeds it in
    /// its result rows instead of re-formatting each column by hand.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("total_secs", Json::Num(self.total_time.as_secs_f64())),
            (
                "verification_secs",
                Json::Num(self.verification_time.as_secs_f64()),
            ),
            (
                "verification_calls",
                Json::Num(self.verification_calls as f64),
            ),
            (
                "synthesis_secs",
                Json::Num(self.synthesis_time.as_secs_f64()),
            ),
            ("synthesis_calls", Json::Num(self.synthesis_calls as f64)),
            ("iterations", Json::Num(self.iterations as f64)),
            (
                "synthesis_cache_hits",
                Json::Num(self.synthesis_cache_hits as f64),
            ),
            (
                "clc_restored_negatives",
                Json::Num(self.clc_restored_negatives as f64),
            ),
            ("pool_cache_hits", Json::Num(self.pool_cache_hits as f64)),
            ("pool_builds", Json::Num(self.pool_builds as f64)),
            ("pool_slab_builds", Json::Num(self.pool_slab_builds as f64)),
            (
                "pool_slab_restores",
                Json::Num(self.pool_slab_restores as f64),
            ),
            ("predicate_evals", Json::Num(self.predicate_evals as f64)),
            (
                "verification_cache_hits",
                Json::Num(self.verification_cache_hits as f64),
            ),
            (
                "check_cache_evictions",
                Json::Num(self.check_cache_evictions as f64),
            ),
            ("warm_start_loads", Json::Num(self.warm_start_loads as f64)),
            (
                "warm_start_quarantined",
                Json::Num(self.warm_start_quarantined as f64),
            ),
            (
                "synth_terms_enumerated",
                Json::Num(self.synth_terms_enumerated as f64),
            ),
            (
                "synth_column_appends",
                Json::Num(self.synth_column_appends as f64),
            ),
            (
                "synth_eq_class_splits",
                Json::Num(self.synth_eq_class_splits as f64),
            ),
            ("synth_bank_hits", Json::Num(self.synth_bank_hits as f64)),
            (
                "synth_bitset_row_ops",
                Json::Num(self.synth_bitset_row_ops as f64),
            ),
            (
                "synth_guess_memo_hits",
                Json::Num(self.synth_guess_memo_hits as f64),
            ),
            (
                "synth_probe_batches",
                Json::Num(self.synth_probe_batches as f64),
            ),
            (
                "synth_arith_atoms",
                Json::Num(self.synth_arith_atoms as f64),
            ),
            (
                "invariant_size",
                Json::opt(self.invariant_size, |s| Json::Num(s as f64)),
            ),
            ("final_positives", Json::Num(self.final_positives as f64)),
            ("final_negatives", Json::Num(self.final_negatives as f64)),
        ])
    }

    /// Deserializes statistics from the output of [`RunStats::to_json`].
    pub fn from_json_value(value: &Json) -> Result<RunStats, JsonError> {
        let missing = |field: &str| JsonError {
            message: format!("missing or ill-typed stats field `{field}`"),
            offset: 0,
        };
        let secs = |field: &'static str| -> Result<Duration, JsonError> {
            value
                .get(field)
                .and_then(Json::as_f64)
                .filter(|s| *s >= 0.0)
                .map(Duration::from_secs_f64)
                .ok_or_else(|| missing(field))
        };
        let count = |field: &'static str| -> Result<usize, JsonError> {
            value
                .get(field)
                .and_then(Json::as_usize)
                .ok_or_else(|| missing(field))
        };
        let counter =
            |field: &'static str| -> Result<u64, JsonError> { count(field).map(|n| n as u64) };
        Ok(RunStats {
            total_time: secs("total_secs")?,
            verification_time: secs("verification_secs")?,
            verification_calls: count("verification_calls")?,
            synthesis_time: secs("synthesis_secs")?,
            synthesis_calls: count("synthesis_calls")?,
            iterations: count("iterations")?,
            synthesis_cache_hits: count("synthesis_cache_hits")?,
            clc_restored_negatives: count("clc_restored_negatives")?,
            pool_cache_hits: counter("pool_cache_hits")?,
            pool_builds: counter("pool_builds")?,
            pool_slab_builds: counter("pool_slab_builds")?,
            pool_slab_restores: counter("pool_slab_restores")?,
            predicate_evals: counter("predicate_evals")?,
            verification_cache_hits: counter("verification_cache_hits")?,
            check_cache_evictions: counter("check_cache_evictions")?,
            warm_start_loads: counter("warm_start_loads")?,
            warm_start_quarantined: counter("warm_start_quarantined")?,
            synth_terms_enumerated: counter("synth_terms_enumerated")?,
            synth_column_appends: counter("synth_column_appends")?,
            synth_eq_class_splits: counter("synth_eq_class_splits")?,
            synth_bank_hits: counter("synth_bank_hits")?,
            synth_bitset_row_ops: counter("synth_bitset_row_ops")?,
            synth_guess_memo_hits: counter("synth_guess_memo_hits")?,
            synth_probe_batches: counter("synth_probe_batches")?,
            synth_arith_atoms: counter("synth_arith_atoms")?,
            invariant_size: value.get("invariant_size").and_then(Json::as_usize),
            final_positives: count("final_positives")?,
            final_negatives: count("final_negatives")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_require_calls() {
        let mut stats = RunStats::default();
        assert_eq!(stats.mean_verification_time(), None);
        assert_eq!(stats.mean_synthesis_time(), None);
        stats.record_verification(Duration::from_millis(10));
        stats.record_verification(Duration::from_millis(30));
        stats.record_synthesis(Duration::from_millis(8));
        assert_eq!(stats.verification_calls, 2);
        assert_eq!(
            stats.mean_verification_time(),
            Some(Duration::from_millis(20))
        );
        assert_eq!(stats.mean_synthesis_time(), Some(Duration::from_millis(8)));
        assert_eq!(stats.synthesis_time, Duration::from_millis(8));
    }

    #[test]
    fn json_round_trips_every_counter() {
        let stats = RunStats {
            total_time: Duration::from_millis(1500),
            verification_time: Duration::from_millis(900),
            verification_calls: 12,
            synthesis_time: Duration::from_millis(400),
            synthesis_calls: 5,
            iterations: 7,
            synthesis_cache_hits: 2,
            clc_restored_negatives: 3,
            pool_cache_hits: 40,
            pool_builds: 4,
            pool_slab_builds: 9,
            pool_slab_restores: 5,
            predicate_evals: 12345,
            verification_cache_hits: 4,
            check_cache_evictions: 2,
            warm_start_loads: 3,
            warm_start_quarantined: 1,
            synth_terms_enumerated: 678,
            synth_column_appends: 6,
            synth_eq_class_splits: 2,
            synth_bank_hits: 500,
            synth_bitset_row_ops: 4321,
            synth_guess_memo_hits: 7,
            synth_probe_batches: 31,
            synth_arith_atoms: 12,
            invariant_size: Some(18),
            final_positives: 11,
            final_negatives: 8,
        };
        let json = stats.to_json();
        let text = json.render();
        let parsed = crate::json::parse(&text).unwrap();
        let back = RunStats::from_json_value(&parsed).unwrap();
        assert_eq!(back, stats);

        // `None` sizes survive too.
        let empty = RunStats::default();
        let back = RunStats::from_json_value(&empty.to_json()).unwrap();
        assert_eq!(back, empty);
        assert_eq!(back.invariant_size, None);

        // Missing fields are reported by name.
        let err = RunStats::from_json_value(&Json::obj([])).unwrap_err();
        assert!(err.message.contains("total_secs"), "{err}");
    }
}
