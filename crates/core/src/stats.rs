//! Run statistics — the columns of Figure 7.

use std::time::Duration;

/// Statistics collected during one inference run.
///
/// The field names follow the columns of Figure 7: `TVT` (total verification
/// time), `TVC` (verification call count), `MVT` (mean verification time),
/// `TST`/`TSC`/`MST` for synthesis, plus the overall wall-clock time and the
/// size of the inferred invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total wall-clock time of the run.
    pub total_time: Duration,
    /// Total time spent in the verifier (TVT).
    pub verification_time: Duration,
    /// Number of verifier calls (TVC).
    pub verification_calls: usize,
    /// Total time spent in the synthesizer (TST).
    pub synthesis_time: Duration,
    /// Number of synthesizer calls (TSC).
    pub synthesis_calls: usize,
    /// Number of CEGIS iterations (calls to the `Hanoi` recursion of
    /// Figure 4, or the analogous loop of a baseline).
    pub iterations: usize,
    /// Synthesis-result cache hits (candidates reused without a synth call).
    pub synthesis_cache_hits: usize,
    /// Negative examples restored by counterexample-list caching.
    pub clc_restored_negatives: usize,
    /// Verifier pool requests answered from the shared pool cache.
    pub pool_cache_hits: u64,
    /// Verifier pools actually enumerated (at most one per distinct
    /// `(type, count, size)` — or function-pool key — per run).
    pub pool_builds: u64,
    /// Per-size enumeration slabs built by the pool cache (at most one per
    /// `(type, size)` per run).
    pub pool_slab_builds: u64,
    /// Candidate-predicate evaluations performed by the verifier's compiled
    /// predicates (pool filtering plus `P`/`Q` tests).
    pub predicate_evals: u64,
    /// Candidate terms enumerated by the synthesis engine (pre-dedup) across
    /// all guesses of the run.
    pub synth_terms_enumerated: u64,
    /// Signature columns appended to the synthesizer's persistent term bank
    /// after the first synthesis call (one per new example world).
    pub synth_column_appends: u64,
    /// Observational-equivalence classes re-split because a freshly appended
    /// signature column distinguished previously-merged terms.
    pub synth_eq_class_splits: u64,
    /// Signature evaluations served from the term bank without touching the
    /// interpreter.
    pub synth_bank_hits: u64,
    /// Size in AST nodes of the inferred invariant, when one was found.
    pub invariant_size: Option<usize>,
    /// Final number of positive examples.
    pub final_positives: usize,
    /// Final number of negative examples.
    pub final_negatives: usize,
}

impl RunStats {
    /// Mean time per verification call (MVT), if any call was made.
    pub fn mean_verification_time(&self) -> Option<Duration> {
        (self.verification_calls > 0)
            .then(|| self.verification_time / self.verification_calls as u32)
    }

    /// Mean time per synthesis call (MST), if any call was made.
    pub fn mean_synthesis_time(&self) -> Option<Duration> {
        (self.synthesis_calls > 0).then(|| self.synthesis_time / self.synthesis_calls as u32)
    }

    /// Records one verifier call.
    pub fn record_verification(&mut self, elapsed: Duration) {
        self.verification_calls += 1;
        self.verification_time += elapsed;
    }

    /// Records one synthesizer call.
    pub fn record_synthesis(&mut self, elapsed: Duration) {
        self.synthesis_calls += 1;
        self.synthesis_time += elapsed;
    }

    /// Copies a verifier pool-cache snapshot into the run statistics.
    pub fn record_pool_cache(&mut self, pool: hanoi_verifier::PoolCacheStats) {
        self.pool_cache_hits = pool.hits;
        self.pool_builds = pool.builds;
        self.pool_slab_builds = pool.slab_builds;
        self.predicate_evals = pool.predicate_evals;
    }

    /// Copies a synthesizer term-bank snapshot into the run statistics.
    pub fn record_term_bank(&mut self, bank: hanoi_synth::TermBankStats) {
        self.synth_terms_enumerated = bank.terms_enumerated;
        self.synth_column_appends = bank.column_appends;
        self.synth_eq_class_splits = bank.eq_class_splits;
        self.synth_bank_hits = bank.bank_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_require_calls() {
        let mut stats = RunStats::default();
        assert_eq!(stats.mean_verification_time(), None);
        assert_eq!(stats.mean_synthesis_time(), None);
        stats.record_verification(Duration::from_millis(10));
        stats.record_verification(Duration::from_millis(30));
        stats.record_synthesis(Duration::from_millis(8));
        assert_eq!(stats.verification_calls, 2);
        assert_eq!(
            stats.mean_verification_time(),
            Some(Duration::from_millis(20))
        );
        assert_eq!(stats.mean_synthesis_time(), Some(Duration::from_millis(8)));
        assert_eq!(stats.synthesis_time, Duration::from_millis(8));
    }
}
