//! Shared state and plumbing for the inference session and the baseline
//! modes: example sets, timed verifier/synthesizer calls, caches, statistics,
//! event streaming and cancellation.

use std::time::Instant;

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::util::{CancelToken, Deadline, OrderedSet};
use hanoi_lang::value::Value;
use hanoi_synth::{ExampleSet, FoldSynth, MythSynth, SynthError, SynthesisCache, Synthesizer};
use hanoi_verifier::{InductivenessOutcome, SufficiencyOutcome, Verifier, VerifierError};

use crate::clc::CexListCache;
use crate::config::{RunOptions, SynthChoice};
use crate::events::{RunEvent, RunObserver, RunPhase};
use crate::outcome::{Outcome, RunResult};
use crate::stats::RunStats;

/// Mutable state of one inference run, shared by all modes.
///
/// A context is built by a [`crate::Session`] (warm caches from the engine)
/// or standalone via [`InferenceContext::new`] (fresh caches); either way it
/// carries the run's deadline and cancellation token, streams [`RunEvent`]s
/// to the run's observer, and owns the verifier/synthesizer pair every mode
/// drives.
pub struct InferenceContext<'p, 'o> {
    /// The problem being solved.
    pub problem: &'p Problem,
    /// The per-run options.
    pub options: RunOptions,
    /// The shared wall-clock deadline (carries the cancellation token).
    pub deadline: Deadline,
    /// Statistics being accumulated.
    pub stats: RunStats,
    /// Known-constructible values (`V+`).
    pub v_plus: OrderedSet<Value>,
    /// Values the current candidate must reject (`V−`).
    pub v_minus: OrderedSet<Value>,
    cancel: Option<CancelToken>,
    observer: Option<&'o mut dyn RunObserver>,
    verifier: Verifier<'p>,
    synthesizer: Box<dyn Synthesizer>,
    synth_cache: SynthesisCache,
    cex_cache: CexListCache,
    started: Instant,
    /// Counter snapshots taken at run start.  The engine's caches live
    /// *across* runs, so their counters are cumulative; `RunStats` reports
    /// the per-run delta (a fully warm run shows `pool_builds == 0`).
    pool_base: hanoi_verifier::PoolCacheStats,
    check_base: hanoi_verifier::CheckCacheStats,
    bank_base: hanoi_synth::TermBankStats,
}

impl<'p, 'o> InferenceContext<'p, 'o> {
    /// Creates a fresh, cold context for one standalone run: new pool cache,
    /// new term bank, no observer, no external cancellation.
    ///
    /// `parallelism` is the engine-wide worker-thread knob (`1` = serial,
    /// `0` = one worker per core).
    pub fn new(problem: &'p Problem, options: RunOptions, parallelism: usize) -> Self {
        let deadline = match options.timeout {
            Some(timeout) => Deadline::after(timeout),
            None => Deadline::none(),
        };
        let verifier = Verifier::new(problem)
            .with_bounds(options.bounds)
            .with_deadline(deadline.clone())
            .with_parallelism(parallelism);
        let synthesizer = Self::make_synthesizer(&options, parallelism);
        Self::from_parts(
            problem,
            options,
            deadline,
            None,
            None,
            verifier,
            synthesizer,
        )
    }

    /// Assembles a context from externally owned parts — the constructor the
    /// [`crate::Session`] uses to hand a run warm caches, an observer and a
    /// cancellation token.  `deadline` must already carry `cancel` (when
    /// given) so the verifier and synthesizer workers poll it.
    pub(crate) fn from_parts(
        problem: &'p Problem,
        options: RunOptions,
        deadline: Deadline,
        cancel: Option<CancelToken>,
        observer: Option<&'o mut dyn RunObserver>,
        verifier: Verifier<'p>,
        synthesizer: Box<dyn Synthesizer>,
    ) -> Self {
        let pool_base = verifier.pool_stats();
        let check_base = verifier.check_cache_stats();
        let bank_base = synthesizer.term_bank_stats();
        let mut ctx = InferenceContext {
            problem,
            options,
            deadline,
            stats: RunStats::default(),
            v_plus: OrderedSet::new(),
            v_minus: OrderedSet::new(),
            cancel,
            observer,
            verifier,
            synthesizer,
            synth_cache: SynthesisCache::new(),
            cex_cache: CexListCache::new(),
            started: Instant::now(),
            pool_base,
            check_base,
            bank_base,
        };
        ctx.emit(RunEvent::RunStarted {
            mode: ctx.options.mode,
            synthesizer: ctx.options.synthesizer,
        });
        ctx
    }

    /// Builds the configured synthesizer, threading the engine-wide
    /// parallelism knob into the search configuration so synthesis-side layer
    /// construction uses the same worker pool size as the verifier.  An
    /// explicitly set `SearchConfig::parallelism` (including `Some(1)`,
    /// forced-serial) takes precedence over the engine-wide knob.
    pub fn make_synthesizer(options: &RunOptions, parallelism: usize) -> Box<dyn Synthesizer> {
        let mut search = options.search.clone();
        if search.parallelism.is_none() {
            search.parallelism = Some(parallelism);
        }
        match options.synthesizer {
            SynthChoice::Myth => Box::new(MythSynth::with_config(search)),
            SynthChoice::Fold => Box::new(FoldSynth::new().with_config(search)),
        }
    }

    /// Streams an event to the run's observer, if one is registered.
    pub fn emit(&mut self, event: RunEvent) {
        if let Some(observer) = self.observer.as_deref_mut() {
            observer.on_event(&event);
        }
    }

    /// Streams a [`RunEvent::CandidateProposed`], cloning the candidate
    /// expression only when someone is listening.
    fn emit_candidate(&mut self, candidate: &Expr, from_cache: bool) {
        if self.observer.is_none() {
            return;
        }
        let event = RunEvent::CandidateProposed {
            iteration: self.stats.iterations,
            candidate: candidate.clone(),
            from_cache,
        };
        self.emit(event);
    }

    /// `true` once the run's wall-clock budget is exhausted or the run was
    /// cancelled.
    pub fn timed_out(&self) -> bool {
        self.deadline.expired()
    }

    /// The outcome to abort with, when the run can no longer continue:
    /// [`Outcome::Cancelled`] when the cancellation token fired,
    /// [`Outcome::Timeout`] when the wall clock ran out, `None` otherwise.
    pub fn interrupted(&self) -> Option<Outcome> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(Outcome::Cancelled);
        }
        if self.deadline.expired() {
            return Some(Outcome::Timeout);
        }
        None
    }

    /// Wraps up the run: fills the time, example-count, pool-cache and
    /// term-bank statistics, and emits the final event.
    pub fn finish(mut self, outcome: Outcome) -> RunResult {
        self.stats.total_time = self.started.elapsed();
        self.stats.final_positives = self.v_plus.len();
        self.stats.final_negatives = self.v_minus.len();
        // The caches may be shared across runs: report this run's delta.
        let pools = self.verifier.pool_stats();
        self.stats
            .record_pool_cache(hanoi_verifier::PoolCacheStats {
                hits: pools.hits - self.pool_base.hits,
                builds: pools.builds - self.pool_base.builds,
                slab_builds: pools.slab_builds - self.pool_base.slab_builds,
                slab_restores: pools.slab_restores - self.pool_base.slab_restores,
                predicate_evals: pools.predicate_evals - self.pool_base.predicate_evals,
            });
        let checks = self.verifier.check_cache_stats();
        self.stats.verification_cache_hits = checks.hits - self.check_base.hits;
        self.stats.check_cache_evictions = checks.evictions - self.check_base.evictions;
        let bank = self.synthesizer.term_bank_stats();
        self.stats.record_term_bank(hanoi_synth::TermBankStats {
            terms_enumerated: bank.terms_enumerated - self.bank_base.terms_enumerated,
            column_appends: bank.column_appends - self.bank_base.column_appends,
            eq_class_splits: bank.eq_class_splits - self.bank_base.eq_class_splits,
            bank_hits: bank.bank_hits - self.bank_base.bank_hits,
            bitset_row_ops: bank.bitset_row_ops - self.bank_base.bitset_row_ops,
            guess_memo_hits: bank.guess_memo_hits - self.bank_base.guess_memo_hits,
            probe_batches: bank.probe_batches - self.bank_base.probe_batches,
            arith_atoms: bank.arith_atoms - self.bank_base.arith_atoms,
            ..bank
        });
        self.emit(RunEvent::RunFinished {
            success: outcome.is_success(),
            iterations: self.stats.iterations,
            total: self.stats.total_time,
        });
        RunResult::new(outcome, self.stats)
    }

    /// The verifier used by this run.
    pub fn verifier(&self) -> &Verifier<'p> {
        &self.verifier
    }

    /// Builds the current example set (`V+` / `V−`), applying the
    /// trace-completeness closure and folding the newly added subvalues back
    /// into `V−` (§4.3).
    pub fn current_examples(&mut self) -> Result<ExampleSet, Outcome> {
        let examples =
            ExampleSet::from_sets(self.v_plus.iter().cloned(), self.v_minus.iter().cloned())
                .map_err(|e| Outcome::SynthesisFailure(e.to_string()))?;
        let (closed, _added) =
            examples.trace_completed(&self.problem.tyenv, self.problem.concrete_type());
        for negative in closed.negatives() {
            if !self.v_plus.contains(negative) {
                self.v_minus.insert(negative.clone());
            }
        }
        Ok(closed)
    }

    /// Produces the next candidate invariant: from the synthesis-result cache
    /// when enabled and possible, otherwise by calling the synthesizer.
    pub fn synthesize_candidate(&mut self) -> Result<Expr, Outcome> {
        let examples = self.current_examples()?;
        if self.options.optimizations.synthesis_result_caching {
            if let Some(cached) = self.synth_cache.find_consistent(self.problem, &examples) {
                self.stats.synthesis_cache_hits += 1;
                self.emit_candidate(&cached, true);
                return Ok(cached);
            }
        }
        let start = Instant::now();
        let result = self
            .synthesizer
            .synthesize(self.problem, &examples, &self.deadline);
        let elapsed = start.elapsed();
        self.stats.record_synthesis(elapsed);
        self.emit(RunEvent::PhaseFinished {
            phase: RunPhase::Synthesis,
            elapsed,
        });
        match result {
            Ok(candidate) => {
                self.synth_cache.insert(candidate.clone());
                self.emit_candidate(&candidate, false);
                Ok(candidate)
            }
            Err(SynthError::Timeout) => Err(self.interrupted().unwrap_or(Outcome::Timeout)),
            Err(other) => Err(Outcome::SynthesisFailure(other.to_string())),
        }
    }

    /// Timed visible-inductiveness check (`ClosedPositives`).
    pub fn check_visible(&mut self, candidate: &Expr) -> Result<InductivenessOutcome, Outcome> {
        let start = Instant::now();
        let result = self
            .verifier
            .check_visible_inductiveness(self.v_plus.as_slice(), candidate);
        self.record_check(RunPhase::VisibleInductiveness, start);
        self.map_verifier_result(result)
    }

    /// Timed sufficiency check.
    pub fn check_sufficiency(&mut self, candidate: &Expr) -> Result<SufficiencyOutcome, Outcome> {
        let start = Instant::now();
        let result = self.verifier.check_sufficiency(candidate);
        self.record_check(RunPhase::Sufficiency, start);
        self.map_verifier_result(result)
    }

    /// Timed full-inductiveness check.
    pub fn check_full(&mut self, candidate: &Expr) -> Result<InductivenessOutcome, Outcome> {
        let start = Instant::now();
        let result = self.verifier.check_full_inductiveness(candidate);
        self.record_check(RunPhase::FullInductiveness, start);
        self.map_verifier_result(result)
    }

    /// Timed single-operation full-inductiveness check (LA baseline).
    pub fn check_op(
        &mut self,
        op: &str,
        candidate: &Expr,
    ) -> Result<InductivenessOutcome, Outcome> {
        let start = Instant::now();
        let result = self.verifier.check_op_inductiveness(op, candidate);
        self.record_check(RunPhase::OpInductiveness, start);
        self.map_verifier_result(result)
    }

    fn record_check(&mut self, phase: RunPhase, start: Instant) {
        let elapsed = start.elapsed();
        self.stats.record_verification(elapsed);
        self.emit(RunEvent::PhaseFinished { phase, elapsed });
    }

    fn map_verifier_result<T>(&self, result: Result<T, VerifierError>) -> Result<T, Outcome> {
        match result {
            Ok(value) => Ok(value),
            // The verifier reports every deadline expiry as a timeout; when
            // the deadline's cancellation token fired, the run was cancelled.
            Err(VerifierError::Timeout) => Err(self.interrupted().unwrap_or(Outcome::Timeout)),
            Err(other) => Err(Outcome::SynthesisFailure(format!(
                "verifier failed: {other}"
            ))),
        }
    }

    /// Registers newly discovered constructible values: extends `V+`, resets
    /// `V−` (replaying the counterexample-list cache when enabled).
    pub fn add_positives(&mut self, values: impl IntoIterator<Item = Value>) {
        let added = self.v_plus.extend(values);
        self.v_minus.clear();
        if self.options.optimizations.counterexample_list_caching {
            let restored = self.cex_cache.replay(self.problem, self.v_plus.as_slice());
            self.stats.clc_restored_negatives += restored.len();
            self.v_minus.extend(restored);
        } else {
            self.cex_cache = CexListCache::new();
        }
        let event = RunEvent::PositivesAdded {
            added,
            total: self.v_plus.len(),
        };
        self.emit(event);
    }

    /// Registers negative examples produced in response to `candidate`:
    /// extends `V−` with the values not already known constructible and
    /// records the step in the counterexample-list cache.
    ///
    /// Returns the values that were actually added.
    pub fn add_negatives(&mut self, candidate: &Expr, values: &[Value]) -> Vec<Value> {
        let fresh: Vec<Value> = values
            .iter()
            .filter(|v| !self.v_plus.contains(v))
            .cloned()
            .collect();
        self.v_minus.extend(fresh.iter().cloned());
        if !fresh.is_empty() {
            self.cex_cache.record(candidate.clone(), fresh.clone());
        }
        let event = RunEvent::NegativesAdded {
            added: fresh.len(),
            total: self.v_minus.len(),
        };
        self.emit(event);
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;

    const SIMPLE: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list
        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val lookup : t -> nat -> bool
        end
        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
        end
        spec (s : t) (i : nat) = lookup (insert s i) i
    "#;

    #[test]
    fn example_bookkeeping() {
        let problem = Problem::from_source(SIMPLE).unwrap();
        let mut ctx = InferenceContext::new(&problem, RunOptions::quick(), 1);
        assert!(!ctx.timed_out());
        assert_eq!(ctx.interrupted(), None);

        let candidate = hanoi_lang::parser::parse_expr("fun (l : list) -> True").unwrap();
        let added = ctx.add_negatives(&candidate, &[Value::nat_list(&[1, 1])]);
        assert_eq!(added.len(), 1);
        assert!(ctx.v_minus.contains(&Value::nat_list(&[1, 1])));

        // Trace completeness adds [1] and [] as negatives.
        let examples = ctx.current_examples().unwrap();
        assert_eq!(examples.label(&Value::nat_list(&[1])), Some(false));
        assert!(ctx.v_minus.contains(&Value::nat_list(&[])));

        // A new positive resets V− and (with CLC) replays the surviving
        // prefix of the trace: `true` accepts [], so [1;1] is restored.
        ctx.add_positives([Value::nat_list(&[])]);
        assert!(ctx.v_plus.contains(&Value::nat_list(&[])));
        assert!(ctx.v_minus.contains(&Value::nat_list(&[1, 1])));
        assert_eq!(ctx.stats.clc_restored_negatives, 1);
    }

    #[test]
    fn disabling_clc_resets_v_minus_completely() {
        let problem = Problem::from_source(SIMPLE).unwrap();
        let options = RunOptions::quick().with_optimizations(Optimizations::without_clc());
        let mut ctx = InferenceContext::new(&problem, options, 1);
        let candidate = hanoi_lang::parser::parse_expr("fun (l : list) -> True").unwrap();
        ctx.add_negatives(&candidate, &[Value::nat_list(&[1, 1])]);
        ctx.add_positives([Value::nat_list(&[])]);
        assert!(ctx.v_minus.is_empty());
        assert_eq!(ctx.stats.clc_restored_negatives, 0);
    }

    #[test]
    fn negatives_already_positive_are_not_added() {
        let problem = Problem::from_source(SIMPLE).unwrap();
        let mut ctx = InferenceContext::new(&problem, RunOptions::quick(), 1);
        ctx.add_positives([Value::nat_list(&[2])]);
        let candidate = hanoi_lang::parser::parse_expr("fun (l : list) -> True").unwrap();
        let added = ctx.add_negatives(&candidate, &[Value::nat_list(&[2]), Value::nat_list(&[3])]);
        assert_eq!(added, vec![Value::nat_list(&[3])]);
    }

    #[test]
    fn synthesize_candidate_uses_the_cache() {
        let problem = Problem::from_source(SIMPLE).unwrap();
        let mut ctx = InferenceContext::new(&problem, RunOptions::quick(), 1);
        let first = ctx.synthesize_candidate().unwrap();
        assert_eq!(ctx.stats.synthesis_calls, 1);
        let second = ctx.synthesize_candidate().unwrap();
        assert_eq!(first, second);
        // The second call is served from the synthesis-result cache.
        assert_eq!(ctx.stats.synthesis_calls, 1);
        assert_eq!(ctx.stats.synthesis_cache_hits, 1);
        let result = ctx.finish(Outcome::Invariant(first));
        assert!(result.is_success());
        assert!(result.stats.total_time > std::time::Duration::ZERO);
    }

    #[test]
    fn events_stream_to_the_observer() {
        use crate::events::CollectingObserver;

        let problem = Problem::from_source(SIMPLE).unwrap();
        let mut observer = CollectingObserver::new();
        let options = RunOptions::quick();
        let deadline = Deadline::none();
        let verifier = Verifier::new(&problem)
            .with_bounds(options.bounds)
            .with_deadline(deadline.clone());
        let synthesizer = InferenceContext::make_synthesizer(&options, 1);
        let mut ctx = InferenceContext::from_parts(
            &problem,
            options,
            deadline,
            None,
            Some(&mut observer),
            verifier,
            synthesizer,
        );
        let candidate = ctx.synthesize_candidate().unwrap();
        let cached = ctx.synthesize_candidate().unwrap();
        assert_eq!(candidate, cached);
        ctx.add_negatives(&candidate, &[Value::nat_list(&[1, 1])]);
        let _ = ctx.check_sufficiency(&candidate).unwrap();
        let result = ctx.finish(Outcome::Invariant(candidate));
        assert!(result.is_success());

        let events = &observer.events;
        assert!(matches!(events[0], RunEvent::RunStarted { .. }));
        assert!(matches!(
            events.last(),
            Some(RunEvent::RunFinished { success: true, .. })
        ));
        assert_eq!(
            observer.count(|e| matches!(
                e,
                RunEvent::CandidateProposed {
                    from_cache: false,
                    ..
                }
            )),
            1
        );
        assert_eq!(
            observer.count(|e| matches!(
                e,
                RunEvent::CandidateProposed {
                    from_cache: true,
                    ..
                }
            )),
            1
        );
        assert_eq!(
            observer.count(|e| matches!(
                e,
                RunEvent::PhaseFinished {
                    phase: RunPhase::Sufficiency,
                    ..
                }
            )),
            1
        );
        assert_eq!(
            observer.count(|e| matches!(e, RunEvent::NegativesAdded { added: 1, .. })),
            1
        );
    }

    #[test]
    fn cancellation_maps_to_the_cancelled_outcome() {
        let problem = Problem::from_source(SIMPLE).unwrap();
        let options = RunOptions::quick();
        let token = CancelToken::new();
        let deadline = Deadline::none().with_cancel(token.clone());
        let verifier = Verifier::new(&problem)
            .with_bounds(options.bounds)
            .with_deadline(deadline.clone());
        let synthesizer = InferenceContext::make_synthesizer(&options, 1);
        let ctx = InferenceContext::from_parts(
            &problem,
            options,
            deadline,
            Some(token.clone()),
            None,
            verifier,
            synthesizer,
        );
        assert_eq!(ctx.interrupted(), None);
        token.cancel();
        assert_eq!(ctx.interrupted(), Some(Outcome::Cancelled));
        assert!(ctx.timed_out(), "cancellation expires the shared deadline");
    }
}
