//! Shared state and plumbing for the inference driver and the baseline modes:
//! example sets, timed verifier/synthesizer calls, caches and statistics.

use std::time::Instant;

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::util::{Deadline, OrderedSet};
use hanoi_lang::value::Value;
use hanoi_synth::{ExampleSet, FoldSynth, MythSynth, SynthError, SynthesisCache, Synthesizer};
use hanoi_verifier::{InductivenessOutcome, SufficiencyOutcome, Verifier, VerifierError};

use crate::clc::CexListCache;
use crate::config::{HanoiConfig, SynthChoice};
use crate::outcome::{Outcome, RunResult};
use crate::stats::RunStats;

/// Mutable state of one inference run, shared by all modes.
pub struct InferenceContext<'p> {
    /// The problem being solved.
    pub problem: &'p Problem,
    /// The run configuration.
    pub config: HanoiConfig,
    /// The shared wall-clock deadline.
    pub deadline: Deadline,
    /// Statistics being accumulated.
    pub stats: RunStats,
    /// Known-constructible values (`V+`).
    pub v_plus: OrderedSet<Value>,
    /// Values the current candidate must reject (`V−`).
    pub v_minus: OrderedSet<Value>,
    verifier: Verifier<'p>,
    synthesizer: Box<dyn Synthesizer>,
    synth_cache: SynthesisCache,
    cex_cache: CexListCache,
    started: Instant,
}

impl<'p> InferenceContext<'p> {
    /// Creates a fresh context for one run.
    pub fn new(problem: &'p Problem, config: HanoiConfig) -> Self {
        let deadline = match config.timeout {
            Some(timeout) => Deadline::after(timeout),
            None => Deadline::none(),
        };
        let verifier = Verifier::new(problem)
            .with_bounds(config.bounds)
            .with_deadline(deadline)
            .with_parallelism(config.parallelism);
        let synthesizer = Self::make_synthesizer(&config);
        InferenceContext {
            problem,
            config,
            deadline,
            stats: RunStats::default(),
            v_plus: OrderedSet::new(),
            v_minus: OrderedSet::new(),
            verifier,
            synthesizer,
            synth_cache: SynthesisCache::new(),
            cex_cache: CexListCache::new(),
            started: Instant::now(),
        }
    }

    /// Builds the configured synthesizer, threading the run's parallelism
    /// knob into the search configuration so synthesis-side layer
    /// construction uses the same worker pool size as the verifier.  An
    /// explicitly set `SearchConfig::parallelism` (including `Some(1)`,
    /// forced-serial) takes precedence over the run-wide knob.
    pub fn make_synthesizer(config: &HanoiConfig) -> Box<dyn Synthesizer> {
        let mut search = config.search.clone();
        if search.parallelism.is_none() {
            search.parallelism = Some(config.parallelism);
        }
        match config.synthesizer {
            SynthChoice::Myth => Box::new(MythSynth::with_config(search)),
            SynthChoice::Fold => Box::new(FoldSynth::new().with_config(search)),
        }
    }

    /// `true` once the run's wall-clock budget is exhausted.
    pub fn timed_out(&self) -> bool {
        self.deadline.expired()
    }

    /// Wraps up the run: fills the time, example-count, pool-cache and
    /// term-bank statistics.
    pub fn finish(mut self, outcome: Outcome) -> RunResult {
        self.stats.total_time = self.started.elapsed();
        self.stats.final_positives = self.v_plus.len();
        self.stats.final_negatives = self.v_minus.len();
        self.stats.record_pool_cache(self.verifier.pool_stats());
        self.stats
            .record_term_bank(self.synthesizer.term_bank_stats());
        RunResult::new(outcome, self.stats)
    }

    /// The verifier used by this run.
    pub fn verifier(&self) -> &Verifier<'p> {
        &self.verifier
    }

    /// Builds the current example set (`V+` / `V−`), applying the
    /// trace-completeness closure and folding the newly added subvalues back
    /// into `V−` (§4.3).
    pub fn current_examples(&mut self) -> Result<ExampleSet, Outcome> {
        let examples =
            ExampleSet::from_sets(self.v_plus.iter().cloned(), self.v_minus.iter().cloned())
                .map_err(|e| Outcome::SynthesisFailure(e.to_string()))?;
        let (closed, _added) =
            examples.trace_completed(&self.problem.tyenv, self.problem.concrete_type());
        for negative in closed.negatives() {
            if !self.v_plus.contains(negative) {
                self.v_minus.insert(negative.clone());
            }
        }
        Ok(closed)
    }

    /// Produces the next candidate invariant: from the synthesis-result cache
    /// when enabled and possible, otherwise by calling the synthesizer.
    pub fn synthesize_candidate(&mut self) -> Result<Expr, Outcome> {
        let examples = self.current_examples()?;
        if self.config.optimizations.synthesis_result_caching {
            if let Some(cached) = self.synth_cache.find_consistent(self.problem, &examples) {
                self.stats.synthesis_cache_hits += 1;
                return Ok(cached);
            }
        }
        let start = Instant::now();
        let result = self
            .synthesizer
            .synthesize(self.problem, &examples, &self.deadline);
        self.stats.record_synthesis(start.elapsed());
        match result {
            Ok(candidate) => {
                self.synth_cache.insert(candidate.clone());
                Ok(candidate)
            }
            Err(SynthError::Timeout) => Err(Outcome::Timeout),
            Err(other) => Err(Outcome::SynthesisFailure(other.to_string())),
        }
    }

    /// Timed visible-inductiveness check (`ClosedPositives`).
    pub fn check_visible(&mut self, candidate: &Expr) -> Result<InductivenessOutcome, Outcome> {
        let start = Instant::now();
        let result = self
            .verifier
            .check_visible_inductiveness(self.v_plus.as_slice(), candidate);
        self.stats.record_verification(start.elapsed());
        Self::map_verifier_result(result)
    }

    /// Timed sufficiency check.
    pub fn check_sufficiency(&mut self, candidate: &Expr) -> Result<SufficiencyOutcome, Outcome> {
        let start = Instant::now();
        let result = self.verifier.check_sufficiency(candidate);
        self.stats.record_verification(start.elapsed());
        Self::map_verifier_result(result)
    }

    /// Timed full-inductiveness check.
    pub fn check_full(&mut self, candidate: &Expr) -> Result<InductivenessOutcome, Outcome> {
        let start = Instant::now();
        let result = self.verifier.check_full_inductiveness(candidate);
        self.stats.record_verification(start.elapsed());
        Self::map_verifier_result(result)
    }

    /// Timed single-operation full-inductiveness check (LA baseline).
    pub fn check_op(
        &mut self,
        op: &str,
        candidate: &Expr,
    ) -> Result<InductivenessOutcome, Outcome> {
        let start = Instant::now();
        let result = self.verifier.check_op_inductiveness(op, candidate);
        self.stats.record_verification(start.elapsed());
        Self::map_verifier_result(result)
    }

    fn map_verifier_result<T>(result: Result<T, VerifierError>) -> Result<T, Outcome> {
        match result {
            Ok(value) => Ok(value),
            Err(VerifierError::Timeout) => Err(Outcome::Timeout),
            Err(other) => Err(Outcome::SynthesisFailure(format!(
                "verifier failed: {other}"
            ))),
        }
    }

    /// Registers newly discovered constructible values: extends `V+`, resets
    /// `V−` (replaying the counterexample-list cache when enabled).
    pub fn add_positives(&mut self, values: impl IntoIterator<Item = Value>) {
        self.v_plus.extend(values);
        self.v_minus.clear();
        if self.config.optimizations.counterexample_list_caching {
            let restored = self.cex_cache.replay(self.problem, self.v_plus.as_slice());
            self.stats.clc_restored_negatives += restored.len();
            self.v_minus.extend(restored);
        } else {
            self.cex_cache = CexListCache::new();
        }
    }

    /// Registers negative examples produced in response to `candidate`:
    /// extends `V−` with the values not already known constructible and
    /// records the step in the counterexample-list cache.
    ///
    /// Returns the values that were actually added.
    pub fn add_negatives(&mut self, candidate: &Expr, values: &[Value]) -> Vec<Value> {
        let fresh: Vec<Value> = values
            .iter()
            .filter(|v| !self.v_plus.contains(v))
            .cloned()
            .collect();
        self.v_minus.extend(fresh.iter().cloned());
        if !fresh.is_empty() {
            self.cex_cache.record(candidate.clone(), fresh.clone());
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;

    const SIMPLE: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list
        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val lookup : t -> nat -> bool
        end
        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
        end
        spec (s : t) (i : nat) = lookup (insert s i) i
    "#;

    #[test]
    fn example_bookkeeping() {
        let problem = Problem::from_source(SIMPLE).unwrap();
        let mut ctx = InferenceContext::new(&problem, HanoiConfig::quick());
        assert!(!ctx.timed_out());

        let candidate = hanoi_lang::parser::parse_expr("fun (l : list) -> True").unwrap();
        let added = ctx.add_negatives(&candidate, &[Value::nat_list(&[1, 1])]);
        assert_eq!(added.len(), 1);
        assert!(ctx.v_minus.contains(&Value::nat_list(&[1, 1])));

        // Trace completeness adds [1] and [] as negatives.
        let examples = ctx.current_examples().unwrap();
        assert_eq!(examples.label(&Value::nat_list(&[1])), Some(false));
        assert!(ctx.v_minus.contains(&Value::nat_list(&[])));

        // A new positive resets V− and (with CLC) replays the surviving
        // prefix of the trace: `true` accepts [], so [1;1] is restored.
        ctx.add_positives([Value::nat_list(&[])]);
        assert!(ctx.v_plus.contains(&Value::nat_list(&[])));
        assert!(ctx.v_minus.contains(&Value::nat_list(&[1, 1])));
        assert_eq!(ctx.stats.clc_restored_negatives, 1);
    }

    #[test]
    fn disabling_clc_resets_v_minus_completely() {
        let problem = Problem::from_source(SIMPLE).unwrap();
        let config = HanoiConfig::quick().with_optimizations(Optimizations::without_clc());
        let mut ctx = InferenceContext::new(&problem, config);
        let candidate = hanoi_lang::parser::parse_expr("fun (l : list) -> True").unwrap();
        ctx.add_negatives(&candidate, &[Value::nat_list(&[1, 1])]);
        ctx.add_positives([Value::nat_list(&[])]);
        assert!(ctx.v_minus.is_empty());
        assert_eq!(ctx.stats.clc_restored_negatives, 0);
    }

    #[test]
    fn negatives_already_positive_are_not_added() {
        let problem = Problem::from_source(SIMPLE).unwrap();
        let mut ctx = InferenceContext::new(&problem, HanoiConfig::quick());
        ctx.add_positives([Value::nat_list(&[2])]);
        let candidate = hanoi_lang::parser::parse_expr("fun (l : list) -> True").unwrap();
        let added = ctx.add_negatives(&candidate, &[Value::nat_list(&[2]), Value::nat_list(&[3])]);
        assert_eq!(added, vec![Value::nat_list(&[3])]);
    }

    #[test]
    fn synthesize_candidate_uses_the_cache() {
        let problem = Problem::from_source(SIMPLE).unwrap();
        let mut ctx = InferenceContext::new(&problem, HanoiConfig::quick());
        let first = ctx.synthesize_candidate().unwrap();
        assert_eq!(ctx.stats.synthesis_calls, 1);
        let second = ctx.synthesize_candidate().unwrap();
        assert_eq!(first, second);
        // The second call is served from the synthesis-result cache.
        assert_eq!(ctx.stats.synthesis_calls, 1);
        assert_eq!(ctx.stats.synthesis_cache_hits, 1);
        let result = ctx.finish(Outcome::Invariant(first));
        assert!(result.is_success());
        assert!(result.stats.total_time > std::time::Duration::ZERO);
    }
}
