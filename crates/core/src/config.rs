//! Configuration of the inference service.
//!
//! Configuration is split along the lifetime of the state it describes:
//!
//! * [`EngineConfig`] — engine-wide settings that shape the *shared* state a
//!   long-lived [`crate::Engine`] owns (worker threads, cache budgets).
//!   Fixed for the engine's lifetime.
//! * [`RunOptions`] — per-run options (mode, synthesizer, verifier bounds,
//!   search schedule, optimizations, wall-clock budget).  Every
//!   [`crate::Session`] run picks its own.
//!
//! Both carry validating builders: setters keep the value well-formed where
//! possible, and `validate()` rejects the combinations the engine cannot
//! execute (reported as [`ConfigError`]).  The legacy [`HanoiConfig`] bundle
//! is kept for the deprecated [`crate::Driver`] entry point and converts
//! losslessly via [`HanoiConfig::split`] / [`HanoiConfig::from_parts`].

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use hanoi_synth::SearchConfig;
use hanoi_verifier::VerifierBounds;

/// Which inference algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The full Hanoi algorithm (visible-inductiveness-first CEGIS).
    Hanoi,
    /// The conjunctive-strengthening baseline (∧Str, modelled on LoopInvGen).
    ConjStr,
    /// The LinearArbitrary-style baseline: per-operation full-inductiveness
    /// counterexamples only, no eager visible-inductiveness search.
    LinearArbitrary,
    /// One-shot learning from the smallest values labelled by the spec.
    OneShot,
}

impl Mode {
    /// All modes, in the order they appear in Figure 8.
    pub fn all() -> [Mode; 4] {
        [
            Mode::Hanoi,
            Mode::ConjStr,
            Mode::LinearArbitrary,
            Mode::OneShot,
        ]
    }

    /// The label used in experiment reports.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Hanoi => "Hanoi",
            Mode::ConjStr => "AndStr",
            Mode::LinearArbitrary => "LA",
            Mode::OneShot => "OneShot",
        }
    }
}

/// Which synthesizer backs the `Synth` component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SynthChoice {
    /// The Myth-style synthesizer (the paper's default back end).
    #[default]
    Myth,
    /// The fold-capable prototype synthesizer of §5.4.
    Fold,
}

impl SynthChoice {
    /// The label used in experiment reports (and as the bank key inside
    /// warm-start snapshot files).
    pub fn label(&self) -> &'static str {
        match self {
            SynthChoice::Myth => "myth",
            SynthChoice::Fold => "fold",
        }
    }

    /// Inverse of [`SynthChoice::label`].
    pub fn from_label(label: &str) -> Option<SynthChoice> {
        match label {
            "myth" => Some(SynthChoice::Myth),
            "fold" => Some(SynthChoice::Fold),
            _ => None,
        }
    }
}

/// The two optimizations of §4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// Synthesis-result caching: reuse previously synthesized candidates that
    /// are already consistent with the current examples.
    pub synthesis_result_caching: bool,
    /// Counterexample-list caching: when a new positive example resets `V−`,
    /// replay the recorded trace of candidates to rebuild `V−` without
    /// re-running synthesis and verification.
    pub counterexample_list_caching: bool,
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations {
            synthesis_result_caching: true,
            counterexample_list_caching: true,
        }
    }
}

impl Optimizations {
    /// Both optimizations enabled (the full Hanoi configuration).
    pub fn all() -> Self {
        Optimizations::default()
    }

    /// Synthesis-result caching disabled (the paper's "Hanoi-SRC" mode).
    pub fn without_src() -> Self {
        Optimizations {
            synthesis_result_caching: false,
            ..Optimizations::default()
        }
    }

    /// Counterexample-list caching disabled (the paper's "Hanoi-CLC" mode).
    pub fn without_clc() -> Self {
        Optimizations {
            counterexample_list_caching: false,
            ..Optimizations::default()
        }
    }

    /// Both optimizations disabled.
    pub fn none() -> Self {
        Optimizations {
            synthesis_result_caching: false,
            counterexample_list_caching: false,
        }
    }
}

/// A configuration value the engine cannot execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be positive was zero.
    ZeroField(&'static str),
    /// The synthesizer's search schedule is empty.
    EmptySchedule,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroField(field) => write!(f, "`{field}` must be positive"),
            ConfigError::EmptySchedule => f.write_str("the synthesizer search schedule is empty"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Engine-wide settings: the shape of the shared state a long-lived
/// [`crate::Engine`] owns, fixed for the engine's lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for every parallel stage (bounded verification, pool
    /// slab construction, synthesis layer evaluation, batch execution).
    ///
    /// **This is the canonical statement of the parallelism contract**; the
    /// synthesizer-level knob
    /// ([`hanoi_synth::SearchConfig::parallelism`]) cross-links here.
    ///
    /// * `1` (the default) runs serially, like the paper's implementation.
    /// * `0` uses one worker per available core.
    /// * Any other value is taken literally.
    ///
    /// The per-run [`SearchConfig::parallelism`](hanoi_synth::SearchConfig::parallelism) is an
    /// `Option<usize>` layered on top: `None` (its default) **inherits**
    /// this engine-wide value; `Some(n)` overrides it for that run's
    /// synthesizer only, with the same `1`-serial / `0`-per-core reading —
    /// so `Some(1)` forces serial synthesis on a parallel engine.  Every
    /// combination is outcome-identical: parallel stages are deterministic
    /// by construction (pinned by `tests/parallel_determinism.rs` and
    /// `tests/synth_incremental_equivalence.rs`), so the knobs trade wall
    /// clock, never answers.
    pub parallelism: usize,
    /// How many distinct problems the engine keeps warm caches (value pools,
    /// term banks) for.  When a new problem would exceed the budget, the
    /// least-recently-used entry is dropped.
    pub max_cached_problems: usize,
    /// The warm-start store: a directory of per-problem cache snapshots.
    ///
    /// When set, opening a session on a problem the engine has no live entry
    /// for consults the content-addressed chunk store rooted at the
    /// directory (`manifests/<problem fingerprint>.json` plus the chunks it
    /// lists — written by [`crate::Engine::save_state`], possibly by an
    /// *earlier process* or synced from another host) and transparently
    /// restores the problem's check-outcome cache and term banks from it.
    /// Legacy monolithic snapshots (`<dir>/<fingerprint>.json`, the
    /// pre-chunking format) stay read-compatible as a fallback, and
    /// `hanoi-store migrate` converts them in place.  Corrupt chunks are
    /// quarantined individually and the restore proceeds without them;
    /// corrupt manifests or legacy files degrade to a cold start — never a
    /// wrong answer.  `None` (the default) disables both loading and any
    /// filesystem access.
    pub warm_start_dir: Option<PathBuf>,
    /// When `true`, [`crate::Engine::save_state`] writes the legacy
    /// monolithic one-file-per-problem snapshots instead of the chunked
    /// store format.  The default (`false`, chunked) is what every new
    /// deployment wants — incremental saves, fleet sync, chunk-level
    /// corruption isolation; the knob exists for interoperating with
    /// pre-chunking readers and for pinning the two formats against each
    /// other in tests.
    pub monolithic_snapshots: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            parallelism: 1,
            max_cached_problems: 64,
            warm_start_dir: None,
            monolithic_snapshots: false,
        }
    }
}

impl EngineConfig {
    /// The default engine configuration (serial, 64 cached problems).
    pub fn new() -> Self {
        EngineConfig::default()
    }

    /// Sets the worker-thread count (`1` = serial, `0` = one worker per
    /// available core).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the per-problem cache budget.
    pub fn with_max_cached_problems(mut self, max_cached_problems: usize) -> Self {
        self.max_cached_problems = max_cached_problems;
        self
    }

    /// Points the engine at a warm-start snapshot directory (see
    /// [`EngineConfig::warm_start_dir`]).
    pub fn with_warm_start_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.warm_start_dir = Some(dir.into());
        self
    }

    /// Makes [`crate::Engine::save_state`] write legacy monolithic snapshot
    /// files instead of the chunked store format (see
    /// [`EngineConfig::monolithic_snapshots`]).
    pub fn with_monolithic_snapshots(mut self, monolithic: bool) -> Self {
        self.monolithic_snapshots = monolithic;
        self
    }

    /// Checks the configuration is executable.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_cached_problems == 0 {
            return Err(ConfigError::ZeroField("max_cached_problems"));
        }
        Ok(())
    }
}

/// Per-run options: everything one inference run through a
/// [`crate::Session`] may choose independently of the engine it runs on.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The algorithm to run.
    pub mode: Mode,
    /// The synthesizer backing `Synth`.
    pub synthesizer: SynthChoice,
    /// Bounds for the enumerative verifier.
    pub bounds: VerifierBounds,
    /// Search configuration for the synthesizer.  Its `parallelism` of
    /// `None` inherits the engine-wide knob — see
    /// [`EngineConfig::parallelism`] for the full contract.
    pub search: SearchConfig,
    /// Which optimizations are enabled.
    pub optimizations: Optimizations,
    /// Wall-clock budget for the run (`None` = unlimited).  The paper uses
    /// 30 minutes.  Independent of external cancellation, which is always
    /// available through a [`crate::CancelToken`].
    pub timeout: Option<Duration>,
    /// Safety cap on CEGIS iterations.
    pub max_iterations: usize,
    /// Number of smallest values the OneShot baseline labels (30 in §5.5).
    pub one_shot_samples: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            mode: Mode::Hanoi,
            synthesizer: SynthChoice::Myth,
            bounds: VerifierBounds::default(),
            search: SearchConfig::default(),
            optimizations: Optimizations::default(),
            timeout: Some(Duration::from_secs(30 * 60)),
            max_iterations: 400,
            one_shot_samples: 30,
        }
    }
}

impl RunOptions {
    /// The paper's options: full Hanoi, Myth-style synthesis, paper verifier
    /// bounds, 30-minute timeout.
    pub fn paper() -> Self {
        RunOptions::default()
    }

    /// Options for unit/integration tests and quick experiment runs: reduced
    /// verifier bounds and a short timeout.
    pub fn quick() -> Self {
        RunOptions {
            bounds: VerifierBounds::quick(),
            timeout: Some(Duration::from_secs(60)),
            max_iterations: 150,
            ..RunOptions::default()
        }
    }

    /// Switches the inference mode.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Switches the synthesizer.
    pub fn with_synthesizer(mut self, synthesizer: SynthChoice) -> Self {
        self.synthesizer = synthesizer;
        self
    }

    /// Overrides the verifier bounds.
    pub fn with_bounds(mut self, bounds: VerifierBounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Overrides the synthesizer search configuration.
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }

    /// Enables the numeric search grammar: the bounded linear-arithmetic
    /// component roster and integer-literal pool of
    /// [`hanoi_synth::arith`] are added to the search, so invariants over
    /// `int`-carrying representations (`a*x + b*y <= c`, parity/residue
    /// constraints) become expressible.  Idempotent on the component roster
    /// is *not* guaranteed — call it once per options value.
    pub fn with_numeric_grammar(mut self, bounds: &hanoi_synth::arith::ArithBounds) -> Self {
        self.search
            .extra_components
            .extend(hanoi_synth::arith::components(bounds));
        self.search.int_literals = hanoi_synth::arith::literal_pool(bounds);
        self
    }

    /// Switches the optimizations.
    pub fn with_optimizations(mut self, optimizations: Optimizations) -> Self {
        self.optimizations = optimizations;
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the CEGIS iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Checks the options are executable.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_iterations == 0 {
            return Err(ConfigError::ZeroField("max_iterations"));
        }
        if self.one_shot_samples == 0 {
            return Err(ConfigError::ZeroField("one_shot_samples"));
        }
        if self.bounds.single_count == 0 {
            return Err(ConfigError::ZeroField("bounds.single_count"));
        }
        if self.bounds.fuel == 0 {
            return Err(ConfigError::ZeroField("bounds.fuel"));
        }
        if self.search.schedule.is_empty() {
            return Err(ConfigError::EmptySchedule);
        }
        Ok(())
    }
}

/// Full configuration of one inference run.
///
/// This is the legacy all-in-one bundle consumed by the deprecated
/// [`crate::Driver`].  New code holds an [`EngineConfig`] for the engine and
/// a [`RunOptions`] per run; [`HanoiConfig::split`] converts.
#[derive(Debug, Clone)]
pub struct HanoiConfig {
    /// The algorithm to run.
    pub mode: Mode,
    /// The synthesizer backing `Synth`.
    pub synthesizer: SynthChoice,
    /// Bounds for the enumerative verifier.
    pub bounds: VerifierBounds,
    /// Search configuration for the synthesizer.
    pub search: SearchConfig,
    /// Which optimizations are enabled.
    pub optimizations: Optimizations,
    /// Wall-clock budget for the whole run (`None` = unlimited).  The paper
    /// uses 30 minutes.
    pub timeout: Option<Duration>,
    /// Safety cap on CEGIS iterations.
    pub max_iterations: usize,
    /// Number of smallest values the OneShot baseline labels (30 in §5.5).
    pub one_shot_samples: usize,
    /// Worker threads for the bounded enumerative verifier: `1` (the
    /// default) runs serially like the paper's implementation, `0` uses one
    /// worker per available core, any other value is taken literally.
    /// Parallel verification is outcome-identical to serial verification —
    /// counterexample selection stays deterministic.
    pub parallelism: usize,
}

impl Default for HanoiConfig {
    fn default() -> Self {
        HanoiConfig {
            mode: Mode::Hanoi,
            synthesizer: SynthChoice::Myth,
            bounds: VerifierBounds::default(),
            search: SearchConfig::default(),
            optimizations: Optimizations::default(),
            timeout: Some(Duration::from_secs(30 * 60)),
            max_iterations: 400,
            one_shot_samples: 30,
            parallelism: 1,
        }
    }
}

impl HanoiConfig {
    /// The paper's configuration: full Hanoi, Myth-style synthesis, paper
    /// verifier bounds, 30-minute timeout.
    pub fn paper() -> Self {
        HanoiConfig::default()
    }

    /// A configuration suitable for unit/integration tests and quick
    /// experiment runs: reduced verifier bounds and a short timeout.
    pub fn quick() -> Self {
        HanoiConfig {
            bounds: VerifierBounds::quick(),
            timeout: Some(Duration::from_secs(60)),
            max_iterations: 150,
            ..HanoiConfig::default()
        }
    }

    /// Switches the inference mode.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Switches the synthesizer.
    pub fn with_synthesizer(mut self, synthesizer: SynthChoice) -> Self {
        self.synthesizer = synthesizer;
        self
    }

    /// Switches the optimizations.
    pub fn with_optimizations(mut self, optimizations: Optimizations) -> Self {
        self.optimizations = optimizations;
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the verifier's worker-thread count (`1` = serial, `0` = one
    /// worker per available core).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Splits the bundle into its engine-wide and per-run halves.
    pub fn split(&self) -> (EngineConfig, RunOptions) {
        (
            EngineConfig::default().with_parallelism(self.parallelism),
            RunOptions {
                mode: self.mode,
                synthesizer: self.synthesizer,
                bounds: self.bounds,
                search: self.search.clone(),
                optimizations: self.optimizations,
                timeout: self.timeout,
                max_iterations: self.max_iterations,
                one_shot_samples: self.one_shot_samples,
            },
        )
    }

    /// Rebuilds a bundle from its halves (inverse of [`HanoiConfig::split`]
    /// up to the engine's cache budget, which the bundle does not carry).
    pub fn from_parts(engine: &EngineConfig, run: &RunOptions) -> Self {
        HanoiConfig {
            mode: run.mode,
            synthesizer: run.synthesizer,
            bounds: run.bounds,
            search: run.search.clone(),
            optimizations: run.optimizations,
            timeout: run.timeout,
            max_iterations: run.max_iterations,
            one_shot_samples: run.one_shot_samples,
            parallelism: engine.parallelism,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = HanoiConfig::paper();
        assert_eq!(config.mode, Mode::Hanoi);
        assert_eq!(config.synthesizer, SynthChoice::Myth);
        assert_eq!(config.timeout, Some(Duration::from_secs(1800)));
        assert_eq!(config.one_shot_samples, 30);
        assert!(config.optimizations.synthesis_result_caching);
        assert!(config.optimizations.counterexample_list_caching);
        // The paper's implementation is serial; parallelism is opt-in.
        assert_eq!(config.parallelism, 1);
    }

    #[test]
    fn optimization_presets() {
        assert!(!Optimizations::without_src().synthesis_result_caching);
        assert!(Optimizations::without_src().counterexample_list_caching);
        assert!(!Optimizations::without_clc().counterexample_list_caching);
        assert!(Optimizations::without_clc().synthesis_result_caching);
        assert!(!Optimizations::none().synthesis_result_caching);
    }

    #[test]
    fn split_and_from_parts_round_trip() {
        let config = HanoiConfig::quick()
            .with_mode(Mode::ConjStr)
            .with_synthesizer(SynthChoice::Fold)
            .with_parallelism(3);
        let (engine, run) = config.split();
        assert_eq!(engine.parallelism, 3);
        assert_eq!(run.mode, Mode::ConjStr);
        assert_eq!(run.synthesizer, SynthChoice::Fold);
        assert_eq!(run.timeout, config.timeout);
        let back = HanoiConfig::from_parts(&engine, &run);
        assert_eq!(back.parallelism, config.parallelism);
        assert_eq!(back.mode, config.mode);
        assert_eq!(back.max_iterations, config.max_iterations);
    }

    #[test]
    fn validation_rejects_unexecutable_values() {
        assert_eq!(EngineConfig::default().validate(), Ok(()));
        assert_eq!(
            EngineConfig::default()
                .with_max_cached_problems(0)
                .validate(),
            Err(ConfigError::ZeroField("max_cached_problems"))
        );
        assert_eq!(RunOptions::paper().validate(), Ok(()));
        assert_eq!(RunOptions::quick().validate(), Ok(()));
        assert_eq!(
            RunOptions::quick().with_max_iterations(0).validate(),
            Err(ConfigError::ZeroField("max_iterations"))
        );
        let mut empty_schedule = RunOptions::quick();
        empty_schedule.search.schedule.clear();
        assert_eq!(empty_schedule.validate(), Err(ConfigError::EmptySchedule));
        assert!(ConfigError::EmptySchedule.to_string().contains("schedule"));
        assert!(ConfigError::ZeroField("max_iterations")
            .to_string()
            .contains("max_iterations"));
    }

    #[test]
    fn builder_style_updates() {
        let config = HanoiConfig::quick()
            .with_mode(Mode::OneShot)
            .with_synthesizer(SynthChoice::Fold)
            .with_timeout(None)
            .with_parallelism(4);
        assert_eq!(config.parallelism, 4);
        assert_eq!(config.mode, Mode::OneShot);
        assert_eq!(config.synthesizer, SynthChoice::Fold);
        assert_eq!(config.timeout, None);
        assert_eq!(Mode::all().len(), 4);
        assert_eq!(Mode::LinearArbitrary.label(), "LA");
        assert_eq!(SynthChoice::Fold.label(), "fold");
    }
}
