//! Configuration of an inference run.

use std::time::Duration;

use hanoi_synth::SearchConfig;
use hanoi_verifier::VerifierBounds;

/// Which inference algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The full Hanoi algorithm (visible-inductiveness-first CEGIS).
    Hanoi,
    /// The conjunctive-strengthening baseline (∧Str, modelled on LoopInvGen).
    ConjStr,
    /// The LinearArbitrary-style baseline: per-operation full-inductiveness
    /// counterexamples only, no eager visible-inductiveness search.
    LinearArbitrary,
    /// One-shot learning from the smallest values labelled by the spec.
    OneShot,
}

impl Mode {
    /// All modes, in the order they appear in Figure 8.
    pub fn all() -> [Mode; 4] {
        [
            Mode::Hanoi,
            Mode::ConjStr,
            Mode::LinearArbitrary,
            Mode::OneShot,
        ]
    }

    /// The label used in experiment reports.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Hanoi => "Hanoi",
            Mode::ConjStr => "AndStr",
            Mode::LinearArbitrary => "LA",
            Mode::OneShot => "OneShot",
        }
    }
}

/// Which synthesizer backs the `Synth` component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SynthChoice {
    /// The Myth-style synthesizer (the paper's default back end).
    #[default]
    Myth,
    /// The fold-capable prototype synthesizer of §5.4.
    Fold,
}

impl SynthChoice {
    /// The label used in experiment reports.
    pub fn label(&self) -> &'static str {
        match self {
            SynthChoice::Myth => "myth",
            SynthChoice::Fold => "fold",
        }
    }
}

/// The two optimizations of §4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// Synthesis-result caching: reuse previously synthesized candidates that
    /// are already consistent with the current examples.
    pub synthesis_result_caching: bool,
    /// Counterexample-list caching: when a new positive example resets `V−`,
    /// replay the recorded trace of candidates to rebuild `V−` without
    /// re-running synthesis and verification.
    pub counterexample_list_caching: bool,
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations {
            synthesis_result_caching: true,
            counterexample_list_caching: true,
        }
    }
}

impl Optimizations {
    /// Both optimizations enabled (the full Hanoi configuration).
    pub fn all() -> Self {
        Optimizations::default()
    }

    /// Synthesis-result caching disabled (the paper's "Hanoi-SRC" mode).
    pub fn without_src() -> Self {
        Optimizations {
            synthesis_result_caching: false,
            ..Optimizations::default()
        }
    }

    /// Counterexample-list caching disabled (the paper's "Hanoi-CLC" mode).
    pub fn without_clc() -> Self {
        Optimizations {
            counterexample_list_caching: false,
            ..Optimizations::default()
        }
    }

    /// Both optimizations disabled.
    pub fn none() -> Self {
        Optimizations {
            synthesis_result_caching: false,
            counterexample_list_caching: false,
        }
    }
}

/// Full configuration of one inference run.
#[derive(Debug, Clone)]
pub struct HanoiConfig {
    /// The algorithm to run.
    pub mode: Mode,
    /// The synthesizer backing `Synth`.
    pub synthesizer: SynthChoice,
    /// Bounds for the enumerative verifier.
    pub bounds: VerifierBounds,
    /// Search configuration for the synthesizer.
    pub search: SearchConfig,
    /// Which optimizations are enabled.
    pub optimizations: Optimizations,
    /// Wall-clock budget for the whole run (`None` = unlimited).  The paper
    /// uses 30 minutes.
    pub timeout: Option<Duration>,
    /// Safety cap on CEGIS iterations.
    pub max_iterations: usize,
    /// Number of smallest values the OneShot baseline labels (30 in §5.5).
    pub one_shot_samples: usize,
    /// Worker threads for the bounded enumerative verifier: `1` (the
    /// default) runs serially like the paper's implementation, `0` uses one
    /// worker per available core, any other value is taken literally.
    /// Parallel verification is outcome-identical to serial verification —
    /// counterexample selection stays deterministic.
    pub parallelism: usize,
}

impl Default for HanoiConfig {
    fn default() -> Self {
        HanoiConfig {
            mode: Mode::Hanoi,
            synthesizer: SynthChoice::Myth,
            bounds: VerifierBounds::default(),
            search: SearchConfig::default(),
            optimizations: Optimizations::default(),
            timeout: Some(Duration::from_secs(30 * 60)),
            max_iterations: 400,
            one_shot_samples: 30,
            parallelism: 1,
        }
    }
}

impl HanoiConfig {
    /// The paper's configuration: full Hanoi, Myth-style synthesis, paper
    /// verifier bounds, 30-minute timeout.
    pub fn paper() -> Self {
        HanoiConfig::default()
    }

    /// A configuration suitable for unit/integration tests and quick
    /// experiment runs: reduced verifier bounds and a short timeout.
    pub fn quick() -> Self {
        HanoiConfig {
            bounds: VerifierBounds::quick(),
            timeout: Some(Duration::from_secs(60)),
            max_iterations: 150,
            ..HanoiConfig::default()
        }
    }

    /// Switches the inference mode.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Switches the synthesizer.
    pub fn with_synthesizer(mut self, synthesizer: SynthChoice) -> Self {
        self.synthesizer = synthesizer;
        self
    }

    /// Switches the optimizations.
    pub fn with_optimizations(mut self, optimizations: Optimizations) -> Self {
        self.optimizations = optimizations;
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the verifier's worker-thread count (`1` = serial, `0` = one
    /// worker per available core).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = HanoiConfig::paper();
        assert_eq!(config.mode, Mode::Hanoi);
        assert_eq!(config.synthesizer, SynthChoice::Myth);
        assert_eq!(config.timeout, Some(Duration::from_secs(1800)));
        assert_eq!(config.one_shot_samples, 30);
        assert!(config.optimizations.synthesis_result_caching);
        assert!(config.optimizations.counterexample_list_caching);
        // The paper's implementation is serial; parallelism is opt-in.
        assert_eq!(config.parallelism, 1);
    }

    #[test]
    fn optimization_presets() {
        assert!(!Optimizations::without_src().synthesis_result_caching);
        assert!(Optimizations::without_src().counterexample_list_caching);
        assert!(!Optimizations::without_clc().counterexample_list_caching);
        assert!(Optimizations::without_clc().synthesis_result_caching);
        assert!(!Optimizations::none().synthesis_result_caching);
    }

    #[test]
    fn builder_style_updates() {
        let config = HanoiConfig::quick()
            .with_mode(Mode::OneShot)
            .with_synthesizer(SynthChoice::Fold)
            .with_timeout(None)
            .with_parallelism(4);
        assert_eq!(config.parallelism, 4);
        assert_eq!(config.mode, Mode::OneShot);
        assert_eq!(config.synthesizer, SynthChoice::Fold);
        assert_eq!(config.timeout, None);
        assert_eq!(Mode::all().len(), 4);
        assert_eq!(Mode::LinearArbitrary.label(), "LA");
        assert_eq!(SynthChoice::Fold.label(), "fold");
    }
}
