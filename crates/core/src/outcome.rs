//! Results of an inference run.

use std::fmt;

use hanoi_lang::ast::Expr;
use hanoi_lang::size::expr_size;
use hanoi_lang::value::Value;

use crate::stats::RunStats;

/// How an inference run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A (likely) sufficient representation invariant was found.
    Invariant(Expr),
    /// A constructible value violating the specification was found — the
    /// module simply does not satisfy its spec (`failwith "Counterexample"`
    /// in Figure 4).
    SpecViolation(Vec<Value>),
    /// The synthesizer could not produce a candidate consistent with the
    /// accumulated examples within its limits.
    SynthesisFailure(String),
    /// The wall-clock budget was exhausted.
    Timeout,
    /// The run was stopped through its [`crate::CancelToken`] before it
    /// reached a verdict.
    Cancelled,
}

impl Outcome {
    /// `true` when an invariant was produced.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Invariant(_))
    }

    /// The inferred invariant, if any.
    pub fn invariant(&self) -> Option<&Expr> {
        match self {
            Outcome::Invariant(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Invariant(e) => write!(f, "invariant: {e}"),
            Outcome::SpecViolation(values) => {
                f.write_str("specification violated by constructible value(s): ")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            Outcome::SynthesisFailure(msg) => write!(f, "synthesis failure: {msg}"),
            Outcome::Timeout => f.write_str("timed out"),
            Outcome::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// The outcome of a run together with its statistics.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Statistics (Figure 7 columns).
    pub stats: RunStats,
}

impl RunResult {
    /// Creates a result, filling in the invariant-size statistic.
    pub fn new(outcome: Outcome, mut stats: RunStats) -> Self {
        if let Outcome::Invariant(e) = &outcome {
            stats.invariant_size = Some(expr_size(e));
        }
        RunResult { outcome, stats }
    }

    /// `true` when an invariant was produced.
    pub fn is_success(&self) -> bool {
        self.outcome.is_success()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        let inv = Outcome::Invariant(Expr::tru());
        assert!(inv.is_success());
        assert_eq!(inv.invariant(), Some(&Expr::tru()));
        assert!(!Outcome::Timeout.is_success());
        assert!(!Outcome::Cancelled.is_success());
        assert_eq!(Outcome::Cancelled.to_string(), "cancelled");
        assert!(Outcome::SpecViolation(vec![Value::nat(1)])
            .to_string()
            .contains('1'));
        assert!(Outcome::SynthesisFailure("cap".into())
            .to_string()
            .contains("cap"));
    }

    #[test]
    fn run_result_records_invariant_size() {
        let result = RunResult::new(
            Outcome::Invariant(Expr::and(Expr::tru(), Expr::fls())),
            RunStats::default(),
        );
        assert_eq!(result.stats.invariant_size, Some(3));
        assert!(result.is_success());
        let result = RunResult::new(Outcome::Timeout, RunStats::default());
        assert_eq!(result.stats.invariant_size, None);
    }
}
