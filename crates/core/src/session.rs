//! Inference sessions: runs of one problem against a long-lived
//! [`Engine`]'s warm caches.

use hanoi_abstraction::Problem;
use hanoi_lang::util::{CancelToken, Deadline};
use hanoi_verifier::Verifier;
use std::sync::Arc;

use crate::config::{Mode, RunOptions};
use crate::context::InferenceContext;
use crate::engine::{Engine, ProblemCaches};
use crate::events::RunObserver;
use crate::modes;
use crate::outcome::{Outcome, RunResult};
use crate::stats::RunStats;

/// A handle for running inference on one problem through an [`Engine`].
///
/// The session borrows the engine's per-problem caches: every run it
/// executes shares the problem's verifier pool cache and — per synthesizer
/// back end — one persistent term bank.  In particular the driver's
/// synthesizer and the OneShot baseline share a bank within (and across)
/// sessions, so the baseline no longer rebuilds signature columns the main
/// algorithm already paid for.
///
/// Runs accept an optional [`RunObserver`] (streamed [`crate::RunEvent`]s)
/// and an optional [`CancelToken`] (cooperative cancellation); see
/// [`Session::run_with`].
#[derive(Debug)]
pub struct Session<'e, 'p> {
    engine: &'e Engine,
    problem: &'p Problem,
    caches: Arc<ProblemCaches>,
}

impl<'e, 'p> Session<'e, 'p> {
    pub(crate) fn new(
        engine: &'e Engine,
        problem: &'p Problem,
        caches: Arc<ProblemCaches>,
    ) -> Self {
        Session {
            engine,
            problem,
            caches,
        }
    }

    /// The engine this session runs against.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The problem this session runs inference on.
    pub fn problem(&self) -> &'p Problem {
        self.problem
    }

    #[cfg(test)]
    pub(crate) fn caches(&self) -> &Arc<ProblemCaches> {
        &self.caches
    }

    /// Runs inference to completion (or timeout) with the given options.
    pub fn run(&self, options: &RunOptions) -> RunResult {
        self.run_with(options, None, None)
    }

    /// Runs inference, streaming [`crate::RunEvent`]s to `observer`.
    pub fn run_observed(&self, options: &RunOptions, observer: &mut dyn RunObserver) -> RunResult {
        self.run_with(options, Some(observer), None)
    }

    /// Runs inference under external cancellation: cancelling `cancel` (from
    /// any thread) makes the run abort promptly with
    /// [`Outcome::Cancelled`].
    pub fn run_cancellable(&self, options: &RunOptions, cancel: CancelToken) -> RunResult {
        self.run_with(options, None, Some(cancel))
    }

    /// The general run entry point: optional event streaming, optional
    /// cooperative cancellation.
    ///
    /// Invalid options are reported as an [`Outcome::SynthesisFailure`]
    /// carrying the [`crate::ConfigError`] message (validate upfront with
    /// [`RunOptions::validate`] to distinguish them programmatically).
    pub fn run_with(
        &self,
        options: &RunOptions,
        observer: Option<&mut dyn RunObserver>,
        cancel: Option<CancelToken>,
    ) -> RunResult {
        self.run_with_parallelism(options, observer, cancel, self.engine.config().parallelism)
    }

    /// [`Session::run_with`] with an explicit worker count — used by
    /// [`Engine::run_batch`] to spend the worker budget at the batch level
    /// instead of multiplying it inside every job.
    pub(crate) fn run_with_parallelism(
        &self,
        options: &RunOptions,
        observer: Option<&mut dyn RunObserver>,
        cancel: Option<CancelToken>,
        parallelism: usize,
    ) -> RunResult {
        if let Err(error) = options.validate() {
            return RunResult::new(
                Outcome::SynthesisFailure(format!("invalid run options: {error}")),
                RunStats::default(),
            );
        }
        let mut deadline = match options.timeout {
            Some(timeout) => Deadline::after(timeout),
            None => Deadline::none(),
        };
        if let Some(token) = &cancel {
            deadline = deadline.with_cancel(token.clone());
        }

        // Warm state from the engine: the problem's pool cache for the
        // verifier, the back end's persistent term bank for the synthesizer.
        let verifier = Verifier::new(self.problem)
            .with_bounds(options.bounds)
            .with_deadline(deadline.clone())
            .with_parallelism(parallelism)
            .with_pool_cache(self.caches.pools())
            .with_check_cache(self.caches.checks());
        let mut synthesizer = InferenceContext::make_synthesizer(options, parallelism);
        synthesizer.adopt_bank(self.caches.bank(options.synthesizer), self.caches.globals());

        let ctx = InferenceContext::from_parts(
            self.problem,
            options.clone(),
            deadline,
            cancel,
            observer,
            verifier,
            synthesizer,
        );
        let mut result = match options.mode {
            Mode::Hanoi => modes::hanoi::run(ctx),
            Mode::ConjStr => modes::conj_str::run(ctx),
            Mode::LinearArbitrary => modes::linear_arbitrary::run(ctx),
            Mode::OneShot => modes::one_shot::run(ctx),
        };
        result.stats.warm_start_loads = self.caches.warm_start_loads();
        result.stats.warm_start_quarantined = self.caches.warm_start_quarantined();
        result
    }

    /// [`Session::run_with`], with the run isolated behind a panic boundary.
    ///
    /// A long-lived service cannot let one defective run take down the
    /// process: this entry point catches a panic anywhere inside the run
    /// (interpreter, verifier, synthesizer, observer) and converts it into
    /// an `Err` carrying the panic message.  Because the panicking thread
    /// may have been holding locks inside this problem's shared caches —
    /// leaving them poisoned or half-updated — the problem's engine entry is
    /// **evicted** ([`Engine::evict_problem`]) before returning: subsequent
    /// runs of the problem start from a fresh (or warm-start-restored) entry
    /// instead of tripping over the wreckage, and no other problem's caches
    /// are touched.  Runs that complete normally are unaffected: their
    /// caches stay warm.
    pub fn run_caught(
        &self,
        options: &RunOptions,
        observer: Option<&mut dyn RunObserver>,
        cancel: Option<CancelToken>,
    ) -> Result<RunResult, String> {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_with(options, observer, cancel)
        }));
        outcome.map_err(|payload| {
            self.engine.evict_problem(self.problem);
            panic_message(payload.as_ref())
        })
    }
}

/// Renders a panic payload as text (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{CollectingObserver, RunEvent};

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn sessions_stream_events() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let engine = Engine::with_defaults();
        let session = engine.session(&problem);
        let mut observer = CollectingObserver::new();
        let result = session.run_observed(&RunOptions::quick(), &mut observer);
        assert!(result.is_success(), "{}", result.outcome);
        assert!(matches!(
            observer.events.first(),
            Some(RunEvent::RunStarted { .. })
        ));
        assert!(matches!(
            observer.events.last(),
            Some(RunEvent::RunFinished { success: true, .. })
        ));
        // One CandidateProposed per synthesis-or-cache-served candidate; at
        // least one real synthesis happened.
        assert!(
            observer.count(|e| matches!(
                e,
                RunEvent::CandidateProposed {
                    from_cache: false,
                    ..
                }
            )) >= 1
        );
        // Phase timings cover both synthesis and verification.
        assert!(observer.count(|e| matches!(e, RunEvent::PhaseFinished { .. })) > 1);
    }

    #[test]
    fn invalid_options_become_a_failure_outcome() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let engine = Engine::with_defaults();
        let session = engine.session(&problem);
        let result = session.run(&RunOptions::quick().with_max_iterations(0));
        match &result.outcome {
            Outcome::SynthesisFailure(message) => {
                assert!(message.contains("max_iterations"), "{message}");
            }
            other => panic!("expected a failure outcome, got {other}"),
        }
    }

    #[test]
    fn pre_cancelled_runs_abort_immediately() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let engine = Engine::with_defaults();
        let session = engine.session(&problem);
        let token = CancelToken::new();
        token.cancel();
        let result = session.run_cancellable(&RunOptions::quick(), token);
        assert_eq!(result.outcome, Outcome::Cancelled);
        assert_eq!(result.stats.synthesis_calls, 0);
    }

    #[test]
    fn panicking_runs_are_caught_and_quarantine_the_entry() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let engine = Engine::with_defaults();
        let session = engine.session(&problem);
        assert_eq!(engine.cached_problems(), 1);

        // An observer that panics mid-run stands in for any defect inside
        // the run boundary (interpreter bug, poisoned cache, …).
        let mut bomb = |_: &RunEvent| panic!("chaos: observer exploded");
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test log clean
        let caught = session.run_caught(&RunOptions::quick(), Some(&mut bomb), None);
        std::panic::set_hook(hook);
        let message = caught.expect_err("the run must report the panic");
        assert!(message.contains("observer exploded"), "{message}");

        // The possibly-wrecked entry is gone; a fresh run works and is
        // correct.
        assert_eq!(engine.cached_problems(), 0, "entry must be evicted");
        let retry = engine.run(&problem, &RunOptions::quick());
        assert!(retry.is_success(), "{}", retry.outcome);

        // Runs that do not panic pass through run_caught untouched — and
        // keep their caches.
        let session = engine.session(&problem);
        let fine = session
            .run_caught(&RunOptions::quick(), None, None)
            .expect("clean run");
        assert_eq!(fine.outcome, retry.outcome);
        assert_eq!(fine.stats.pool_builds, 0, "warm entry survived");
    }

    #[test]
    fn oneshot_shares_the_session_term_bank_with_the_driver() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let engine = Engine::with_defaults();
        let session = engine.session(&problem);

        // The main algorithm populates the problem's persistent bank…
        let hanoi = session.run(&RunOptions::quick());
        assert!(hanoi.is_success(), "{}", hanoi.outcome);
        assert!(hanoi.stats.synth_terms_enumerated > 0);

        // …and the OneShot baseline's single guess is then served from it:
        // the shared-bank run must enumerate no more terms than a cold
        // OneShot run and hit the bank, while returning the identical
        // outcome.
        let one_shot = RunOptions::quick().with_mode(Mode::OneShot);
        let warm = session.run(&one_shot);
        let cold = Engine::with_defaults().run(&problem, &one_shot);
        assert_eq!(warm.outcome, cold.outcome, "shared bank changed OneShot");
        assert!(
            warm.stats.synth_bank_hits >= cold.stats.synth_bank_hits,
            "warm: {:?} cold: {:?}",
            warm.stats,
            cold.stats
        );
    }
}
