//! Cooperative cancellation of inference runs.
//!
//! A [`CancelToken`] is handed to [`crate::Session::run_cancellable`] (or any
//! of the `run_with` entry points); cancelling it from another thread makes
//! the run abort with [`crate::Outcome::Cancelled`] at its next cancellation
//! point.  There is no dedicated polling machinery: the token rides inside
//! the run's [`hanoi_lang::util::Deadline`], so every place the verifier's
//! and the synthesizer's (possibly parallel) workers already poll the
//! deadline — per enumerated tuple batch, per synthesis layer — doubles as a
//! cancellation point.  This replaces the previous timeout-only interruption
//! model: a run can now be stopped for external reasons (client disconnect,
//! shed load, a batch sibling already answered) without waiting for its
//! wall-clock budget.
//!
//! Cancellation is cooperative and prompt, not instantaneous: a worker
//! mid-evaluation finishes its current value first.  It is also permanent —
//! a cancelled token cannot be re-armed; use a fresh token per run (tokens
//! are cheap: one shared atomic).

pub use hanoi_lang::util::CancelToken;

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::util::Deadline;

    #[test]
    fn tokens_flip_deadlines_across_clones() {
        let token = CancelToken::new();
        let deadline = Deadline::none().with_cancel(token.clone());
        assert!(!deadline.expired());
        let clone = token.clone();
        std::thread::spawn(move || clone.cancel()).join().unwrap();
        assert!(deadline.expired());
        assert!(deadline.cancelled());
        assert!(token.is_cancelled());
    }
}
