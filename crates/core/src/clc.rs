//! Counterexample-list caching (§4.4, Figures 5 and 6).
//!
//! Whenever a new positive example is discovered, Figure 4 resets `V−` to the
//! empty set, and the unoptimized algorithm re-discovers — through fresh
//! synthesis and verification calls — the same sequence of weak candidates
//! and their negative counterexamples.  The optimization records the trace of
//! (candidate, negative counterexamples added after it) pairs; on a reset it
//! replays the longest prefix of the trace whose candidates are still
//! consistent with the enlarged `V+`, restoring their negative examples
//! directly.

use std::collections::HashSet;

use hanoi_abstraction::Problem;
use hanoi_lang::ast::Expr;
use hanoi_lang::eval::Fuel;
use hanoi_lang::value::Value;

/// One step of the recorded trace: a candidate invariant and the negative
/// examples the verifier produced in response to it.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The candidate invariant of this step.
    pub candidate: Expr,
    /// The candidate slot-resolved at record time, so every replay probe
    /// runs on the interpreter's indexed fast path.
    resolved: Expr,
    /// The negative examples added after checking it.
    pub negatives: Vec<Value>,
}

/// The counterexample-list cache.
#[derive(Debug, Clone, Default)]
pub struct CexListCache {
    trace: Vec<TraceStep>,
}

impl CexListCache {
    /// An empty cache.
    pub fn new() -> Self {
        CexListCache::default()
    }

    /// Records that `candidate` was answered with `negatives`.
    pub fn record(&mut self, candidate: Expr, negatives: Vec<Value>) {
        let resolved = hanoi_lang::resolve::resolve(&candidate);
        self.trace.push(TraceStep {
            candidate,
            resolved,
            negatives,
        });
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// The recorded steps, oldest first.
    pub fn steps(&self) -> &[TraceStep] {
        &self.trace
    }

    /// Replays the trace against an updated positive set: walks the steps in
    /// order, keeps the negatives of every candidate that still returns
    /// `true` on all of `v_plus`, and truncates the trace at the first
    /// candidate that does not (its negatives — and everything after them —
    /// were only relevant to the old, smaller `V+`).
    ///
    /// Returns the negative examples to seed the new `V−` with (values that
    /// are now known positive are filtered out).
    pub fn replay(&mut self, problem: &Problem, v_plus: &[Value]) -> Vec<Value> {
        // Set-based membership: the scan over negatives used to be
        // O(|V−| · |V+|) per replay, which dominated replays on long traces.
        let positives: HashSet<&Value> = v_plus.iter().collect();
        let mut restored = Vec::new();
        let mut keep = 0usize;
        for step in &self.trace {
            let consistent = v_plus.iter().all(|v| {
                problem
                    .eval_predicate_resolved_with_fuel(&step.resolved, v, &mut Fuel::standard())
                    .unwrap_or(false)
            });
            if !consistent {
                break;
            }
            keep += 1;
            restored.extend(
                step.negatives
                    .iter()
                    .filter(|n| !positives.contains(n))
                    .cloned(),
            );
        }
        self.trace.truncate(keep);
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::parser::parse_expr;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list
        interface SET = sig
          type t
          val empty : t
          val lookup : t -> nat -> bool
        end
        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
        end
        spec (s : t) (i : nat) = not (lookup empty i)
    "#;

    #[test]
    fn replay_keeps_the_consistent_prefix() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let mut cache = CexListCache::new();
        assert!(cache.is_empty());

        // Step 1: `true` was refuted by the negative [0; 0].
        cache.record(
            parse_expr("fun (l : list) -> True").unwrap(),
            vec![Value::nat_list(&[0, 0])],
        );
        // Step 2: "head is not 0" was refuted by the negative [1; 1].
        cache.record(
            parse_expr(
                "fun (l : list) -> match l with | Nil -> True | Cons (hd, tl) -> not (hd == 0) end",
            )
            .unwrap(),
            vec![Value::nat_list(&[1, 1])],
        );
        assert_eq!(cache.len(), 2);

        // A new positive [0] arrives: the first candidate still accepts it,
        // the second does not, so only the first step's negatives survive and
        // the trace is truncated after it (Figure 6).
        let v_plus = vec![Value::nat_list(&[]), Value::nat_list(&[0])];
        let restored = cache.replay(&problem, &v_plus);
        assert_eq!(restored, vec![Value::nat_list(&[0, 0])]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn replay_filters_out_values_that_became_positive() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let mut cache = CexListCache::new();
        cache.record(
            parse_expr("fun (l : list) -> True").unwrap(),
            vec![Value::nat_list(&[1]), Value::nat_list(&[0, 0])],
        );
        let v_plus = vec![Value::nat_list(&[1])];
        let restored = cache.replay(&problem, &v_plus);
        assert_eq!(restored, vec![Value::nat_list(&[0, 0])]);
    }
}
