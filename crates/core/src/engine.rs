//! The long-lived inference engine: process-wide shared state and the
//! service entry points.
//!
//! The paper presents inference as a one-shot procedure, and until this
//! module existed the public API mirrored that: every `Driver::run` built a
//! verifier pool cache and a synthesizer term bank from scratch and dropped
//! them with the run.  An [`Engine`] inverts the ownership: *it* owns a keyed
//! registry of per-problem caches — the verifier's
//! [`hanoi_verifier::PoolCache`] and one persistent
//! [`hanoi_synth::TermBank`] per synthesizer back end — and hands out
//! [`Session`]s that run inference against them.  Re-running the same
//! problem (experiment-harness reruns, figure8 ablations, repeated service
//! requests) therefore starts *warm*: quantifier pools are served from the
//! cache instead of re-enumerated, and signature columns paid for by an
//! earlier run are reused by the next one.  Warm runs are outcome-identical
//! to cold runs — both caches are semantically transparent — which
//! `tests/engine_reuse_equivalence.rs` pins across the whole benchmark
//! suite.
//!
//! Cache entries are keyed by the identity of the problem's globals
//! environment (pinned, so address reuse can never alias two distinct
//! problems) *together with* the problem's structural fingerprint
//! ([`Problem::fingerprint`]) — a `Problem` clone with the same globals
//! but, say, an edited spec gets its own entry rather than another
//! problem's memoized outcomes.  The registry holds at most
//! [`EngineConfig::max_cached_problems`] entries and evicts the least
//! recently used beyond that.
//!
//! # The warm-start store
//!
//! Warmth survives the process.  [`Engine::save_state`] snapshots every
//! live entry's *persistable* caches — the check-outcome cache and the term
//! banks, whose keys are structural digests valid across processes — into
//! the content-addressed chunk store ([`hanoi_store::ChunkStore`]) at the
//! configured directory: each snapshot is split into chunks named by the
//! digest of their own bytes, with a per-problem manifest listing them, so
//! repeated checkpoints share unchanged chunks and two stores sync by
//! manifest diff.  An engine configured with
//! [`EngineConfig::warm_start_dir`] transparently restores those snapshots
//! when a problem is first opened: a freshly started process re-running a
//! problem an earlier process solved answers its verifier checks from the
//! restored cache without a single sweep (`RunStats::warm_start_loads`
//! reports the restore; the `cross_process_warm` and `fleet_warm` workloads
//! of the `cegis_hot_path` bench measure it).  Legacy monolithic
//! `<fingerprint>.json` snapshots stay read-compatible.  Snapshots are
//! advisory: a corrupt *chunk* is quarantined individually and the restore
//! proceeds with the rest, while corrupt manifests, truncated legacy files,
//! version-mismatched or wrong-problem wrappers degrade to a cold start —
//! never a wrong answer, as `tests/warm_start_equivalence.rs` pins across
//! the benchmark suite.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use hanoi_abstraction::Problem;
use hanoi_lang::digest::Digest;
use hanoi_lang::json::Json;
use hanoi_lang::util::{sync_dir, write_atomic};
use hanoi_lang::value::Env;
use hanoi_store::{ChunkStore, WrapperLoad};
use hanoi_synth::TermBank;
use hanoi_verifier::{CheckCache, PoolCache};

use crate::config::{ConfigError, EngineConfig, RunOptions, SynthChoice};
use crate::outcome::RunResult;
use crate::session::Session;

/// The format version of the per-problem warm-start snapshot files written
/// by [`Engine::save_state`].  The file wraps the component snapshots
/// (check cache, term banks), which carry their own versions; this one
/// covers the wrapper layout.  Version 2 added the `pool_shapes` table
/// (slab shape keys for the lazy pool-cache rebuild).
const WARM_START_VERSION: u64 = 2;

/// Snapshot files larger than this are ignored on load (a corrupt or
/// foreign file cannot make session-open allocate unboundedly).
const MAX_SNAPSHOT_BYTES: u64 = 256 * 1024 * 1024;

/// Locks a mutex, recovering from poison.
///
/// The engine's locks only ever guard single map operations (insert, remove,
/// lookup on `HashMap`s), which cannot be observed half-applied: a panic on
/// one session thread therefore leaves the guarded data intact, and
/// propagating the poison would turn one isolated panic into an engine-wide
/// outage — exactly what a long-lived service must not do.  The deeper
/// caches (pool cache, check cache, term bank) keep standard poisoning; a
/// panic inside *them* is handled by [`crate::Session::run_caught`], which
/// evicts the problem's whole entry.
fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The warm caches the engine keeps for one problem.
#[derive(Debug)]
pub(crate) struct ProblemCaches {
    /// The problem's globals environment, pinned so the registry key (its
    /// address identity) can never suffer address reuse while the entry
    /// lives.
    globals: Env,
    /// The problem's stable structural fingerprint — the warm-start file
    /// name, and the check that a snapshot belongs to this problem.
    fingerprint: Digest,
    /// The shared verifier pool cache: `(type, count, size)` pools enumerated
    /// at most once per engine, not once per run.  Pool *values* are not
    /// persisted (they are deterministically re-derivable), but the snapshot
    /// records the slab *shape keys* (`(type, size)`), which a restored
    /// entry rebuilds lazily, once, on its first pool request
    /// (`RunStats::pool_slab_restores`).  A fully warm restored run answers
    /// every check from the check-outcome cache, never requests a pool, and
    /// never pays for the rebuild.
    pools: Arc<PoolCache>,
    /// The shared check-outcome cache: completed verifier checks memoized
    /// under their full inputs, so re-runs skip entire sweeps.
    checks: Arc<CheckCache>,
    /// One persistent term bank per synthesizer back end.  The driver's
    /// synthesizer and the OneShot baseline of the same session (and every
    /// later run of the problem) share the bank of their back end.
    banks: Mutex<HashMap<SynthChoice, Arc<TermBank>>>,
    /// How many snapshot components (check cache + term banks) this entry
    /// was restored from on creation (`0` = cold start).  Surfaced as
    /// `RunStats::warm_start_loads`.
    warm_start_loads: u64,
    /// How many snapshot artifacts were quarantined at entry creation:
    /// individual chunks whose bytes failed their content-address re-hash
    /// (each renamed to `<digest>.json.corrupt`; the restore proceeded with
    /// the remaining chunks), a defective manifest, or — on the legacy
    /// monolithic path — the whole snapshot file.  Surfaced as
    /// `RunStats::warm_start_quarantined`.
    warm_start_quarantined: u64,
}

impl ProblemCaches {
    fn new(problem: &Problem, fingerprint: Digest) -> Self {
        ProblemCaches {
            globals: problem.globals.clone(),
            fingerprint,
            pools: PoolCache::for_problem(problem),
            checks: Arc::new(CheckCache::default()),
            banks: Mutex::new(HashMap::new()),
            warm_start_loads: 0,
            warm_start_quarantined: 0,
        }
    }

    /// Builds the entry for `problem`, restoring the check cache and term
    /// banks from the warm-start store at `warm_dir`.  The chunked store is
    /// preferred: when `manifests/<fingerprint>.json` exists, the wrapper is
    /// reassembled chunk by chunk, quarantining (and counting) corrupt
    /// chunks individually while the restore proceeds with the rest.  When
    /// no manifest exists, the legacy monolithic `<fingerprint>.json` is
    /// consulted read-compatibly, with PR 7's whole-file quarantine.  Every
    /// failure mode — missing artifacts, I/O error, parse error, version or
    /// fingerprint mismatch, corrupt component — degrades to a cold start
    /// (or a partially warm one); a snapshot can never make a session fail
    /// or (fingerprint collisions aside) answer for a different problem.
    fn restore_or_new(problem: &Problem, fingerprint: Digest, warm_dir: &Path) -> Self {
        let mut caches = ProblemCaches::new(problem, fingerprint);
        if let Ok(store) = ChunkStore::open(warm_dir) {
            match store.load_wrapper(fingerprint) {
                WrapperLoad::Loaded {
                    wrapper,
                    quarantined,
                } => {
                    caches.warm_start_quarantined = quarantined;
                    match validate_snapshot_json(&wrapper, fingerprint) {
                        Some((checks, banks, shapes, loads)) => {
                            caches.checks = Arc::new(checks);
                            caches.banks = Mutex::new(banks);
                            caches.pools.set_pending_shapes(shapes);
                            caches.warm_start_loads = loads;
                        }
                        // A reassembled wrapper that fails engine validation
                        // (e.g. a future wrapper version in the manifest)
                        // starts cold; the manifest stays for diagnosis.
                        None => caches.warm_start_quarantined += 1,
                    }
                    return caches;
                }
                WrapperLoad::Corrupt => {
                    // The store quarantined the defective manifest; the
                    // problem starts cold rather than trusting a legacy file
                    // that a chunked save already superseded.
                    caches.warm_start_quarantined += 1;
                    return caches;
                }
                WrapperLoad::Missing => {}
            }
        }
        // Legacy monolithic fallback, byte-compatible with pre-chunking
        // stores (`hanoi-store migrate` converts them in place).
        let path = warm_dir.join(format!("{}.json", fingerprint.to_hex()));
        match load_snapshot(&path, fingerprint) {
            SnapshotLoad::Loaded {
                checks,
                banks,
                shapes,
                loads,
            } => {
                caches.checks = Arc::new(checks);
                caches.banks = Mutex::new(banks);
                caches.pools.set_pending_shapes(shapes);
                caches.warm_start_loads = loads;
            }
            SnapshotLoad::Corrupt => {
                // Quarantine is best-effort: a read-only store (or a
                // concurrent process racing for the same file) must not
                // break session opens.
                let quarantine = warm_dir.join(format!("{}.json.corrupt", fingerprint.to_hex()));
                let _ = std::fs::rename(&path, &quarantine);
                caches.warm_start_quarantined = 1;
            }
            SnapshotLoad::Missing => {}
        }
        caches
    }

    /// Serializes this entry's persistable caches.  Banks that cannot be
    /// encoded structurally are skipped; the check cache always serializes
    /// (only completed, first-order outcomes ever reach it).
    fn snapshot_json(&self) -> Json {
        let banks = lock_tolerant(&self.banks);
        let bank_objs: Vec<(String, Json)> = banks
            .iter()
            .filter_map(|(choice, bank)| Some((choice.label().to_string(), bank.to_json()?)))
            .collect();
        // Slab shape keys, serialized through the type syntax.  Shapes whose
        // type does not render/re-parse identically (e.g. the abstract `t`)
        // are skipped — persistence is advisory, and dropping a shape only
        // costs a later on-demand re-derivation.
        let shape_objs: Vec<Json> = self
            .pools
            .slab_shapes()
            .into_iter()
            .filter_map(|(ty, size)| {
                let text = ty.to_string();
                (hanoi_lang::parser::parse_type(&text).ok()? == ty)
                    .then(|| Json::obj([("ty", Json::Str(text)), ("size", Json::Num(size as f64))]))
            })
            .collect();
        Json::Obj(
            [
                ("version".to_string(), Json::Num(WARM_START_VERSION as f64)),
                (
                    "kind".to_string(),
                    Json::Str("hanoi-warm-start".to_string()),
                ),
                (
                    "fingerprint".to_string(),
                    Json::Str(self.fingerprint.to_hex()),
                ),
                ("check_cache".to_string(), self.checks.to_json()),
                (
                    "banks".to_string(),
                    Json::Obj(bank_objs.into_iter().collect()),
                ),
                ("pool_shapes".to_string(), Json::Arr(shape_objs)),
            ]
            .into_iter()
            .collect(),
        )
    }

    /// The problem fingerprint this entry is keyed by.
    pub(crate) fn fingerprint(&self) -> Digest {
        self.fingerprint
    }

    /// How many snapshot components this entry was warm-started from.
    pub(crate) fn warm_start_loads(&self) -> u64 {
        self.warm_start_loads
    }

    /// Whether a defective snapshot was quarantined when this entry was
    /// created.
    pub(crate) fn warm_start_quarantined(&self) -> u64 {
        self.warm_start_quarantined
    }

    /// The pinned globals environment this entry belongs to.
    pub(crate) fn globals(&self) -> &Env {
        &self.globals
    }

    /// The shared pool cache.
    pub(crate) fn pools(&self) -> Arc<PoolCache> {
        Arc::clone(&self.pools)
    }

    /// The shared check-outcome cache.
    pub(crate) fn checks(&self) -> Arc<CheckCache> {
        Arc::clone(&self.checks)
    }

    /// The persistent term bank for one synthesizer back end, created on
    /// first use.
    pub(crate) fn bank(&self, choice: SynthChoice) -> Arc<TermBank> {
        let mut banks = lock_tolerant(&self.banks);
        Arc::clone(banks.entry(choice).or_default())
    }
}

/// The outcome of reading one warm-start snapshot file: absent, defective,
/// or fully restored (all-or-nothing: a snapshot with one corrupt component
/// is wholly rejected, so partial restores can never mix states from
/// different saves).  The caller quarantines `Corrupt` files — which
/// includes version- and fingerprint-mismatched ones, both equally useless
/// on every future process start.
enum SnapshotLoad {
    /// No snapshot file exists for the problem.
    Missing,
    /// A file exists but failed validation and must not be re-read.
    Corrupt,
    /// The snapshot restored cleanly.
    Loaded {
        checks: CheckCache,
        banks: HashMap<SynthChoice, Arc<TermBank>>,
        shapes: Vec<(hanoi_lang::types::Type, usize)>,
        loads: u64,
    },
}

/// Reads and validates one warm-start snapshot file.
fn load_snapshot(path: &Path, fingerprint: Digest) -> SnapshotLoad {
    let Ok(metadata) = std::fs::metadata(path) else {
        return SnapshotLoad::Missing;
    };
    if !metadata.is_file() {
        return SnapshotLoad::Missing;
    }
    match try_load_snapshot(path, fingerprint, metadata.len()) {
        Some(loaded) => loaded,
        None => SnapshotLoad::Corrupt,
    }
}

/// The validation pipeline of [`load_snapshot`]; `None` means any defect.
fn try_load_snapshot(path: &Path, fingerprint: Digest, len: u64) -> Option<SnapshotLoad> {
    if len > MAX_SNAPSHOT_BYTES {
        return None;
    }
    let text = std::fs::read_to_string(path).ok()?;
    let json = hanoi_lang::json::parse(&text).ok()?;
    let (checks, banks, shapes, loads) = validate_snapshot_json(&json, fingerprint)?;
    Some(SnapshotLoad::Loaded {
        checks,
        banks,
        shapes,
        loads,
    })
}

/// Validates a warm-start wrapper (monolithic file contents, or the
/// reassembly of a chunked manifest — both the same JSON shape) and decodes
/// its components; `None` means any defect.  This is the single validation
/// path for both persistence formats, which is what makes the chunked ≡
/// monolithic equivalence hold by construction.
#[allow(clippy::type_complexity)]
fn validate_snapshot_json(
    json: &Json,
    fingerprint: Digest,
) -> Option<(
    CheckCache,
    HashMap<SynthChoice, Arc<TermBank>>,
    Vec<(hanoi_lang::types::Type, usize)>,
    u64,
)> {
    if json.get("version").and_then(Json::as_usize)? as u64 != WARM_START_VERSION {
        return None;
    }
    if json.get("kind").and_then(Json::as_str)? != "hanoi-warm-start" {
        return None;
    }
    // The fingerprint inside the wrapper must match the problem being
    // opened: a renamed or copied snapshot is rejected rather than trusted.
    let stored = Digest::from_hex(json.get("fingerprint").and_then(Json::as_str)?)?;
    if stored != fingerprint {
        return None;
    }
    let checks =
        CheckCache::from_json(json.get("check_cache")?, CheckCache::DEFAULT_CAPACITY).ok()?;
    let mut loads = 1;
    let mut banks = HashMap::new();
    if let Json::Obj(bank_objs) = json.get("banks")? {
        for (label, bank_json) in bank_objs {
            let choice = SynthChoice::from_label(label)?;
            let bank = TermBank::from_json(bank_json).ok()?;
            banks.insert(choice, Arc::new(bank));
            loads += 1;
        }
    } else {
        return None;
    }
    let mut shapes = Vec::new();
    let Json::Arr(shape_objs) = json.get("pool_shapes")? else {
        return None;
    };
    for shape in shape_objs {
        let ty = hanoi_lang::parser::parse_type(shape.get("ty").and_then(Json::as_str)?).ok()?;
        let size = shape.get("size").and_then(Json::as_usize)?;
        shapes.push((ty, size));
    }
    Some((checks, banks, shapes, loads))
}

/// The registry key for one problem's caches.
///
/// The globals identity alone is *not* enough: `Problem` fields are public,
/// so a clone sharing the globals `Env` can carry a different specification,
/// interface or type environment — and the memoized check outcomes depend on
/// all of them.  The key therefore pairs the identity (covering module
/// semantics — the closures the pools and banks captured) with the problem's
/// structural fingerprint ([`Problem::fingerprint`]), which covers
/// everything else a check outcome depends on — and doubles as the
/// warm-start snapshot file name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProblemKey {
    /// Address identity of the globals environment (pinned by the entry).
    globals: usize,
    /// Structural fingerprint of the problem definition.  Computed once per
    /// session open; collisions require structurally identical definitions
    /// (up to the 2⁻¹²⁸ digest bound), which is exactly when sharing is
    /// correct.
    fingerprint: Digest,
}

impl ProblemKey {
    fn for_problem(problem: &Problem) -> Self {
        ProblemKey {
            globals: problem.globals.identity(),
            fingerprint: problem.fingerprint(),
        }
    }
}

/// The keyed cache registry: per-problem entries with LRU eviction.
#[derive(Debug, Default)]
struct Registry {
    /// Entries keyed by [`ProblemKey`].
    entries: HashMap<ProblemKey, (u64, Arc<ProblemCaches>)>,
    /// Monotonic recency stamp.
    clock: u64,
}

/// A long-lived inference engine.
///
/// One engine per process (or per tenant) is the intended shape: it is
/// `Send + Sync`, every method takes `&self`, and all shared state sits
/// behind its own lock, so concurrent sessions — including the parallel runs
/// of [`Engine::run_batch`] — are safe.
///
/// ```
/// use hanoi::{Engine, RunOptions};
/// use hanoi_abstraction::Problem;
///
/// let problem = Problem::from_source(r#"
///     type nat = O | S of nat
///     interface I = sig
///       type t
///       val make : t
///     end
///     module M : I = struct
///       type t = nat
///       let make : t = O
///     end
///     spec (s : t) = s == s
/// "#).unwrap();
/// let engine = Engine::with_defaults();
/// let session = engine.session(&problem);
/// let first = session.run(&RunOptions::quick());
/// let warm = session.run(&RunOptions::quick()); // served from warm caches
/// assert_eq!(first.outcome, warm.outcome);
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    registry: Mutex<Registry>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::with_defaults()
    }
}

impl Engine {
    /// Creates an engine, validating the configuration.
    pub fn new(config: EngineConfig) -> Result<Engine, ConfigError> {
        config.validate()?;
        Ok(Engine {
            config,
            registry: Mutex::new(Registry::default()),
        })
    }

    /// An engine with the default configuration (serial, 64 cached
    /// problems).
    pub fn with_defaults() -> Engine {
        Engine::new(EngineConfig::default()).expect("the default engine config is valid")
    }

    /// The engine-wide configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Opens a session on `problem`: the handle runs belonging to one
    /// problem go through.  Sessions borrow the engine; any number may be
    /// open at once.
    pub fn session<'e, 'p>(&'e self, problem: &'p Problem) -> Session<'e, 'p> {
        Session::new(self, problem, self.caches_for(problem))
    }

    /// Convenience: opens a session and executes one run.
    pub fn run(&self, problem: &Problem, options: &RunOptions) -> RunResult {
        self.session(problem).run(options)
    }

    /// Executes many runs, parallelized over the engine's worker threads
    /// (the [`EngineConfig::parallelism`] knob), and returns their results
    /// in the order of `jobs` — the result order is deterministic regardless
    /// of scheduling, and each run is itself outcome-deterministic, so a
    /// batch is reproducible end to end.
    ///
    /// The worker budget is spent at the *batch* level: when several jobs
    /// run concurrently, each job's verifier and synthesizer run serially
    /// (otherwise an N-worker engine would put N×N runnable threads on N
    /// cores).  Outcomes never depend on the split.  Jobs over the same
    /// problem share that problem's warm caches, exactly like sequential
    /// sessions would.
    ///
    /// Statistics caveat: per-run cache counters (`pool_builds`,
    /// `verification_cache_hits`, the `synth_*` counters) are deltas of the
    /// shared caches' cumulative counters; when two jobs over the *same*
    /// problem run concurrently, each job's delta also includes its
    /// sibling's cache activity.  Outcomes and timings are unaffected; for
    /// exact per-run counters, run same-problem jobs in separate batches.
    pub fn run_batch(&self, jobs: &[BatchJob<'_>]) -> Vec<RunResult> {
        let workers =
            hanoi_verifier::parallel::effective_workers(self.config.parallelism).min(jobs.len());
        // Inner parallelism only when the batch itself is not parallel.
        let inner = if workers > 1 {
            1
        } else {
            self.config.parallelism
        };
        hanoi_verifier::parallel::par_map(jobs, workers, |job| {
            self.session(job.problem)
                .run_with_parallelism(&job.options, None, None, inner)
        })
    }

    /// How many problems currently have warm caches.
    pub fn cached_problems(&self) -> usize {
        lock_tolerant(&self.registry).entries.len()
    }

    /// Drops the cache entry for `problem`, returning whether one existed.
    ///
    /// This is the panic-isolation hook: when a run panics mid-flight
    /// ([`crate::Session::run_caught`]), the problem's caches may hold
    /// poisoned locks or half-applied state, so the entry is discarded —
    /// the next session on the problem starts cold (or from the warm-start
    /// store) but *correct*, and no other problem is affected.  Sessions
    /// already holding the old entry keep their `Arc` and simply stop
    /// sharing.
    pub fn evict_problem(&self, problem: &Problem) -> bool {
        let key = ProblemKey::for_problem(problem);
        lock_tolerant(&self.registry).entries.remove(&key).is_some()
    }

    /// Persists every live cache entry to the warm-start store at `dir`,
    /// returning how many snapshots were written.
    ///
    /// By default each snapshot is saved **chunked**: split into
    /// content-addressed chunks (check-cache stripes, term-bank core/parts,
    /// pool shapes) with a per-problem manifest — chunks already present
    /// from an earlier save are shared, so a periodic checkpoint whose
    /// caches only grew writes deltas, and two stores can sync by manifest
    /// diff (`hanoi-store sync`).  With
    /// [`EngineConfig::monolithic_snapshots`] set, the legacy
    /// one-file-per-problem format is written instead
    /// ([`Engine::save_state_monolithic`]).  Either way every file goes
    /// through the shared atomic-write helper
    /// ([`hanoi_lang::util::write_atomic`]): temp sibling, **fsync**,
    /// rename — neither a crash mid-checkpoint nor a concurrent reader can
    /// observe a torn artifact.
    ///
    /// Saving is cheap relative to the sweeps the snapshots replace, but not
    /// free; a long-lived service calls this at checkpoints (shutdown,
    /// deploy, periodic flush), not per run.
    pub fn save_state(&self, dir: impl AsRef<Path>) -> std::io::Result<usize> {
        let dir = dir.as_ref();
        if self.config.monolithic_snapshots {
            return self.save_state_monolithic(dir);
        }
        let store = ChunkStore::open(dir)?;
        let mut written = 0;
        for caches in self.live_entries() {
            store.save_wrapper(&caches.snapshot_json())?;
            written += 1;
        }
        Ok(written)
    }

    /// [`Engine::save_state`] in the legacy monolithic format: one
    /// `<fingerprint>.json` wrapper file per problem at the top of `dir`,
    /// exactly as pre-chunking engines wrote (and still read).
    pub fn save_state_monolithic(&self, dir: impl AsRef<Path>) -> std::io::Result<usize> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut written = 0;
        for caches in self.live_entries() {
            let path = dir.join(format!("{}.json", caches.fingerprint().to_hex()));
            write_atomic(&path, caches.snapshot_json().render_pretty().as_bytes())?;
            written += 1;
        }
        // Make the renames themselves durable (directory metadata);
        // best-effort on top of the per-file fsync in `write_atomic`.
        if written > 0 {
            sync_dir(dir);
        }
        Ok(written)
    }

    /// Snapshots the entry list, so serialization happens outside the
    /// registry lock (it can be large; sessions must not stall behind it).
    fn live_entries(&self) -> Vec<Arc<ProblemCaches>> {
        let registry = lock_tolerant(&self.registry);
        registry
            .entries
            .values()
            .map(|(_, entry)| Arc::clone(entry))
            .collect()
    }

    /// [`Engine::save_state`] into the configured
    /// [`EngineConfig::warm_start_dir`]; a no-op returning `0` when none is
    /// configured.
    pub fn save_state_to_warm_dir(&self) -> std::io::Result<usize> {
        match &self.config.warm_start_dir {
            Some(dir) => self.save_state(dir),
            None => Ok(0),
        }
    }

    /// Looks up (or creates) the cache entry for `problem`, refreshing its
    /// recency and evicting the least recently used entry beyond the budget.
    /// Entry creation consults the warm-start store when one is configured.
    fn caches_for(&self, problem: &Problem) -> Arc<ProblemCaches> {
        let key = ProblemKey::for_problem(problem);
        if let Some(entry) = self.touch(&key) {
            return entry;
        }
        // Build the entry — including any warm-start disk restore — *outside*
        // the registry lock: a multi-megabyte snapshot parse must not stall
        // concurrent session opens on other problems.
        let fresh = Arc::new(match &self.config.warm_start_dir {
            Some(dir) => ProblemCaches::restore_or_new(problem, key.fingerprint, dir),
            None => ProblemCaches::new(problem, key.fingerprint),
        });
        let mut registry = lock_tolerant(&self.registry);
        registry.clock += 1;
        let stamp = registry.clock;
        // Double-checked: another session may have created the entry while we
        // were restoring; keep theirs so every session shares one entry.
        if let Some((recency, entry)) = registry.entries.get_mut(&key) {
            *recency = stamp;
            return Arc::clone(entry);
        }
        registry.entries.insert(key, (stamp, Arc::clone(&fresh)));
        while registry.entries.len() > self.config.max_cached_problems {
            let oldest = registry
                .entries
                .iter()
                .min_by_key(|(_, (recency, _))| *recency)
                .map(|(k, _)| k.clone())
                .expect("non-empty registry");
            registry.entries.remove(&oldest);
        }
        fresh
    }

    /// Refreshes and returns the live entry for `key`, when one exists.
    fn touch(&self, key: &ProblemKey) -> Option<Arc<ProblemCaches>> {
        let mut registry = lock_tolerant(&self.registry);
        registry.clock += 1;
        let stamp = registry.clock;
        let (recency, entry) = registry.entries.get_mut(key)?;
        *recency = stamp;
        Some(Arc::clone(entry))
    }
}

/// One unit of work for [`Engine::run_batch`].
#[derive(Debug, Clone)]
pub struct BatchJob<'p> {
    /// The problem to run inference on.
    pub problem: &'p Problem,
    /// The per-run options.
    pub options: RunOptions,
}

impl<'p> BatchJob<'p> {
    /// Creates a batch job.
    pub fn new(problem: &'p Problem, options: RunOptions) -> Self {
        BatchJob { problem, options }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::outcome::Outcome;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(Engine::new(EngineConfig::default()).is_ok());
        assert!(Engine::new(EngineConfig::default().with_max_cached_problems(0)).is_err());
    }

    #[test]
    fn warm_reruns_reuse_the_pool_cache_and_term_bank() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let engine = Engine::with_defaults();
        let options = RunOptions::quick();

        let cold = engine.run(&problem, &options);
        assert!(cold.is_success(), "{}", cold.outcome);
        assert!(cold.stats.pool_builds > 0, "cold runs enumerate pools");

        let warm = engine.run(&problem, &options);
        assert_eq!(warm.outcome, cold.outcome, "warm must equal cold");
        assert_eq!(
            warm.stats.pool_builds, 0,
            "warm runs must not enumerate any pool: {:?}",
            warm.stats
        );
        assert_eq!(warm.stats.pool_slab_builds, 0);
        // Every verifier check of the identical re-run is answered from the
        // cross-run check-outcome cache — no sweeps at all.
        assert_eq!(
            warm.stats.verification_cache_hits as usize, warm.stats.verification_calls,
            "warm checks must be cache hits: {:?}",
            warm.stats
        );
        assert_eq!(cold.stats.verification_cache_hits, 0);
        assert!(
            warm.stats.synth_terms_enumerated <= cold.stats.synth_terms_enumerated,
            "a warm bank cannot enumerate more terms than a cold one"
        );
        assert_eq!(engine.cached_problems(), 1);
    }

    #[test]
    fn problems_sharing_globals_but_not_spec_get_separate_caches() {
        // `Problem` fields are public: a clone can keep the globals Env (and
        // its identity) while carrying a different specification.  Its check
        // outcomes differ, so it must not share the original's cache entry.
        let problem = Problem::from_source(LIST_SET).unwrap();
        let mut weaker = problem.clone();
        weaker.spec = Problem::from_source(
            &LIST_SET.replace(
                "spec (s : t) (i : nat) =\n          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)",
                "spec (s : t) (i : nat) = not (lookup empty i)",
            ),
        )
        .unwrap()
        .spec;
        assert_eq!(
            problem.globals.identity(),
            weaker.globals.identity(),
            "the clone shares the globals Env by construction"
        );

        let engine = Engine::with_defaults();
        let _ = engine.session(&problem);
        let _ = engine.session(&weaker);
        assert_eq!(
            engine.cached_problems(),
            2,
            "distinct specs, distinct caches"
        );

        // And the runs disagree exactly as standalone runs would: the
        // original needs the no-duplicates invariant, the weakened spec is
        // satisfied by `true`-like candidates.
        let strict = engine.run(&problem, &RunOptions::quick());
        let weak = engine.run(&weaker, &RunOptions::quick());
        let standalone_weak = Engine::with_defaults().run(&weaker, &RunOptions::quick());
        assert_eq!(weak.outcome, standalone_weak.outcome);
        assert!(strict.is_success());
    }

    #[test]
    fn lru_eviction_respects_the_budget() {
        let problem_a = Problem::from_source(LIST_SET).unwrap();
        let buggy = LIST_SET.replace("if lookup l x then l else Cons (x, l)", "Cons (x, l)");
        let problem_b = Problem::from_source(&buggy).unwrap();
        let problem_c = Problem::from_source(LIST_SET).unwrap();

        let engine = Engine::new(EngineConfig::default().with_max_cached_problems(2)).unwrap();
        let a = engine.session(&problem_a);
        let _b = engine.session(&problem_b);
        assert_eq!(engine.cached_problems(), 2);
        // Touch A so B is the LRU entry, then open C: B must be evicted.
        let _a_again = engine.session(&problem_a);
        let _c = engine.session(&problem_c);
        assert_eq!(engine.cached_problems(), 2);
        // A's caches survived: a new session on A shares them.
        let a_caches = engine.caches_for(&problem_a);
        assert!(Arc::ptr_eq(&a_caches, a.caches()));
    }

    /// A unique temp directory per test (no external tempfile crate in the
    /// offline build).
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hanoi-warm-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn warm_start_store_round_trips_across_engines() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let options = RunOptions::quick();
        let dir = scratch_dir("roundtrip");

        // "Process 1": solve, then checkpoint.
        let first_engine = Engine::with_defaults();
        let cold = first_engine.run(&problem, &options);
        assert!(cold.is_success(), "{}", cold.outcome);
        assert_eq!(cold.stats.warm_start_loads, 0);
        assert_eq!(first_engine.save_state(&dir).unwrap(), 1);
        let manifest_path = dir
            .join("manifests")
            .join(format!("{}.json", problem.fingerprint().to_hex()));
        assert!(manifest_path.is_file(), "{manifest_path:?}");
        assert!(
            !dir.join(format!("{}.json", problem.fingerprint().to_hex()))
                .exists(),
            "the default format is chunked, not monolithic"
        );

        // "Process 2": a brand-new engine restores from disk; every check of
        // the re-run is answered from the restored cache.
        let second_engine = Engine::new(EngineConfig::default().with_warm_start_dir(&dir)).unwrap();
        let restored = second_engine.run(&problem, &options);
        assert_eq!(restored.outcome, cold.outcome);
        assert_eq!(restored.stats.iterations, cold.stats.iterations);
        assert!(
            restored.stats.warm_start_loads >= 2,
            "check cache + at least one bank: {:?}",
            restored.stats
        );
        assert_eq!(
            restored.stats.verification_cache_hits as usize, restored.stats.verification_calls,
            "restored checks must all be snapshot hits: {:?}",
            restored.stats
        );
        assert_eq!(
            restored.stats.pool_builds, 0,
            "a fully warm restored run never needs a pool"
        );

        // save_state_to_warm_dir writes through the configured directory.
        assert_eq!(second_engine.save_state_to_warm_dir().unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restored_pool_shapes_rebuild_lazily_once() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let options = RunOptions::quick();
        let dir = scratch_dir("shapes");
        let first = Engine::with_defaults();
        let cold = first.run(&problem, &options);
        assert!(cold.is_success(), "{}", cold.outcome);
        assert!(cold.stats.pool_slab_builds > 0);
        assert_eq!(
            cold.stats.pool_slab_restores, 0,
            "cold runs restore nothing"
        );
        first.save_state(&dir).unwrap();

        let second = Engine::new(EngineConfig::default().with_warm_start_dir(&dir)).unwrap();
        let pools = second.caches_for(&problem).pools();
        assert_eq!(
            pools.stats().slab_builds,
            0,
            "restored shapes must not rebuild before a pool is requested"
        );
        // The first pool request rebuilds every recorded shape, once.
        let _ = pools.pool(&hanoi_lang::types::Type::named("list"), 5, 4, 1);
        let stats = pools.stats();
        assert_eq!(
            stats.slab_restores, cold.stats.pool_slab_builds,
            "the rebuild must cover exactly the recorded shapes: {stats:?}"
        );
        // Later requests are served from the rebuilt slabs.
        let _ = pools.pool(&hanoi_lang::types::Type::named("list"), 5, 4, 1);
        assert_eq!(pools.stats().slab_builds, stats.slab_builds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_chunks_quarantine_individually_and_the_rest_restores() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let options = RunOptions::quick();
        let dir = scratch_dir("chunk-tamper");
        let engine = Engine::with_defaults();
        let cold = engine.run(&problem, &options);
        assert!(cold.is_success(), "{}", cold.outcome);
        engine.save_state(&dir).unwrap();

        // Flip bytes in one chunk: its content address no longer proves it.
        let store = hanoi_store::ChunkStore::open(&dir).unwrap();
        let manifest = store.manifest(problem.fingerprint()).unwrap();
        let victim = manifest.entries.last().unwrap().chunk;
        std::fs::write(
            dir.join("chunks").join(format!("{}.json", victim.to_hex())),
            "tampered",
        )
        .unwrap();

        let second = Engine::new(EngineConfig::default().with_warm_start_dir(&dir)).unwrap();
        let result = second.run(&problem, &options);
        assert_eq!(result.outcome, cold.outcome, "correctness is untouchable");
        assert_eq!(
            result.stats.warm_start_quarantined, 1,
            "exactly the tampered chunk: {:?}",
            result.stats
        );
        assert!(
            result.stats.warm_start_loads > 0,
            "the restore proceeded with the surviving chunks: {:?}",
            result.stats
        );
        let quarantined = dir
            .join("chunks")
            .join(format!("{}.json.corrupt", victim.to_hex()));
        assert!(quarantined.is_file(), "{quarantined:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshots_fall_back_to_a_cold_start() {
        // The legacy monolithic format: whole-file validation, whole-file
        // quarantine — still supported read-compatibly.
        let problem = Problem::from_source(LIST_SET).unwrap();
        let options = RunOptions::quick();
        let dir = scratch_dir("corrupt");
        let engine = Engine::new(EngineConfig::default().with_monolithic_snapshots(true)).unwrap();
        let cold = engine.run(&problem, &options);
        engine.save_state(&dir).unwrap();
        let path = dir.join(format!("{}.json", problem.fingerprint().to_hex()));

        // Truncate the snapshot mid-file: parse fails, the run is cold and
        // still correct — and the broken file is quarantined so the next
        // process start does not re-parse it.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let tampered = Engine::new(EngineConfig::default().with_warm_start_dir(&dir)).unwrap();
        let result = tampered.run(&problem, &options);
        assert_eq!(result.outcome, cold.outcome);
        assert_eq!(result.stats.warm_start_loads, 0, "{:?}", result.stats);
        assert_eq!(result.stats.verification_cache_hits, 0);
        assert_eq!(result.stats.warm_start_quarantined, 1, "{:?}", result.stats);
        let quarantined = dir.join(format!("{}.json.corrupt", problem.fingerprint().to_hex()));
        assert!(quarantined.is_file(), "{quarantined:?}");
        assert!(!path.is_file(), "the broken file must be moved, not copied");

        // A version bump is rejected just as cleanly.
        let bumped = text.replacen("\"version\": 2", "\"version\": 999", 1);
        assert_ne!(bumped, text, "the version field must be present");
        std::fs::write(&path, bumped).unwrap();
        let mismatched = Engine::new(EngineConfig::default().with_warm_start_dir(&dir)).unwrap();
        let result = mismatched.run(&problem, &options);
        assert_eq!(result.outcome, cold.outcome);
        assert_eq!(result.stats.warm_start_loads, 0);
        assert_eq!(result.stats.warm_start_quarantined, 1);

        // A snapshot renamed onto another problem's fingerprint is refused.
        std::fs::write(&path, &text).unwrap();
        let buggy = LIST_SET.replace("if lookup l x then l else Cons (x, l)", "Cons (x, l)");
        let other = Problem::from_source(&buggy).unwrap();
        let stolen = dir.join(format!("{}.json", other.fingerprint().to_hex()));
        std::fs::copy(&path, &stolen).unwrap();
        let refusing = Engine::new(EngineConfig::default().with_warm_start_dir(&dir)).unwrap();
        let result = refusing.run(&other, &options);
        assert_eq!(result.stats.warm_start_loads, 0, "wrong-problem snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batches_preserve_job_order_and_share_caches() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let buggy = LIST_SET.replace("if lookup l x then l else Cons (x, l)", "Cons (x, l)");
        let buggy_problem = Problem::from_source(&buggy).unwrap();

        let engine = Engine::new(EngineConfig::default().with_parallelism(2)).unwrap();
        let jobs = vec![
            BatchJob::new(&problem, RunOptions::quick()),
            BatchJob::new(&buggy_problem, RunOptions::quick()),
            BatchJob::new(&problem, RunOptions::quick().with_mode(Mode::OneShot)),
        ];
        let results = engine.run_batch(&jobs);
        assert_eq!(results.len(), 3);
        assert!(
            matches!(results[0].outcome, Outcome::Invariant(_)),
            "job 0: {}",
            results[0].outcome
        );
        assert!(
            matches!(results[1].outcome, Outcome::SpecViolation(_)),
            "job 1: {}",
            results[1].outcome
        );
        // Deterministic order: rerunning yields the same outcomes slot by
        // slot.
        let again = engine.run_batch(&jobs);
        for (first, second) in results.iter().zip(&again) {
            assert_eq!(first.outcome, second.outcome);
        }
        assert_eq!(engine.cached_problems(), 2);
    }
}
