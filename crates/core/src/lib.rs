//! The Hanoi inference algorithm (Figure 4 of the paper), its baselines, and
//! the long-lived engine that serves them.
//!
//! Given a [`hanoi_abstraction::Problem`] — a module, its interface and a
//! specification — inference runs counterexample-guided inductive synthesis
//! to find a *sufficient representation invariant*: a predicate over the
//! concrete representation type that (a) implies the specification and (b) is
//! preserved by every module operation.
//!
//! The key algorithmic idea reproduced here is **visible inductiveness**:
//! each candidate invariant is first *weakened* until no module operation,
//! applied to values already known to be constructible (`V+`), escapes it —
//! such escapes are themselves constructible, so they are added to `V+`
//! without any guessing — and only then is the candidate checked for
//! sufficiency and full inductiveness, whose counterexamples *strengthen* it
//! through `V−`.
//!
//! # Service API
//!
//! The public entry point is the long-lived [`Engine`]: it owns the expensive
//! state worth keeping alive across runs (the verifier's pool caches and the
//! synthesizers' term banks, keyed per problem) and hands out [`Session`]s
//! that run inference against it — warm re-runs, shared baseline banks,
//! [`Engine::run_batch`] batches, streamed [`RunEvent`]s and cooperative
//! [`CancelToken`] cancellation.  Engine-wide settings live in
//! [`EngineConfig`], per-run options in [`RunOptions`].  The per-call
//! [`Driver`] is a deprecated shim over a throwaway engine.
//!
//! Besides the main algorithm the crate provides the paper's two
//! optimizations (synthesis-result caching and counterexample-list caching,
//! §4.4) and the three comparison modes of §5.5 (∧Str, LinearArbitrary-style,
//! OneShot), all selectable through [`RunOptions`].

#![warn(missing_docs)]

pub mod cancel;
pub mod clc;
pub mod config;
pub mod context;
pub mod driver;
pub mod engine;
pub mod events;
pub mod modes;
pub mod outcome;
pub mod session;
pub mod stats;

/// The hand-rolled JSON reader/writer (re-exported from
/// [`hanoi_lang::json`], where it moved so the verifier's and synthesizer's
/// warm-start snapshots can use it without depending on this crate).
pub use hanoi_lang::json;

pub use cancel::CancelToken;
pub use config::{
    ConfigError, EngineConfig, HanoiConfig, Mode, Optimizations, RunOptions, SynthChoice,
};
#[allow(deprecated)]
pub use driver::Driver;
pub use engine::{BatchJob, Engine};
pub use events::{CollectingObserver, RunEvent, RunObserver, RunPhase, SequencedEvent, Sequencer};
pub use outcome::{Outcome, RunResult};
pub use session::Session;
pub use stats::RunStats;
