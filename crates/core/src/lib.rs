//! The Hanoi inference algorithm (Figure 4 of the paper) and its baselines.
//!
//! Given a [`hanoi_abstraction::Problem`] — a module, its interface and a
//! specification — the [`Driver`] runs counterexample-guided inductive
//! synthesis to find a *sufficient representation invariant*: a predicate
//! over the concrete representation type that (a) implies the specification
//! and (b) is preserved by every module operation.
//!
//! The key algorithmic idea reproduced here is **visible inductiveness**:
//! each candidate invariant is first *weakened* until no module operation,
//! applied to values already known to be constructible (`V+`), escapes it —
//! such escapes are themselves constructible, so they are added to `V+`
//! without any guessing — and only then is the candidate checked for
//! sufficiency and full inductiveness, whose counterexamples *strengthen* it
//! through `V−`.
//!
//! Besides the main algorithm the crate provides the paper's two
//! optimizations (synthesis-result caching and counterexample-list caching,
//! §4.4) and the three comparison modes of §5.5 (∧Str, LinearArbitrary-style,
//! OneShot), all selectable through [`HanoiConfig`].

pub mod clc;
pub mod config;
pub mod context;
pub mod driver;
pub mod modes;
pub mod outcome;
pub mod stats;

pub use config::{HanoiConfig, Mode, Optimizations, SynthChoice};
pub use driver::Driver;
pub use outcome::{Outcome, RunResult};
pub use stats::RunStats;
