//! Streaming run events: the [`RunObserver`] interface.
//!
//! A long-running inference service cannot wait for [`crate::RunResult`] to
//! learn what a run is doing — experiment dashboards want candidates as they
//! are proposed, counterexamples as they are found, and phase timings as they
//! complete.  Every run accepts an optional observer
//! ([`crate::Session::run_observed`]); the inference context emits a
//! [`RunEvent`] at each step of the CEGIS loop, superseding the previous
//! practice of polling intermediate `RunStats` snapshots.
//!
//! Events are emitted synchronously from the run's thread, in a deterministic
//! order for a deterministic run; observers should be cheap (buffer, forward
//! to a channel) and must not block.

use std::time::Duration;

use hanoi_lang::ast::Expr;

use crate::config::{Mode, SynthChoice};

/// The phase of the CEGIS loop a timed event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunPhase {
    /// A synthesizer call (`Synth V+ V−`).
    Synthesis,
    /// A visible-inductiveness check (`ClosedPositives`).
    VisibleInductiveness,
    /// A sufficiency check (`Verify Suf`).
    Sufficiency,
    /// A full-inductiveness check (`NoNegatives`).
    FullInductiveness,
    /// A single-operation inductiveness check (the LA baseline).
    OpInductiveness,
}

impl RunPhase {
    /// The label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            RunPhase::Synthesis => "synthesis",
            RunPhase::VisibleInductiveness => "visible-inductiveness",
            RunPhase::Sufficiency => "sufficiency",
            RunPhase::FullInductiveness => "full-inductiveness",
            RunPhase::OpInductiveness => "op-inductiveness",
        }
    }
}

/// One step of an inference run, streamed to the run's [`RunObserver`].
#[derive(Debug, Clone)]
pub enum RunEvent {
    /// The run started.
    RunStarted {
        /// The algorithm being run.
        mode: Mode,
        /// The synthesizer backing it.
        synthesizer: SynthChoice,
    },
    /// A candidate invariant was produced (by the synthesizer or from the
    /// synthesis-result cache).
    CandidateProposed {
        /// The CEGIS iteration the candidate belongs to (1-based; `0` for
        /// calls outside the iteration counter, e.g. OneShot's single guess
        /// before its iteration is recorded).
        iteration: usize,
        /// The candidate predicate.
        candidate: Expr,
        /// `true` when the candidate was served from the synthesis-result
        /// cache without a synthesizer call.
        from_cache: bool,
    },
    /// Constructible values were learned (a visible-inductiveness
    /// counterexample): `V+` grew and `V−` was reset/replayed.
    PositivesAdded {
        /// How many genuinely new values entered `V+`.
        added: usize,
        /// Size of `V+` afterwards.
        total: usize,
    },
    /// Negative examples were learned (a sufficiency or full-inductiveness
    /// counterexample).
    NegativesAdded {
        /// How many genuinely new values entered `V−`.
        added: usize,
        /// Size of `V−` afterwards.
        total: usize,
    },
    /// A synthesis call or verifier check completed.
    PhaseFinished {
        /// Which phase.
        phase: RunPhase,
        /// Its wall-clock duration.
        elapsed: Duration,
    },
    /// The run ended.
    RunFinished {
        /// `true` when an invariant was produced.
        success: bool,
        /// CEGIS iterations executed.
        iterations: usize,
        /// Total wall-clock time.
        total: Duration,
    },
}

/// A [`RunEvent`] paired with its 1-based sequence number in the run's
/// stream.
///
/// Sequence numbers give an event stream an identity that survives the
/// transport that carried it: a consumer that saw events `1..=k` before its
/// connection died can prove, after reconnecting, that a replayed stream
/// continues exactly where it stopped (the next event is `k+1`) and that
/// nothing was silently dropped in between.  Within one run, sequence
/// numbers are consecutive from 1 in emission order.
#[derive(Debug, Clone)]
pub struct SequencedEvent {
    /// Position in the run's event stream (1-based, consecutive).
    pub seq: u64,
    /// The event itself.
    pub event: RunEvent,
}

/// Issues the consecutive, 1-based sequence numbers of one run's event
/// stream.
///
/// The counter is deliberately separable from the events: journaling layers
/// (e.g. a replay buffer that also stamps the run's terminal result) need to
/// draw numbers from the same sequence as the events proper, so the stream
/// stays contiguous end to end.
#[derive(Debug, Clone)]
pub struct Sequencer {
    next: u64,
}

impl Default for Sequencer {
    fn default() -> Self {
        Sequencer::new()
    }
}

impl Sequencer {
    /// A sequencer whose first issued number is 1.
    pub fn new() -> Self {
        Sequencer { next: 1 }
    }

    /// Issues the next sequence number.
    pub fn issue(&mut self) -> u64 {
        let seq = self.next;
        self.next += 1;
        seq
    }

    /// Stamps `event` with the next sequence number.
    pub fn stamp(&mut self, event: RunEvent) -> SequencedEvent {
        SequencedEvent {
            seq: self.issue(),
            event,
        }
    }

    /// The number the next [`Sequencer::issue`] will return.
    pub fn next_seq(&self) -> u64 {
        self.next
    }
}

/// A sink for [`RunEvent`]s, registered per run.
///
/// Observers run on the inference thread: keep `on_event` cheap and
/// non-blocking.  The `Send` bound lets [`crate::Engine::run_batch`] carry
/// runs (and their observers) to worker threads.
pub trait RunObserver: Send {
    /// Called once per event, in emission order.
    fn on_event(&mut self, event: &RunEvent);
}

/// Every `FnMut(&RunEvent)` closure is an observer.
impl<F: FnMut(&RunEvent) + Send> RunObserver for F {
    fn on_event(&mut self, event: &RunEvent) {
        self(event)
    }
}

/// An observer that buffers every event — convenient for tests and one-shot
/// tools that inspect the stream after the run.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    /// The events observed so far, in emission order.
    pub events: Vec<RunEvent>,
}

impl CollectingObserver {
    /// An empty collector.
    pub fn new() -> Self {
        CollectingObserver::default()
    }

    /// How many collected events match `predicate`.
    pub fn count(&self, predicate: impl Fn(&RunEvent) -> bool) -> usize {
        self.events.iter().filter(|e| predicate(e)).count()
    }
}

impl RunObserver for CollectingObserver {
    fn on_event(&mut self, event: &RunEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_and_collectors_observe() {
        let event = RunEvent::PhaseFinished {
            phase: RunPhase::Synthesis,
            elapsed: Duration::from_millis(5),
        };
        let mut seen = 0usize;
        {
            let mut closure = |_: &RunEvent| seen += 1;
            closure.on_event(&event);
            closure.on_event(&event);
        }
        assert_eq!(seen, 2);

        let mut collector = CollectingObserver::new();
        collector.on_event(&event);
        collector.on_event(&RunEvent::RunFinished {
            success: true,
            iterations: 3,
            total: Duration::from_secs(1),
        });
        assert_eq!(collector.events.len(), 2);
        assert_eq!(
            collector.count(|e| matches!(e, RunEvent::PhaseFinished { .. })),
            1
        );
        assert_eq!(RunPhase::Sufficiency.label(), "sufficiency");
    }

    #[test]
    fn sequencers_issue_consecutive_one_based_numbers() {
        let mut sequencer = Sequencer::new();
        assert_eq!(sequencer.next_seq(), 1);
        let stamped = sequencer.stamp(RunEvent::RunFinished {
            success: true,
            iterations: 1,
            total: Duration::from_millis(1),
        });
        assert_eq!(stamped.seq, 1);
        assert_eq!(sequencer.issue(), 2);
        assert_eq!(sequencer.issue(), 3);
        assert_eq!(sequencer.next_seq(), 4);
    }
}
