//! The inference modes: the main Hanoi algorithm (Figure 4) and the
//! comparison modes of §5.5 — ∧Str (conjunctive strengthening à la
//! LoopInvGen), LA (LinearArbitrary-style counterexample handling) and
//! OneShot (a single synthesis call over labelled small values).
//!
//! Each mode reuses the same synthesizer, verifier and example bookkeeping as
//! the main algorithm through [`crate::context::InferenceContext`]; only the
//! counterexample-handling strategy differs, which is exactly the comparison
//! the paper's Figure 8 makes.  Modes are dispatched by
//! [`crate::Session::run`] on [`crate::RunOptions::mode`].

pub mod conj_str;
pub mod hanoi;
pub mod linear_arbitrary;
pub mod one_shot;

use hanoi_lang::ast::Expr;
use hanoi_lang::types::Type;

/// Conjoins candidate predicates into a single predicate
/// `fun x -> p1 x && p2 x && …` over the concrete type.
pub(crate) fn conjoin(concrete: &Type, conjuncts: &[Expr]) -> Expr {
    let applications = conjuncts
        .iter()
        .map(|p| Expr::app(p.clone(), Expr::var("__c")))
        .collect::<Vec<_>>();
    Expr::lambda("__c", concrete.clone(), Expr::and_all(applications))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::parser::parse_expr;

    #[test]
    fn conjoin_builds_a_predicate() {
        let concrete = Type::named("list");
        let p1 = parse_expr("fun (l : list) -> True").unwrap();
        let p2 = parse_expr("fun (l : list) -> not (lookup l 0)").unwrap();
        let conj = conjoin(&concrete, &[p1, p2]);
        let printed = conj.to_string();
        assert!(printed.contains("&&"));
        assert!(printed.starts_with("fun (__c : list)"));
        let single = conjoin(&concrete, &[parse_expr("fun (l : list) -> True").unwrap()]);
        assert!(matches!(single, Expr::Lambda(_)));
    }
}
