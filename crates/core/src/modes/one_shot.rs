//! The OneShot baseline (§5.5): label the smallest values of the concrete
//! type with the specification, synthesize once, and hope.
//!
//! "This algorithm only works when the specification quantifies over a single
//! element of the abstract type" — with more abstract quantifiers the mode
//! reports a synthesis failure.  The synthesized predicate is then checked
//! for sufficiency and full inductiveness; if either fails the benchmark is
//! counted as failed (matching the paper's observation that OneShot's fixed
//! example budget is too small for some benchmarks and too large for others).

use hanoi_lang::eval::Fuel;
use hanoi_lang::value::Value;
use hanoi_verifier::{InductivenessOutcome, SufficiencyOutcome};

use crate::context::InferenceContext;
use crate::outcome::{Outcome, RunResult};

/// Runs the OneShot baseline.
pub fn run(mut ctx: InferenceContext<'_, '_>) -> RunResult {
    if ctx.problem.spec.abstract_arity() != 1 {
        return ctx.finish(Outcome::SynthesisFailure(
            "OneShot requires a specification with exactly one abstract-type quantifier".into(),
        ));
    }
    ctx.stats.iterations = 1;

    // Label the smallest values by evaluating the specification with every
    // base-type quantifier instantiated over a small enumeration.
    let samples = ctx
        .verifier()
        .smallest_concrete_values(ctx.options.one_shot_samples);
    let labels: Vec<(Value, bool)> = samples
        .iter()
        .map(|sample| (sample.clone(), spec_holds_on(&mut ctx, sample)))
        .collect();
    for (value, holds) in &labels {
        if *holds {
            ctx.v_plus.insert(value.clone());
        } else {
            ctx.v_minus.insert(value.clone());
        }
    }

    // The labelled samples are already in `V+`/`V−`; the context builds the
    // trace-completed example set and drives the session synthesizer (and
    // with it the run's persistent term bank and statistics).
    let candidate = match ctx.synthesize_candidate() {
        Ok(candidate) => candidate,
        Err(outcome) => return ctx.finish(outcome),
    };

    // Whatever was synthesized is the answer; it still has to be a sufficient
    // representation invariant to count as a success.
    match ctx.check_sufficiency(&candidate) {
        Ok(SufficiencyOutcome::Valid) => {}
        Ok(SufficiencyOutcome::Cex(_)) => {
            return ctx.finish(Outcome::SynthesisFailure(
                "one-shot candidate is not sufficient".into(),
            ))
        }
        Err(outcome) => return ctx.finish(outcome),
    }
    match ctx.check_full(&candidate) {
        Ok(InductivenessOutcome::Valid) => ctx.finish(Outcome::Invariant(candidate)),
        Ok(InductivenessOutcome::Cex(_)) => ctx.finish(Outcome::SynthesisFailure(
            "one-shot candidate is not inductive".into(),
        )),
        Err(outcome) => ctx.finish(outcome),
    }
}

/// Evaluates the specification on `sample` at the abstract position, with all
/// base-type quantifiers instantiated over a small enumeration; `true` only
/// when every instantiation satisfies the spec.
fn spec_holds_on(ctx: &mut InferenceContext<'_, '_>, sample: &Value) -> bool {
    let spec = &ctx.problem.spec;
    let abstract_position = spec.abstract_positions()[0];
    let mut pools: Vec<Vec<Value>> = Vec::new();
    for (index, (_, ty)) in spec.params.iter().enumerate() {
        if index == abstract_position {
            pools.push(vec![sample.clone()]);
        } else {
            // Drawn from the session pool cache: this runs once per labelled
            // sample, and re-enumerating the same small pools 30 times was
            // pure waste.
            let concrete = ty.subst_abstract(ctx.problem.concrete_type());
            let pool = ctx.verifier().pool_cache().pool(&concrete, 20, 8, 1);
            pools.push(pool.as_ref().clone());
        }
    }
    let mut holds = true;
    let mut assignment = vec![0usize; pools.len()];
    'outer: loop {
        let args: Vec<Value> = assignment
            .iter()
            .zip(&pools)
            .map(|(&i, pool)| pool[i].clone())
            .collect();
        let ok = ctx
            .problem
            .eval_spec_with_fuel(&args, &mut Fuel::standard())
            .unwrap_or(false);
        if !ok {
            holds = false;
            break;
        }
        // Advance the odometer.
        let mut position = pools.len();
        loop {
            if position == 0 {
                break 'outer;
            }
            position -= 1;
            assignment[position] += 1;
            if assignment[position] < pools[position].len() {
                break;
            }
            assignment[position] = 0;
        }
    }
    holds
}

#[cfg(test)]
mod tests {
    use crate::config::{Mode, RunOptions};
    use crate::engine::Engine;
    use crate::outcome::Outcome;
    use hanoi_abstraction::Problem;

    const UNIQUE_LIST: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn one_shot_runs_to_a_definite_answer() {
        // The paper reports that OneShot solves coq/unique-list-set (this
        // very module) and fails on most others; either way the run must
        // terminate quickly with a definite outcome and exactly one synthesis
        // call.
        let problem = Problem::from_source(UNIQUE_LIST).unwrap();
        let options = RunOptions::quick().with_mode(Mode::OneShot);
        let result = Engine::with_defaults().run(&problem, &options);
        match &result.outcome {
            Outcome::Invariant(inv) => {
                assert!(!problem
                    .eval_predicate(inv, &hanoi_lang::value::Value::nat_list(&[1, 1]))
                    .unwrap());
            }
            Outcome::SynthesisFailure(_) | Outcome::Timeout | Outcome::Cancelled => {}
            Outcome::SpecViolation(_) => panic!("the module satisfies its spec"),
        }
        assert!(result.stats.synthesis_calls <= 1);
        assert_eq!(result.stats.iterations, 1);
    }

    #[test]
    fn one_shot_rejects_multi_abstract_specs() {
        let src = UNIQUE_LIST.replace(
            "spec (s : t) (i : nat) =\n          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)",
            "spec (s1 : t) (s2 : t) (i : nat) = lookup (insert s1 i) i",
        );
        let problem = Problem::from_source(&src).unwrap();
        let options = RunOptions::quick().with_mode(Mode::OneShot);
        let result = Engine::with_defaults().run(&problem, &options);
        assert!(matches!(result.outcome, Outcome::SynthesisFailure(_)));
    }
}
