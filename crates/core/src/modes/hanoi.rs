//! The main Hanoi algorithm of Figure 4 (visible-inductiveness-first CEGIS),
//! in iterative form.

use hanoi_verifier::{InductivenessOutcome, SufficiencyOutcome};

use crate::context::InferenceContext;
use crate::outcome::{Outcome, RunResult};

/// Runs the Hanoi algorithm of Figure 4 to completion.
///
/// Each iteration corresponds to one recursive call of the figure: synthesize
/// a candidate from the current `V+`/`V−`, weaken it via visible
/// inductiveness (`ClosedPositives`), and only once it is visibly inductive
/// check sufficiency and full inductiveness (`NoNegatives`), strengthening on
/// their counterexamples.
pub fn run(mut ctx: InferenceContext<'_, '_>) -> RunResult {
    loop {
        if let Some(outcome) = ctx.interrupted() {
            return ctx.finish(outcome);
        }
        ctx.stats.iterations += 1;
        if ctx.stats.iterations > ctx.options.max_iterations {
            let message = format!("iteration cap of {} reached", ctx.options.max_iterations);
            return ctx.finish(Outcome::SynthesisFailure(message));
        }

        // Synth V+ V−
        let candidate = match ctx.synthesize_candidate() {
            Ok(candidate) => candidate,
            Err(outcome) => return ctx.finish(outcome),
        };

        // ClosedPositives V+ I: weaken until visibly inductive.
        match ctx.check_visible(&candidate) {
            Ok(InductivenessOutcome::Valid) => {}
            Ok(InductivenessOutcome::Cex(cex)) => {
                // Everything reachable in one step from V+ is constructible.
                ctx.add_positives(cex.v);
                continue;
            }
            Err(outcome) => return ctx.finish(outcome),
        }

        // NoNegatives I: sufficiency first…
        match ctx.check_sufficiency(&candidate) {
            Ok(SufficiencyOutcome::Valid) => {}
            Ok(SufficiencyOutcome::Cex(cex)) => {
                let fresh = ctx.add_negatives(&candidate, &cex.abstract_args);
                if fresh.is_empty() {
                    // Every witness is known constructible: the module
                    // genuinely violates its specification.
                    return ctx.finish(Outcome::SpecViolation(cex.abstract_args));
                }
                continue;
            }
            Err(outcome) => return ctx.finish(outcome),
        }

        // …then full inductiveness.
        match ctx.check_full(&candidate) {
            Ok(InductivenessOutcome::Valid) => {
                return ctx.finish(Outcome::Invariant(candidate));
            }
            Ok(InductivenessOutcome::Cex(cex)) => {
                let fresh = ctx.add_negatives(&candidate, &cex.s);
                if fresh.is_empty() {
                    return ctx.finish(Outcome::SpecViolation(cex.s));
                }
                continue;
            }
            Err(outcome) => return ctx.finish(outcome),
        }
    }
}
