//! The LA baseline (§5.5): LinearArbitrary-style counterexample handling.
//!
//! Two differences from Hanoi: inductiveness constraints are checked one
//! module operation at a time, and there is no eager search for visible
//! inductiveness counterexamples — positives are only discovered when a full
//! inductiveness counterexample *happens* to have all of its inputs in `V+`.

use hanoi_verifier::{InductivenessOutcome, SufficiencyOutcome};

use crate::context::InferenceContext;
use crate::outcome::{Outcome, RunResult};

/// Runs the LA baseline to completion.
pub fn run(mut ctx: InferenceContext<'_, '_>) -> RunResult {
    let op_names: Vec<String> = ctx
        .problem
        .inductive_ops()
        .iter()
        .map(|op| op.name.as_str().to_string())
        .collect();

    loop {
        if let Some(outcome) = ctx.interrupted() {
            return ctx.finish(outcome);
        }
        ctx.stats.iterations += 1;
        if ctx.stats.iterations > ctx.options.max_iterations {
            let message = format!("iteration cap of {} reached", ctx.options.max_iterations);
            return ctx.finish(Outcome::SynthesisFailure(message));
        }

        let candidate = match ctx.synthesize_candidate() {
            Ok(candidate) => candidate,
            Err(outcome) => return ctx.finish(outcome),
        };

        // Sufficiency, exactly as in Hanoi.
        match ctx.check_sufficiency(&candidate) {
            Ok(SufficiencyOutcome::Valid) => {}
            Ok(SufficiencyOutcome::Cex(cex)) => {
                let fresh = ctx.add_negatives(&candidate, &cex.abstract_args);
                if fresh.is_empty() {
                    return ctx.finish(Outcome::SpecViolation(cex.abstract_args));
                }
                continue;
            }
            Err(outcome) => return ctx.finish(outcome),
        }

        // Full inductiveness, one operation at a time; the first violated
        // constraint is handled and the loop restarts.
        let mut found_cex = false;
        for op in &op_names {
            match ctx.check_op(op, &candidate) {
                Ok(InductivenessOutcome::Valid) => {}
                Ok(InductivenessOutcome::Cex(cex)) => {
                    found_cex = true;
                    let visible = !cex.s.is_empty() && cex.s.iter().all(|v| ctx.v_plus.contains(v))
                        || cex.s.is_empty();
                    if visible {
                        // The counterexample happens to be a visible one:
                        // treat it accordingly (weaken).
                        ctx.add_positives(cex.v);
                    } else {
                        let fresh = ctx.add_negatives(&candidate, &cex.s);
                        if fresh.is_empty() {
                            return ctx.finish(Outcome::SpecViolation(cex.s));
                        }
                    }
                    break;
                }
                Err(outcome) => return ctx.finish(outcome),
            }
        }
        if !found_cex {
            return ctx.finish(Outcome::Invariant(candidate));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Mode, RunOptions};
    use crate::engine::Engine;
    use hanoi_abstraction::Problem;
    use hanoi_lang::value::Value;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn la_solves_the_running_example() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let options = RunOptions::quick().with_mode(Mode::LinearArbitrary);
        let result = Engine::with_defaults().run(&problem, &options);
        match &result.outcome {
            Outcome::Invariant(invariant) => {
                assert!(problem
                    .eval_predicate(invariant, &Value::nat_list(&[2, 1]))
                    .unwrap());
                assert!(!problem
                    .eval_predicate(invariant, &Value::nat_list(&[1, 1]))
                    .unwrap());
            }
            other => panic!("LA failed on the running example: {other}"),
        }
    }
}
