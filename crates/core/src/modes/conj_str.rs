//! The ∧Str baseline (§5.5): conjunctive strengthening in the style of
//! LoopInvGen / PIE.
//!
//! The mode first searches for a candidate that is *sufficient* for the
//! specification, then repeatedly strengthens it by conjoining additional
//! predicates until the conjunction is inductive.  Unlike Hanoi it has no
//! visible-inductiveness phase: it only discovers new constructible values
//! when it has already over-strengthened (an inductiveness counterexample
//! whose inputs are all known constructible), at which point the whole
//! process restarts.

use hanoi_verifier::{InductivenessOutcome, SufficiencyOutcome};

use crate::context::InferenceContext;
use crate::modes::conjoin;
use crate::outcome::{Outcome, RunResult};

/// Runs the ∧Str baseline to completion.
pub fn run(mut ctx: InferenceContext<'_, '_>) -> RunResult {
    let concrete = ctx.problem.concrete_type().clone();
    'restart: loop {
        if let Some(outcome) = ctx.interrupted() {
            return ctx.finish(outcome);
        }
        // Phase 1: find a sufficient first conjunct.
        ctx.v_minus.clear();
        let first = loop {
            if let Some(outcome) = ctx.interrupted() {
                return ctx.finish(outcome);
            }
            ctx.stats.iterations += 1;
            if ctx.stats.iterations > ctx.options.max_iterations {
                let message = format!("iteration cap of {} reached", ctx.options.max_iterations);
                return ctx.finish(Outcome::SynthesisFailure(message));
            }
            let candidate = match ctx.synthesize_candidate() {
                Ok(candidate) => candidate,
                Err(outcome) => return ctx.finish(outcome),
            };
            match ctx.check_sufficiency(&candidate) {
                Ok(SufficiencyOutcome::Valid) => break candidate,
                Ok(SufficiencyOutcome::Cex(cex)) => {
                    let fresh = ctx.add_negatives(&candidate, &cex.abstract_args);
                    if fresh.is_empty() {
                        return ctx.finish(Outcome::SpecViolation(cex.abstract_args));
                    }
                }
                Err(outcome) => return ctx.finish(outcome),
            }
        };

        // Phase 2: strengthen the conjunction until it is inductive.
        let mut conjuncts = vec![first];
        loop {
            if let Some(outcome) = ctx.interrupted() {
                return ctx.finish(outcome);
            }
            ctx.stats.iterations += 1;
            if ctx.stats.iterations > ctx.options.max_iterations {
                let message = format!("iteration cap of {} reached", ctx.options.max_iterations);
                return ctx.finish(Outcome::SynthesisFailure(message));
            }
            let conjunction = conjoin(&concrete, &conjuncts);
            match ctx.check_full(&conjunction) {
                Ok(InductivenessOutcome::Valid) => {
                    return ctx.finish(Outcome::Invariant(conjunction));
                }
                Ok(InductivenessOutcome::Cex(cex)) => {
                    let all_known = cex.s.iter().all(|v| ctx.v_plus.contains(v));
                    if all_known {
                        // Over-strengthened: the escaping values are
                        // constructible.  Learn them and restart.
                        ctx.add_positives(cex.v);
                        continue 'restart;
                    }
                    // Otherwise strengthen: the inputs that led outside the
                    // conjunction become negatives for the next conjunct.
                    let fresh = ctx.add_negatives(&conjunction, &cex.s);
                    if fresh.is_empty() {
                        return ctx.finish(Outcome::SpecViolation(cex.s));
                    }
                    let next = match ctx.synthesize_candidate() {
                        Ok(candidate) => candidate,
                        Err(outcome) => return ctx.finish(outcome),
                    };
                    conjuncts.push(next);
                }
                Err(outcome) => return ctx.finish(outcome),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Mode, RunOptions};
    use crate::engine::Engine;
    use hanoi_abstraction::Problem;
    use hanoi_lang::value::Value;

    const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn conj_str_solves_the_running_example() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let options = RunOptions::quick().with_mode(Mode::ConjStr);
        let result = Engine::with_defaults().run(&problem, &options);
        match &result.outcome {
            Outcome::Invariant(invariant) => {
                assert!(problem
                    .eval_predicate(invariant, &Value::nat_list(&[2, 1]))
                    .unwrap());
                assert!(!problem
                    .eval_predicate(invariant, &Value::nat_list(&[1, 1]))
                    .unwrap());
            }
            other => panic!("∧Str failed on the running example: {other}"),
        }
        assert!(result.stats.verification_calls > 0);
    }
}
