//! The inference driver: Figure 4 of the paper, plus mode dispatch.

use hanoi_abstraction::Problem;
use hanoi_verifier::{InductivenessOutcome, SufficiencyOutcome};

use crate::config::{HanoiConfig, Mode};
use crate::context::InferenceContext;
use crate::modes;
use crate::outcome::{Outcome, RunResult};

/// Runs representation-invariant inference on one problem.
pub struct Driver<'p> {
    problem: &'p Problem,
    config: HanoiConfig,
}

impl<'p> Driver<'p> {
    /// Creates a driver with the given configuration.
    pub fn new(problem: &'p Problem, config: HanoiConfig) -> Self {
        Driver { problem, config }
    }

    /// Creates a driver with the paper's default configuration.
    pub fn with_defaults(problem: &'p Problem) -> Self {
        Driver::new(problem, HanoiConfig::default())
    }

    /// The configuration this driver will run with.
    pub fn config(&self) -> &HanoiConfig {
        &self.config
    }

    /// Runs inference to completion (or timeout) and returns the outcome with
    /// its statistics.
    pub fn run(&self) -> RunResult {
        let ctx = InferenceContext::new(self.problem, self.config.clone());
        match self.config.mode {
            Mode::Hanoi => run_hanoi(ctx),
            Mode::ConjStr => modes::conj_str::run(ctx),
            Mode::LinearArbitrary => modes::linear_arbitrary::run(ctx),
            Mode::OneShot => modes::one_shot::run(ctx),
        }
    }
}

/// The Hanoi algorithm of Figure 4, in iterative form.
///
/// Each iteration corresponds to one recursive call of the figure: synthesize
/// a candidate from the current `V+`/`V−`, weaken it via visible
/// inductiveness (`ClosedPositives`), and only once it is visibly inductive
/// check sufficiency and full inductiveness (`NoNegatives`), strengthening on
/// their counterexamples.
fn run_hanoi(mut ctx: InferenceContext<'_>) -> RunResult {
    loop {
        if ctx.timed_out() {
            return ctx.finish(Outcome::Timeout);
        }
        ctx.stats.iterations += 1;
        if ctx.stats.iterations > ctx.config.max_iterations {
            let message = format!("iteration cap of {} reached", ctx.config.max_iterations);
            return ctx.finish(Outcome::SynthesisFailure(message));
        }

        // Synth V+ V−
        let candidate = match ctx.synthesize_candidate() {
            Ok(candidate) => candidate,
            Err(outcome) => return ctx.finish(outcome),
        };

        // ClosedPositives V+ I: weaken until visibly inductive.
        match ctx.check_visible(&candidate) {
            Ok(InductivenessOutcome::Valid) => {}
            Ok(InductivenessOutcome::Cex(cex)) => {
                // Everything reachable in one step from V+ is constructible.
                ctx.add_positives(cex.v);
                continue;
            }
            Err(outcome) => return ctx.finish(outcome),
        }

        // NoNegatives I: sufficiency first…
        match ctx.check_sufficiency(&candidate) {
            Ok(SufficiencyOutcome::Valid) => {}
            Ok(SufficiencyOutcome::Cex(cex)) => {
                let fresh = ctx.add_negatives(&candidate, &cex.abstract_args);
                if fresh.is_empty() {
                    // Every witness is known constructible: the module
                    // genuinely violates its specification.
                    return ctx.finish(Outcome::SpecViolation(cex.abstract_args));
                }
                continue;
            }
            Err(outcome) => return ctx.finish(outcome),
        }

        // …then full inductiveness.
        match ctx.check_full(&candidate) {
            Ok(InductivenessOutcome::Valid) => {
                return ctx.finish(Outcome::Invariant(candidate));
            }
            Ok(InductivenessOutcome::Cex(cex)) => {
                let fresh = ctx.add_negatives(&candidate, &cex.s);
                if fresh.is_empty() {
                    return ctx.finish(Outcome::SpecViolation(cex.s));
                }
                continue;
            }
            Err(outcome) => return ctx.finish(outcome),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hanoi_lang::value::Value;

    /// The paper's running example (§2).
    pub(crate) const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn infers_the_no_duplicates_invariant_for_the_running_example() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let driver = Driver::new(&problem, HanoiConfig::quick());
        let result = driver.run();
        let invariant = match &result.outcome {
            Outcome::Invariant(inv) => inv.clone(),
            other => panic!("expected an invariant, got {other} ({:?})", result.stats),
        };
        // The invariant must hold on constructible (duplicate-free) lists and
        // reject lists with duplicates, like the paper's `I⋆`.
        for positive in [
            Value::nat_list(&[]),
            Value::nat_list(&[3]),
            Value::nat_list(&[2, 5]),
            Value::nat_list(&[4, 2, 0]),
        ] {
            assert!(
                problem.eval_predicate(&invariant, &positive).unwrap(),
                "rejected constructible value {positive}: {invariant}"
            );
        }
        for negative in [
            Value::nat_list(&[1, 1]),
            Value::nat_list(&[0, 2, 0]),
            Value::nat_list(&[2, 2, 1]),
        ] {
            assert!(
                !problem.eval_predicate(&invariant, &negative).unwrap(),
                "accepted spec-violating value {negative}: {invariant}"
            );
        }
        // Statistics are populated.
        assert!(result.stats.verification_calls > 0);
        assert!(result.stats.synthesis_calls > 0);
        assert!(result.stats.invariant_size.is_some());
        assert!(result.stats.iterations > 1);
        assert!(result.stats.final_positives > 0);
    }

    #[test]
    fn reports_spec_violations_for_buggy_modules() {
        // An "insert" that does not de-duplicate: the module does not satisfy
        // the SET specification, and Hanoi must report a constructible
        // counterexample rather than an invariant.
        let buggy = LIST_SET.replace("if lookup l x then l else Cons (x, l)", "Cons (x, l)");
        let problem = Problem::from_source(&buggy).unwrap();
        let driver = Driver::new(&problem, HanoiConfig::quick());
        let result = driver.run();
        match result.outcome {
            Outcome::SpecViolation(witnesses) => {
                assert!(!witnesses.is_empty());
            }
            other => panic!("expected a spec violation, got {other}"),
        }
    }

    #[test]
    fn timeout_is_reported() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let config = HanoiConfig::quick().with_timeout(Some(std::time::Duration::ZERO));
        let result = Driver::new(&problem, config).run();
        assert_eq!(result.outcome, Outcome::Timeout);
    }
}
