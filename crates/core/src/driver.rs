//! The legacy per-call inference driver, kept as a thin shim over
//! [`Engine`]/[`crate::Session`].
//!
//! `Driver::new(problem, config).run()` was the original one-shot entry
//! point; it rebuilt every cache per call.  New code should hold a long-lived
//! [`Engine`] and run [`crate::Session`]s against it — see the README's
//! migration table.  The shim exists so old call sites keep compiling and
//! behaving identically (a fresh engine per call is exactly the old cold-run
//! behaviour).

use hanoi_abstraction::Problem;

use crate::config::HanoiConfig;
use crate::engine::Engine;
use crate::outcome::RunResult;

/// Runs representation-invariant inference on one problem, rebuilding all
/// caches per call.
#[deprecated(
    since = "0.1.0",
    note = "use a long-lived `Engine` and `Session::run` (see the README migration table); \
            `Driver` rebuilds every cache per call"
)]
pub struct Driver<'p> {
    problem: &'p Problem,
    config: HanoiConfig,
}

#[allow(deprecated)]
impl<'p> Driver<'p> {
    /// Creates a driver with the given configuration.
    pub fn new(problem: &'p Problem, config: HanoiConfig) -> Self {
        Driver { problem, config }
    }

    /// Creates a driver with the paper's default configuration.
    pub fn with_defaults(problem: &'p Problem) -> Self {
        Driver::new(problem, HanoiConfig::default())
    }

    /// The configuration this driver will run with.
    pub fn config(&self) -> &HanoiConfig {
        &self.config
    }

    /// Runs inference to completion (or timeout) and returns the outcome with
    /// its statistics.  Equivalent to one cold run through a fresh
    /// [`Engine`].
    pub fn run(&self) -> RunResult {
        let (engine_config, options) = self.config.split();
        let engine = match Engine::new(engine_config) {
            Ok(engine) => engine,
            Err(error) => {
                return RunResult::new(
                    crate::outcome::Outcome::SynthesisFailure(format!(
                        "invalid engine config: {error}"
                    )),
                    crate::stats::RunStats::default(),
                )
            }
        };
        engine.run(self.problem, &options)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::outcome::Outcome;
    use hanoi_lang::value::Value;

    /// The paper's running example (§2).
    pub(crate) const LIST_SET: &str = r#"
        type nat = O | S of nat
        type list = Nil | Cons of nat * list

        interface SET = sig
          type t
          val empty : t
          val insert : t -> nat -> t
          val delete : t -> nat -> t
          val lookup : t -> nat -> bool
        end

        module ListSet : SET = struct
          type t = list
          let empty : t = Nil
          let rec lookup (l : t) (x : nat) : bool =
            match l with
            | Nil -> False
            | Cons (hd, tl) -> hd == x || lookup tl x
            end
          let insert (l : t) (x : nat) : t =
            if lookup l x then l else Cons (x, l)
          let rec delete (l : t) (x : nat) : t =
            match l with
            | Nil -> Nil
            | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
            end
        end

        spec (s : t) (i : nat) =
          not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
    "#;

    #[test]
    fn infers_the_no_duplicates_invariant_for_the_running_example() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let driver = Driver::new(&problem, HanoiConfig::quick());
        let result = driver.run();
        let invariant = match &result.outcome {
            Outcome::Invariant(inv) => inv.clone(),
            other => panic!("expected an invariant, got {other} ({:?})", result.stats),
        };
        // The invariant must hold on constructible (duplicate-free) lists and
        // reject lists with duplicates, like the paper's `I⋆`.
        for positive in [
            Value::nat_list(&[]),
            Value::nat_list(&[3]),
            Value::nat_list(&[2, 5]),
            Value::nat_list(&[4, 2, 0]),
        ] {
            assert!(
                problem.eval_predicate(&invariant, &positive).unwrap(),
                "rejected constructible value {positive}: {invariant}"
            );
        }
        for negative in [
            Value::nat_list(&[1, 1]),
            Value::nat_list(&[0, 2, 0]),
            Value::nat_list(&[2, 2, 1]),
        ] {
            assert!(
                !problem.eval_predicate(&invariant, &negative).unwrap(),
                "accepted spec-violating value {negative}: {invariant}"
            );
        }
        // Statistics are populated.
        assert!(result.stats.verification_calls > 0);
        assert!(result.stats.synthesis_calls > 0);
        assert!(result.stats.invariant_size.is_some());
        assert!(result.stats.iterations > 1);
        assert!(result.stats.final_positives > 0);
    }

    #[test]
    fn the_shim_matches_a_cold_engine_run() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let shimmed = Driver::new(&problem, HanoiConfig::quick()).run();
        let (_, options) = HanoiConfig::quick().split();
        let direct = Engine::with_defaults().run(&problem, &options);
        assert_eq!(shimmed.outcome, direct.outcome);
        assert_eq!(shimmed.stats.iterations, direct.stats.iterations);
    }

    #[test]
    fn reports_spec_violations_for_buggy_modules() {
        // An "insert" that does not de-duplicate: the module does not satisfy
        // the SET specification, and Hanoi must report a constructible
        // counterexample rather than an invariant.
        let buggy = LIST_SET.replace("if lookup l x then l else Cons (x, l)", "Cons (x, l)");
        let problem = Problem::from_source(&buggy).unwrap();
        let driver = Driver::new(&problem, HanoiConfig::quick());
        let result = driver.run();
        match result.outcome {
            Outcome::SpecViolation(witnesses) => {
                assert!(!witnesses.is_empty());
            }
            other => panic!("expected a spec violation, got {other}"),
        }
    }

    #[test]
    fn timeout_is_reported() {
        let problem = Problem::from_source(LIST_SET).unwrap();
        let config = HanoiConfig::quick().with_timeout(Some(std::time::Duration::ZERO));
        let result = Driver::new(&problem, config).run();
        assert_eq!(result.outcome, Outcome::Timeout);
    }
}
