//! Run the fast subset of the 28-problem benchmark suite and print a small
//! Figure-7-style table.
//!
//! Run with `cargo run --example benchmark_suite --release`.
//! (The full table over all 28 benchmarks is produced by
//! `cargo run -p hanoi-bench --bin figure7 --release`.)

use hanoi_repro::benchmarks;
use hanoi_repro::hanoi::{Engine, Outcome, RunOptions};

fn main() {
    println!(
        "{:<36} {:>9} {:>6} {:>5} {:>5} {:>5}",
        "benchmark", "result", "time", "size", "TVC", "TSC"
    );
    let engine = Engine::with_defaults();
    for benchmark in benchmarks::quick_subset() {
        let problem = benchmark.problem().expect("benchmark elaborates");
        let result = engine.run(&problem, &RunOptions::quick());
        let status = match &result.outcome {
            Outcome::Invariant(_) => "ok",
            Outcome::Timeout => "t/o",
            Outcome::Cancelled => "stop",
            Outcome::SpecViolation(_) => "specviol",
            Outcome::SynthesisFailure(_) => "fail",
        };
        println!(
            "{:<36} {:>9} {:>5.1}s {:>5} {:>5} {:>5}",
            benchmark.id,
            status,
            result.stats.total_time.as_secs_f64(),
            result
                .stats
                .invariant_size
                .map_or("-".to_string(), |s| s.to_string()),
            result.stats.verification_calls,
            result.stats.synthesis_calls,
        );
        if let Outcome::Invariant(invariant) = &result.outcome {
            println!("    invariant: {invariant}");
        }
    }
}
