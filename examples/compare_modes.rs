//! Compare the full Hanoi algorithm against the baselines of §5.5 (∧Str,
//! LinearArbitrary, OneShot) and the two optimization ablations (−SRC, −CLC)
//! on one benchmark — a miniature of Figure 8.
//!
//! Run with `cargo run --example compare_modes --release`.

use hanoi_repro::benchmarks;
use hanoi_repro::hanoi::{Engine, Mode, Optimizations, Outcome, RunOptions};

fn main() {
    let benchmark = benchmarks::find("/coq/unique-list-::-set").expect("benchmark exists");
    let problem = benchmark.problem().expect("benchmark elaborates");
    println!("benchmark: {}", benchmark.id);
    // One engine for every mode: modes after the first start from warm
    // value pools and (per synthesizer) term banks.
    let engine = Engine::with_defaults();
    let session = engine.session(&problem);
    println!();
    println!(
        "{:<12} {:>9} {:>8} {:>5} {:>5} {:>6}",
        "mode", "result", "time", "TVC", "TSC", "iters"
    );

    let configurations = [
        ("Hanoi", Mode::Hanoi, Optimizations::all()),
        ("Hanoi-SRC", Mode::Hanoi, Optimizations::without_src()),
        ("Hanoi-CLC", Mode::Hanoi, Optimizations::without_clc()),
        ("AndStr", Mode::ConjStr, Optimizations::all()),
        ("LA", Mode::LinearArbitrary, Optimizations::all()),
        ("OneShot", Mode::OneShot, Optimizations::all()),
    ];

    for (label, mode, optimizations) in configurations {
        let options = RunOptions::quick()
            .with_mode(mode)
            .with_optimizations(optimizations);
        let result = session.run(&options);
        let status = match &result.outcome {
            Outcome::Invariant(_) => "ok",
            Outcome::Timeout => "t/o",
            Outcome::Cancelled => "stop",
            Outcome::SpecViolation(_) => "specviol",
            Outcome::SynthesisFailure(_) => "fail",
        };
        println!(
            "{:<12} {:>9} {:>7.2}s {:>5} {:>5} {:>6}",
            label,
            status,
            result.stats.total_time.as_secs_f64(),
            result.stats.verification_calls,
            result.stats.synthesis_calls,
            result.stats.iterations,
        );
    }
}
