//! Define your own module and specification, validate it against a
//! constructibility oracle, and infer its representation invariant.
//!
//! This example uses a queue implemented as a pair of lists (front/back), the
//! classic two-list functional queue, with the invariant that the front list
//! is only empty when the back list is.
//!
//! Run with `cargo run --example custom_module --release`.

use hanoi_repro::abstraction::{constructible::ConstructibleBounds, ConstructibleOracle, Problem};
use hanoi_repro::hanoi::{Engine, Outcome, RunOptions};
use hanoi_repro::lang::value::Value;

const TWO_LIST_QUEUE: &str = r#"
    type nat = O | S of nat
    type list = Nil | Cons of nat * list
    type queue = MkQueue of list * list

    let rec append (a : list) (b : list) : list =
      match a with
      | Nil -> b
      | Cons (hd, tl) -> Cons (hd, append tl b)
      end

    let rec rev (l : list) : list =
      match l with
      | Nil -> Nil
      | Cons (hd, tl) -> append (rev tl) (Cons (hd, Nil))
      end

    interface QUEUE = sig
      type t
      val empty : t
      val push : t -> nat -> t
      val pop : t -> t
      val peek : t -> nat
      val is_empty : t -> bool
    end

    module TwoListQueue : QUEUE = struct
      type t = queue
      let empty : t = MkQueue (Nil, Nil)
      let norm (q : t) : t =
        match q with
        | MkQueue (front, back) ->
            match front with
            | Nil -> MkQueue (rev back, Nil)
            | Cons (hd, tl) -> MkQueue (front, back)
            end
        end
      let push (q : t) (x : nat) : t =
        match q with
        | MkQueue (front, back) -> norm (MkQueue (front, Cons (x, back)))
        end
      let pop (q : t) : t =
        match q with
        | MkQueue (front, back) ->
            match front with
            | Nil -> MkQueue (Nil, Nil)
            | Cons (hd, tl) -> norm (MkQueue (tl, back))
            end
        end
      let peek (q : t) : nat =
        match q with
        | MkQueue (front, back) ->
            match front with
            | Nil -> O
            | Cons (hd, tl) -> hd
            end
        end
      let is_empty (q : t) : bool =
        match q with
        | MkQueue (front, back) ->
            match front with
            | Nil -> True
            | Cons (hd, tl) -> False
            end
        end
    end

    spec (q : t) (i : nat) =
      not (is_empty (push q i)) && (not (is_empty q) || peek (push q i) == i)
"#;

fn main() {
    let problem = Problem::from_source(TWO_LIST_QUEUE).expect("the queue module elaborates");

    // Ground truth: saturate the constructible values and peek at a few.
    let oracle = ConstructibleOracle::compute(&problem, ConstructibleBounds::default());
    println!(
        "constructible queue representations found: {}",
        oracle.values().len()
    );
    for value in oracle.values().iter().take(5) {
        println!("  {value}");
    }

    // A queue whose front is empty but whose back is not is *not*
    // constructible (push always normalises).
    let bogus = Value::Ctor(
        "MkQueue".into(),
        vec![Value::nat_list(&[]), Value::nat_list(&[7])].into(),
    );
    println!("is {bogus} constructible? {}", oracle.contains(&bogus));
    println!();

    let result = Engine::with_defaults().run(&problem, &RunOptions::quick());
    match result.outcome {
        Outcome::Invariant(invariant) => {
            println!("inferred invariant: {invariant}");
            // Sanity-check it against the oracle.
            let ok = oracle
                .values()
                .iter()
                .all(|v| problem.eval_predicate(&invariant, v).unwrap_or(false));
            println!("accepts every known-constructible value: {ok}");
            println!(
                "rejects the bogus queue: {}",
                !problem.eval_predicate(&invariant, &bogus).unwrap_or(true)
            );
        }
        other => println!("inference did not produce an invariant: {other}"),
    }
}
