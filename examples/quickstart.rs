//! Quickstart: infer the representation invariant of the paper's §2 running
//! example (a set implemented as a duplicate-free list).
//!
//! Run with `cargo run --example quickstart --release`.

use hanoi_repro::abstraction::Problem;
use hanoi_repro::hanoi::{Engine, Outcome, RunEvent, RunOptions};

/// The ListSet module of Figure 1, its SET interface, and the specification φ.
const LIST_SET: &str = r#"
    type nat = O | S of nat
    type list = Nil | Cons of nat * list

    interface SET = sig
      type t
      val empty : t
      val insert : t -> nat -> t
      val delete : t -> nat -> t
      val lookup : t -> nat -> bool
    end

    module ListSet : SET = struct
      type t = list
      let empty : t = Nil
      let rec lookup (l : t) (x : nat) : bool =
        match l with
        | Nil -> False
        | Cons (hd, tl) -> hd == x || lookup tl x
        end
      let insert (l : t) (x : nat) : t =
        if lookup l x then l else Cons (x, l)
      let rec delete (l : t) (x : nat) : t =
        match l with
        | Nil -> Nil
        | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
        end
    end

    spec (s : t) (i : nat) =
      not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
"#;

fn main() {
    let problem = Problem::from_source(LIST_SET).expect("the example program elaborates");
    println!("module    : {}", problem.module.name);
    println!(
        "interface : {} ({} operations)",
        problem.interface.name,
        problem.interface.len()
    );
    println!("concrete  : {}", problem.concrete_type());
    println!();

    // A long-lived `Engine` owns the caches every run shares; `RunOptions`
    // pick the per-run knobs.  `RunOptions::quick()` uses reduced verifier
    // bounds so the example runs in seconds; `RunOptions::paper()` uses the
    // paper's 3000/30 bounds.
    let engine = Engine::with_defaults();
    let session = engine.session(&problem);

    // Stream run events as the CEGIS loop progresses.
    let mut iterations_seen = 0usize;
    let mut observer = |event: &RunEvent| {
        if let RunEvent::CandidateProposed { iteration, .. } = event {
            if *iteration > iterations_seen {
                iterations_seen = *iteration;
                eprintln!("  [event] iteration {iteration}: new candidate proposed");
            }
        }
    };
    let result = session.run_observed(&RunOptions::quick(), &mut observer);
    match result.outcome {
        Outcome::Invariant(invariant) => {
            println!("inferred representation invariant:");
            println!("  {invariant}");
            println!();
            println!("statistics:");
            println!("  total time          : {:.2?}", result.stats.total_time);
            println!(
                "  verification        : {:.2?} across {} call(s)",
                result.stats.verification_time, result.stats.verification_calls
            );
            println!(
                "  synthesis           : {:.2?} across {} call(s)",
                result.stats.synthesis_time, result.stats.synthesis_calls
            );
            println!("  CEGIS iterations    : {}", result.stats.iterations);
            println!("  invariant size      : {:?}", result.stats.invariant_size);
        }
        other => println!("inference did not produce an invariant: {other}"),
    }
}
