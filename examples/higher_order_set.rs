//! Representation-invariant inference for a module with higher-order
//! operations (§4.2 of the paper): a list set extended with `filter` and
//! `fold`, whose functional argument types mention the abstract type.
//!
//! Counterexamples are extracted from runs of the higher-order operations by
//! wrapping enumerated functional arguments in logging contracts.
//!
//! Run with `cargo run --example higher_order_set --release`.

use hanoi_repro::abstraction::Problem;
use hanoi_repro::hanoi::{Engine, Outcome, RunOptions};

const HOF_SET: &str = r#"
    type nat = O | S of nat
    type list = Nil | Cons of nat * list

    interface FSET = sig
      type t
      val empty : t
      val insert : t -> nat -> t
      val delete : t -> nat -> t
      val lookup : t -> nat -> bool
      val filter : (nat -> bool) -> t -> t
      val fold : (nat -> t -> t) -> t -> t -> t
    end

    module ListSet : FSET = struct
      type t = list
      let empty : t = Nil
      let rec lookup (l : t) (x : nat) : bool =
        match l with
        | Nil -> False
        | Cons (hd, tl) -> hd == x || lookup tl x
        end
      let insert (l : t) (x : nat) : t =
        if lookup l x then l else Cons (x, l)
      let rec delete (l : t) (x : nat) : t =
        match l with
        | Nil -> Nil
        | Cons (hd, tl) -> if hd == x then tl else Cons (hd, delete tl x)
        end
      let rec filter (p : nat -> bool) (l : t) : t =
        match l with
        | Nil -> Nil
        | Cons (hd, tl) -> if p hd then Cons (hd, filter p tl) else filter p tl
        end
      let rec fold (f : nat -> t -> t) (a : t) (s : t) : t =
        match s with
        | Nil -> a
        | Cons (hd, tl) -> f hd (fold f a tl)
        end
    end

    spec (s : t) (i : nat) =
      not (lookup empty i) && lookup (insert s i) i && not (lookup (delete s i) i)
"#;

fn main() {
    let problem = Problem::from_source(HOF_SET).expect("the example program elaborates");
    println!(
        "interface {} is higher-order: {}",
        problem.interface.name,
        !problem.interface.is_first_order()
    );
    let result = Engine::with_defaults().run(&problem, &RunOptions::quick());
    match result.outcome {
        Outcome::Invariant(invariant) => {
            println!("inferred invariant: {invariant}");
            println!(
                "verification: {:.2?} over {} calls; synthesis: {:.2?} over {} calls",
                result.stats.verification_time,
                result.stats.verification_calls,
                result.stats.synthesis_time,
                result.stats.synthesis_calls
            );
        }
        other => println!("inference did not produce an invariant: {other}"),
    }
}
